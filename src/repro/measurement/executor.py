"""Campaign execution engine: parallel fan-out, persistent cache, recovery.

The 881-run characterization protocol is embarrassingly parallel: every
run derives its random stream *directly from the campaign's base seed and
its own spec* (see :meth:`MeasurementCampaign.simulate`), so no run
depends on any other's execution.  :class:`CampaignExecutor` exploits
that twice over:

* **fan-out** — cache misses are dispatched to a
  :class:`~concurrent.futures.ProcessPoolExecutor`; because each worker
  re-derives the identical per-run stream from ``(seed, spec)``, parallel
  and serial execution produce *bit-identical* measurements (enforced by
  the equivalence test battery);
* **persistence** — every simulated run is written to a
  :class:`~repro.measurement.cache.ResultCache`, so later processes (and
  the full Fig. 7–19 + Tab. I pipeline) replay warm runs without
  re-simulating.

And — mirroring the paper's typical-case-design argument — it assumes
the infrastructure *will* fail and recovers instead of margining:

* every run attempt is bounded by :attr:`RetryPolicy.run_timeout` and
  retried up to :attr:`RetryPolicy.max_retries` times with deterministic
  exponential backoff;
* a broken process pool (worker crash) is rebuilt and only the
  *incomplete* runs are requeued — completed results are never redone;
* a run that keeps failing in the pool degrades to serial in-process
  re-simulation, whose final attempt runs with fault injection
  suppressed, so an injected chaos plan can never change campaign
  content — only how hard the executor had to work for it;
* every failed attempt is recorded as a structured :class:`RunFailure`
  in :attr:`ExecutorStats.failures` and surfaced by the CLI and the
  report's execution-statistics section.

Fault injection itself lives in :mod:`repro.faults`; the executor hosts
the ``worker.crash`` / ``worker.hang`` / ``simulate.exception`` /
``vmin.biterror`` hook points (the cache hosts ``cache.store`` /
``cache.load``).

Seeds that are live :class:`numpy.random.Generator` objects have state
rather than identity; for those the executor degrades gracefully to
serial, uncached simulation (results then depend on call order, exactly
as they always did).

Module-level aggregate statistics (:func:`global_stats`) power the cache
hit/miss and wall-time lines in :mod:`repro.reporting`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import observability as obs
from repro.errors import ConfigurationError
from repro.faults import FaultInjector
from repro.measurement.cache import CacheStats, ResultCache, cache_key
from repro.measurement.campaign import (
    HISTOGRAM_BINS,
    HISTOGRAM_HI,
    HISTOGRAM_LO,
    MeasurementCampaign,
    RunMeasurement,
    RunSpec,
)
from repro.measurement.record import decode_measurement
from repro.pdn.decap import proc_config
from repro.random_utils import seed_fingerprint

#: Environment override for the default worker count (read by
#: :func:`default_jobs`; the CI matrix sets ``REPRO_JOBS=2`` so the
#: parallel path is exercised on every push).
JOBS_ENV = "REPRO_JOBS"

#: Environment overrides for the retry policy (see :class:`RetryPolicy`).
MAX_RETRIES_ENV = "REPRO_MAX_RETRIES"
RUN_TIMEOUT_ENV = "REPRO_RUN_TIMEOUT"

#: Default bounded-retry budget per run (attempts = retries + 1).
DEFAULT_MAX_RETRIES = 2

#: Runs per batched chip/PDN solve on the serial fast path.  Chunking
#: bounds the stacked current matrix (chunk * n_cores * n_cycles floats)
#: while keeping the filter calls large enough to amortize their setup.
BATCH_CHUNK_RUNS = 16

#: First backoff step; doubles per retry, capped at the ceiling.  The
#: sequence is a pure function of the attempt number — no jitter — so
#: recovery behavior is as reproducible as the fault plan that forced it.
DEFAULT_BACKOFF_SECONDS = 0.02
MAX_BACKOFF_SECONDS = 1.0


def default_jobs() -> int:
    """Worker count from ``$REPRO_JOBS`` (defaults to 1 = serial)."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    if not raw:
        return 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{JOBS_ENV} must be an integer, got {raw!r}"
        ) from None
    if jobs < 1:
        raise ConfigurationError(f"{JOBS_ENV} must be >= 1, got {jobs}")
    return jobs


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the executor fights for each run before degrading.

    ``max_retries`` bounds *faulting* attempts per run per stage (pool
    and serial count separately); ``run_timeout`` bounds one attempt's
    wall time in the pool (``None`` = wait forever — hung workers then
    surface only through pool breakage); backoff between retries is
    deterministic exponential: ``base * 2**(attempt-1)``, capped at
    :data:`MAX_BACKOFF_SECONDS`.
    """

    max_retries: int = DEFAULT_MAX_RETRIES
    run_timeout: Optional[float] = None
    backoff_base: float = DEFAULT_BACKOFF_SECONDS

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.run_timeout is not None and not self.run_timeout > 0:
            raise ConfigurationError(
                f"run_timeout must be positive, got {self.run_timeout}"
            )
        if self.backoff_base < 0:
            raise ConfigurationError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )

    @staticmethod
    def from_env(
        max_retries: Optional[int] = None,
        run_timeout: Optional[float] = None,
    ) -> "RetryPolicy":
        """Policy from ``$REPRO_MAX_RETRIES`` / ``$REPRO_RUN_TIMEOUT``,
        with explicit arguments (CLI flags) taking precedence."""
        if max_retries is None:
            raw = os.environ.get(MAX_RETRIES_ENV, "").strip()
            if raw:
                try:
                    max_retries = int(raw)
                except ValueError:
                    raise ConfigurationError(
                        f"{MAX_RETRIES_ENV} must be an integer, got {raw!r}"
                    ) from None
        if run_timeout is None:
            raw = os.environ.get(RUN_TIMEOUT_ENV, "").strip()
            if raw:
                try:
                    run_timeout = float(raw)
                except ValueError:
                    raise ConfigurationError(
                        f"{RUN_TIMEOUT_ENV} must be a number of seconds, "
                        f"got {raw!r}"
                    ) from None
        return RetryPolicy(
            max_retries=(
                DEFAULT_MAX_RETRIES if max_retries is None else max_retries
            ),
            run_timeout=run_timeout,
        )

    def backoff_seconds(self, attempt: int) -> float:
        """Deterministic backoff before retry number ``attempt`` (1-based)."""
        return min(
            self.backoff_base * (2 ** max(attempt - 1, 0)),
            MAX_BACKOFF_SECONDS,
        )


@dataclass(frozen=True)
class RunFailure:
    """One failed run attempt, and what the executor did about it.

    ``site`` names where the failure surfaced: ``"pool"`` (worker crash /
    broken pool), ``"timeout"`` (attempt exceeded ``run_timeout``),
    ``"worker"`` (exception raised inside a pool worker) or
    ``"simulate"`` (exception in a serial in-process attempt).
    ``action`` is the recovery taken: ``"retried"`` (same stage, next
    attempt), ``"requeued"`` (pool rebuilt, run redispatched) or
    ``"serial-fallback"`` (degraded to in-process re-simulation).
    """

    run: str
    site: str
    error: str
    attempt: int
    action: str

    def summary(self) -> str:
        return (
            f"{self.run}: attempt {self.attempt} failed at {self.site} "
            f"({self.error}) -> {self.action}"
        )


class ExecutorStats:
    """Counters for one executor: cache traffic, simulations, recovery."""

    __slots__ = (
        "cache", "memory_hits", "simulated", "parallel_batches",
        "wall_seconds", "attempts", "retries", "timeouts",
        "pool_rebuilds", "requeued", "serial_fallbacks", "failures",
    )

    def __init__(self) -> None:
        self.cache = CacheStats()
        self.memory_hits = 0
        self.simulated = 0
        self.parallel_batches = 0
        self.wall_seconds = 0.0
        #: Simulation attempts dispatched (>= ``simulated`` under faults;
        #: ``simulated`` itself counts each run exactly once no matter
        #: how many retries, requeues or pool rebuilds it took).
        self.attempts = 0
        self.retries = 0
        self.timeouts = 0
        self.pool_rebuilds = 0
        self.requeued = 0
        self.serial_fallbacks = 0
        self.failures: List[RunFailure] = []

    def merged_into(self, other: "ExecutorStats") -> None:
        self.cache.merged_into(other.cache)
        other.memory_hits += self.memory_hits
        other.simulated += self.simulated
        other.parallel_batches += self.parallel_batches
        other.wall_seconds += self.wall_seconds
        other.attempts += self.attempts
        other.retries += self.retries
        other.timeouts += self.timeouts
        other.pool_rebuilds += self.pool_rebuilds
        other.requeued += self.requeued
        other.serial_fallbacks += self.serial_fallbacks
        other.failures.extend(self.failures)

    @property
    def recovery_active(self) -> bool:
        """Did any fault-recovery machinery engage?"""
        return bool(
            self.retries or self.timeouts or self.pool_rebuilds
            or self.requeued or self.serial_fallbacks or self.failures
        )

    def recovery_summary(self) -> str:
        return (
            f"{self.retries} retries, {self.timeouts} timeouts, "
            f"{self.pool_rebuilds} pool rebuilds, {self.requeued} "
            f"requeued, {self.serial_fallbacks} serial fallbacks "
            f"({len(self.failures)} failed attempts recovered)"
        )

    def summary(self) -> str:
        text = (
            f"cache: {self.cache.summary()}; {self.memory_hits} in-memory "
            f"hits; {self.simulated} runs simulated "
            f"({self.parallel_batches} parallel batches); "
            f"{self.wall_seconds:.1f} s execution wall time"
        )
        if self.recovery_active:
            text += f"; recovery: {self.recovery_summary()}"
        return text

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"ExecutorStats({self.summary()})"


#: Process-wide aggregate, updated by every executor batch; the report
#: generator resets it, runs the suites, then renders the totals.
_GLOBAL_STATS = ExecutorStats()


def global_stats() -> ExecutorStats:
    """The process-wide aggregate executor statistics."""
    return _GLOBAL_STATS


def reset_global_stats() -> None:
    """Zero the process-wide aggregate (start of a report run)."""
    global _GLOBAL_STATS
    _GLOBAL_STATS = ExecutorStats()


def config_fingerprint(config: str, n_cores: int) -> Dict[str, Any]:
    """Simulation-relevant parameters folded into every cache key.

    Captures what, besides the run spec / window / seed, determines a
    measurement: the decap configuration's electrical identity, the core
    count, and the campaign's histogram binning.
    """
    decap = proc_config(config)
    return {
        "config": decap.name,
        "decap_fraction": decap.fraction,
        "effective_fraction": decap.effective_fraction,
        "n_cores": int(n_cores),
        "with_ripple": True,
        "histogram": [HISTOGRAM_LO, HISTOGRAM_HI, HISTOGRAM_BINS],
    }


def _record_batch_telemetry(
    measurements: Sequence[RunMeasurement], batch: ExecutorStats
) -> None:
    """Record one batch's metric samples (observability enabled only).

    Content metrics (runs, cycles, droop/overshoot events by depth
    bucket, the droops-per-1K histogram) are derived from the returned
    measurements — whether they came from memo, cache, or simulation —
    so their values depend only on the requested specs, never on cache
    temperature, worker count, or injected faults.  Traffic, wall-time
    and recovery samples come from the batch statistics and describe
    this execution.
    """
    obs.increment("repro_runs_total", len(measurements))
    for measurement in measurements:
        obs.increment("repro_run_cycles_total", measurement.n_cycles)
        for depth in measurement.droops.depths:
            obs.increment(
                "repro_droop_events_total",
                depth=obs.depth_bucket(float(depth)),
            )
        for depth in measurement.overshoots.depths:
            obs.increment(
                "repro_overshoot_events_total",
                depth=obs.depth_bucket(float(depth)),
            )
        obs.observe(
            "repro_run_droops_per_1k", measurement.droop_samples_per_1k
        )
    obs.increment("repro_memo_hits_total", batch.memory_hits)
    obs.increment("repro_cache_hits_total", batch.cache.hits)
    obs.increment("repro_cache_misses_total", batch.cache.misses)
    obs.increment("repro_cache_stores_total", batch.cache.stores)
    obs.increment("repro_cache_corrupt_total", batch.cache.corrupt)
    obs.increment("repro_runs_simulated_total", batch.simulated)
    obs.increment(
        "repro_parallel_batches_total", batch.parallel_batches
    )
    obs.increment(
        "repro_batch_wall_seconds_total", batch.wall_seconds
    )
    obs.increment("repro_run_attempts_total", batch.attempts)
    obs.increment("repro_run_retries_total", batch.retries)
    obs.increment("repro_run_timeouts_total", batch.timeouts)
    obs.increment("repro_pool_rebuilds_total", batch.pool_rebuilds)
    obs.increment("repro_runs_requeued_total", batch.requeued)
    obs.increment(
        "repro_serial_fallbacks_total", batch.serial_fallbacks
    )
    obs.increment("repro_run_failures_total", len(batch.failures))


def _simulate_record(
    config: str,
    n_cycles: int,
    seed: int,
    spec_fields: Tuple[str, Tuple[str, ...], str],
    telemetry: bool = False,
    plan_spec: Optional[str] = None,
    attempt: int = 0,
    n_cores: int = 2,
) -> Dict[str, Any]:
    """Worker entry point: simulate one run, return its encoded record.

    Must stay a module-level function (pickled by name into pool
    workers).  Builds a throwaway serial campaign so the derived stream
    is exactly what the parent's campaign would have used.

    With ``telemetry=True`` the run executes under a fresh
    worker-local observability session whose spans and metric samples
    travel back alongside the record (``{"record": ..., "telemetry":
    ...}``); the parent grafts them into its own session in spec order,
    so a parallel campaign produces one merged, deterministic trace.

    ``plan_spec``/``attempt`` carry the chaos contract into the worker:
    the worker rebuilds the :class:`~repro.faults.FaultInjector` from
    the plan string and consults the ``worker.crash``, ``worker.hang``
    and ``simulate.exception`` hook points, keyed by this run's label
    and attempt number — so whether this attempt faults is decided by
    the plan alone, not by which worker process drew the task.
    """
    from repro.measurement.record import encode_measurement

    kind, workloads, spec_config = spec_fields
    campaign = MeasurementCampaign(
        config, n_cycles=n_cycles, seed=seed, n_cores=n_cores
    )
    spec = RunSpec(kind=kind, workloads=tuple(workloads), config=spec_config)
    injector = FaultInjector(plan_spec) if plan_spec is not None else None
    if not telemetry:
        _inject_worker_faults(injector, spec.label, attempt)
        return encode_measurement(campaign.simulate(spec))
    with obs.capture() as session:
        obs.increment("repro_worker_runs_total", worker=os.getpid())
        _inject_worker_faults(injector, spec.label, attempt)
        record = encode_measurement(campaign.simulate(spec))
    return {"record": record, "telemetry": session.worker_payload()}


def _inject_worker_faults(
    injector: Optional[FaultInjector], label: str, attempt: int
) -> None:
    """Consult the worker-side hook points, in severity order."""
    if injector is None:
        return
    injector.crash_worker(label, attempt)
    injector.hang_worker(label, attempt)
    injector.raise_transient(label, attempt)
    injector.bit_error(label, attempt)


class CampaignExecutor:
    """Runs batches of :class:`RunSpec` for one campaign.

    Resolution order per spec: in-memory memo → persistent cache →
    simulation (fanned out over processes when ``jobs > 1``).  Results
    are returned in input order and every simulated run is persisted.

    Parameters
    ----------
    campaign:
        The owning campaign (supplies config, window, seed and the
        serial simulation primitive).
    jobs:
        Worker processes for cache-miss simulation.  ``1`` = serial
        in-process; ``None`` = :func:`default_jobs` (``$REPRO_JOBS``).
    cache:
        Persistent result cache, or ``None`` to keep runs process-local.
    retry:
        Recovery budget; ``None`` = :meth:`RetryPolicy.from_env`
        (``$REPRO_MAX_RETRIES`` / ``$REPRO_RUN_TIMEOUT``).
    injector:
        Optional :class:`~repro.faults.FaultInjector` (chaos testing).
        Attached to ``cache`` as well so the ``cache.store`` /
        ``cache.load`` hook points see the same plan.
    """

    def __init__(
        self,
        campaign: MeasurementCampaign,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        retry: Optional[RetryPolicy] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        if jobs is None:
            jobs = default_jobs()
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self._campaign = campaign
        self._jobs = int(jobs)
        self._seed = seed_fingerprint(campaign.seed)
        # A stateful Generator seed has no stable identity: no persistent
        # cache entries could ever be valid and workers could not re-derive
        # the stream, so degrade to serial, uncached execution.
        self._cache = cache if self._seed is not None else None
        self._retry = retry if retry is not None else RetryPolicy.from_env()
        self._injector = injector
        if injector is not None and self._cache is not None:
            if self._cache.injector is None:
                self._cache.injector = injector
        self._fingerprint = config_fingerprint(
            campaign.config, campaign.chip.n_cores
        )
        self._memory: Dict[RunSpec, RunMeasurement] = {}
        self.stats = ExecutorStats()

    @property
    def jobs(self) -> int:
        return self._jobs

    @property
    def cache(self) -> Optional[ResultCache]:
        return self._cache

    @property
    def retry(self) -> RetryPolicy:
        return self._retry

    @property
    def injector(self) -> Optional[FaultInjector]:
        return self._injector

    def key_for(self, spec: RunSpec) -> Optional[str]:
        """Persistent-cache key for one spec (``None`` if uncacheable)."""
        if self._seed is None:
            return None
        return cache_key(
            spec, self._fingerprint, self._campaign.n_cycles, self._seed
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_one(self, spec: RunSpec) -> RunMeasurement:
        return self.run_many([spec])[0]

    def run_many(self, specs: Sequence[RunSpec]) -> List[RunMeasurement]:
        """Measure every spec, reusing memo/cache, in input order."""
        with obs.span("campaign.batch", runs=len(specs)):
            return self._run_many_impl(specs)

    def _run_many_impl(
        self, specs: Sequence[RunSpec]
    ) -> List[RunMeasurement]:
        started = obs.monotonic_seconds()
        batch = ExecutorStats()
        results: Dict[RunSpec, RunMeasurement] = {}
        missing: List[RunSpec] = []
        seen: set = set()
        for spec in specs:
            if spec in seen:
                continue
            seen.add(spec)
            memo = self._memory.get(spec)
            if memo is not None:
                batch.memory_hits += 1
                results[spec] = memo
                continue
            cached = self._load_cached(spec, batch)
            if cached is not None:
                results[spec] = self._remember(spec, cached, batch)
            else:
                missing.append(spec)
        if missing:
            for spec, measurement in self._simulate_missing(missing, batch):
                results[spec] = self._remember(
                    spec, measurement, batch, store=True
                )
        batch.wall_seconds = obs.monotonic_seconds() - started
        batch.merged_into(self.stats)
        batch.merged_into(_GLOBAL_STATS)
        ordered = [results[spec] for spec in specs]
        if obs.enabled():
            _record_batch_telemetry(ordered, batch)
        return ordered

    def _load_cached(
        self, spec: RunSpec, batch: ExecutorStats
    ) -> Optional[RunMeasurement]:
        if self._cache is None:
            return None
        key = self.key_for(spec)
        assert key is not None
        corrupt_before = self._cache.stats.corrupt
        measurement = self._cache.load(key)
        if measurement is None:
            batch.cache.misses += 1
            batch.cache.corrupt += self._cache.stats.corrupt - corrupt_before
            return None
        batch.cache.hits += 1
        return measurement

    def _remember(
        self,
        spec: RunSpec,
        measurement: RunMeasurement,
        batch: ExecutorStats,
        store: bool = False,
    ) -> RunMeasurement:
        self._memory[spec] = measurement
        if store and self._cache is not None:
            key = self.key_for(spec)
            assert key is not None
            self._cache.store(key, measurement)
            batch.cache.stores += 1
        return measurement

    def _simulate_missing(
        self, specs: List[RunSpec], batch: ExecutorStats
    ) -> List[Tuple[RunSpec, RunMeasurement]]:
        # Each missing spec is counted as simulated exactly once, here,
        # regardless of how many attempts, requeues or pool rebuilds the
        # recovery machinery spends on it (pinned by the stats
        # regression tests: retried runs must not double-count).
        batch.simulated += len(specs)
        if self._jobs > 1 and len(specs) > 1 and self._seed is not None:
            return self._simulate_parallel(specs, batch)
        if (
            len(specs) > 1
            and self._injector is None
            and not obs.enabled()
        ):
            return self._simulate_batched(specs, batch)
        return [
            (spec, self._simulate_serial(spec, batch)) for spec in specs
        ]

    # -- batched serial fast path ----------------------------------------
    def _simulate_batched(
        self, specs: List[RunSpec], batch: ExecutorStats
    ) -> List[Tuple[RunSpec, RunMeasurement]]:
        """Simulate serial cache misses through the batched chip solve.

        Runs :data:`BATCH_CHUNK_RUNS`-sized chunks through
        :meth:`MeasurementCampaign.simulate_batch` (bit-identical to
        per-run simulation).  Only taken when observability is off and
        no fault injector is attached — the per-run path owns the span
        and chaos contracts.  A chunk that fails for any reason degrades
        to the per-run serial path, which retries and propagates.
        """
        results: List[Tuple[RunSpec, RunMeasurement]] = []
        for start in range(0, len(specs), BATCH_CHUNK_RUNS):
            chunk = specs[start:start + BATCH_CHUNK_RUNS]
            batch.attempts += len(chunk)
            try:
                measurements = self._campaign.simulate_batch(chunk)
            except Exception as error:  # simlint: disable=HYG003
                batch.retries += 1
                batch.failures.append(
                    RunFailure(
                        run=f"batch[{chunk[0].label}..+{len(chunk) - 1}]",
                        site="simulate",
                        error=_describe_error(error),
                        attempt=1,
                        action="serial-fallback",
                    )
                )
                batch.serial_fallbacks += 1
                results.extend(
                    (spec, self._simulate_serial(spec, batch))
                    for spec in chunk
                )
                continue
            results.extend(zip(chunk, measurements))
        return results

    # -- serial path (and parallel fallback) ----------------------------
    def _simulate_serial(
        self, spec: RunSpec, batch: ExecutorStats
    ) -> RunMeasurement:
        """Simulate in-process with bounded retries and backoff.

        Attempts ``0..max_retries`` run under fault injection (and
        absorb *any* exception, injected or real); the final attempt
        runs clean and uncaught, so persistent real errors still
        propagate while injected chaos always converges to the
        fault-free result.
        """
        label = spec.label
        for attempt in range(self._retry.max_retries + 1):
            batch.attempts += 1
            try:
                if self._injector is not None:
                    self._injector.raise_transient(label, attempt)
                    self._injector.bit_error(label, attempt)
                if attempt == 0:
                    return self._campaign.simulate(spec)
                with obs.span("run.retry", run=label, attempt=attempt):
                    return self._campaign.simulate(spec)
            except Exception as error:  # simlint: disable=HYG003
                batch.retries += 1
                batch.failures.append(
                    RunFailure(
                        run=label,
                        site="simulate",
                        error=_describe_error(error),
                        attempt=attempt + 1,
                        action="retried",
                    )
                )
                time.sleep(self._retry.backoff_seconds(attempt + 1))
        batch.attempts += 1
        with obs.span("run.retry", run=label, attempt="final"):
            return self._campaign.simulate(spec)

    # -- parallel path ---------------------------------------------------
    def _simulate_parallel(
        self, specs: List[RunSpec], batch: ExecutorStats
    ) -> List[Tuple[RunSpec, RunMeasurement]]:
        """Fan specs over a process pool, surviving crashes and hangs.

        Each round submits every pending spec; a broken pool or a timed
        out attempt abandons the round, tears the pool down, and
        requeues exactly the runs that have no result yet.  A run that
        exhausts its pool attempts is handed to the serial path, whose
        final attempt is injection-free — so this method always returns
        a complete, bit-identical result set.
        """
        assert self._seed is not None
        batch.parallel_batches += 1
        config = self._campaign.config
        n_cycles = self._campaign.n_cycles
        telemetry = obs.enabled()
        plan_spec = (
            self._injector.plan.spec if self._injector is not None else None
        )
        max_attempts = self._retry.max_retries + 1
        attempts: Dict[RunSpec, int] = {spec: 0 for spec in specs}
        payloads: Dict[RunSpec, Any] = {}
        fallback: List[RunSpec] = []
        pending: List[RunSpec] = list(specs)
        pool: Optional[ProcessPoolExecutor] = None
        rounds = 0
        try:
            while pending:
                rounds += 1
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=min(self._jobs, len(pending))
                    )
                futures = {}
                requeue: List[RunSpec] = []
                abandoned = False
                for spec in pending:
                    try:
                        futures[spec] = pool.submit(
                            _simulate_record,
                            config,
                            n_cycles,
                            self._seed,
                            (spec.kind, spec.workloads, spec.config),
                            telemetry,
                            plan_spec,
                            attempts[spec],
                            self._campaign.chip.n_cores,
                        )
                    except BrokenProcessPool as error:
                        # The pool died while we were still submitting;
                        # everything not yet submitted joins the requeue.
                        abandoned = True
                        self._parallel_failure(
                            batch, spec, "pool", _describe_error(error),
                            attempts, max_attempts, requeue, fallback,
                        )
                batch.attempts += len(futures)
                for spec in pending:
                    future = futures.get(spec)
                    if future is None:
                        continue
                    if abandoned and not future.done():
                        # Casualty of this round's crash/hang: no result,
                        # but nothing to wait for either — requeue it.
                        self._parallel_failure(
                            batch, spec, "pool",
                            "round abandoned (pool torn down)",
                            attempts, max_attempts, requeue, fallback,
                        )
                        continue
                    try:
                        payloads[spec] = future.result(
                            timeout=(
                                None if abandoned
                                else self._retry.run_timeout
                            )
                        )
                    except FuturesTimeoutError:
                        batch.timeouts += 1
                        abandoned = True
                        self._parallel_failure(
                            batch, spec, "timeout",
                            f"no result within {self._retry.run_timeout}s",
                            attempts, max_attempts, requeue, fallback,
                        )
                    except BrokenProcessPool as error:
                        abandoned = True
                        self._parallel_failure(
                            batch, spec, "pool", _describe_error(error),
                            attempts, max_attempts, requeue, fallback,
                        )
                    except Exception as error:  # simlint: disable=HYG003
                        self._parallel_failure(
                            batch, spec, "worker", _describe_error(error),
                            attempts, max_attempts, requeue, fallback,
                        )
                if abandoned:
                    batch.pool_rebuilds += 1
                    with obs.span("pool.rebuild", round=rounds):
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = None
                    time.sleep(self._retry.backoff_seconds(rounds))
                pending = requeue
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        session = obs.active_session()
        results: List[Tuple[RunSpec, RunMeasurement]] = []
        for spec in specs:
            payload = payloads.get(spec)
            if payload is None:
                with obs.span("run.fallback", run=spec.label):
                    results.append(
                        (spec, self._simulate_serial(spec, batch))
                    )
                continue
            if telemetry:
                record = dict(payload["record"])
                if session is not None:
                    session.absorb_worker(payload["telemetry"])
            else:
                record = payload
            results.append((spec, decode_measurement(record)))
        return results

    def _parallel_failure(
        self,
        batch: ExecutorStats,
        spec: RunSpec,
        site: str,
        error: str,
        attempts: Dict[RunSpec, int],
        max_attempts: int,
        requeue: List[RunSpec],
        fallback: List[RunSpec],
    ) -> None:
        """Book one failed pool attempt and route the spec onward."""
        attempts[spec] += 1
        exhausted = attempts[spec] >= max_attempts
        action = "serial-fallback" if exhausted else "requeued"
        batch.failures.append(
            RunFailure(
                run=spec.label,
                site=site,
                error=error,
                attempt=attempts[spec],
                action=action,
            )
        )
        if exhausted:
            batch.serial_fallbacks += 1
            fallback.append(spec)
        else:
            batch.retries += 1
            batch.requeued += 1
            requeue.append(spec)


def _describe_error(error: BaseException) -> str:
    """One-line error description for :class:`RunFailure` records."""
    text = str(error).strip().splitlines()
    detail = text[0] if text else ""
    name = type(error).__name__
    return f"{name}: {detail}" if detail else name


def _describe_cache(cache: Optional[ResultCache]) -> str:
    if cache is None:
        return "disabled"
    return str(cache.directory)


def format_stats(
    stats: ExecutorStats, cache: Optional[ResultCache] = None
) -> str:
    """One-line execution summary for CLI / report output."""
    return f"[executor] {stats.summary()} (cache dir: {_describe_cache(cache)})"
