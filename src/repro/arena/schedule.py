"""Arena schedules: partition covers of a job pool over N-core supplies.

An arena :class:`Schedule` places every program of a workload suite
exactly once into co-running groups that share one voltage supply.  This
is the batch-window view of scheduling (one pass over the pool), as
opposed to :class:`repro.core.scheduler.BatchScheduler`'s job-stream
view where programs repeat; partitions make policies directly
comparable — every policy spends the same core-cycles on the same work,
so throughput, droop overhead and energy differences are attributable to
*placement* alone.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence, Tuple

from repro.core.scheduler import Group
from repro.errors import SchedulingError


@dataclass(frozen=True)
class Schedule:
    """One policy's placement of a job pool onto N-core supplies."""

    #: Registry key of the policy that proposed it.
    policy: str
    #: Cores per shared supply (max group size).
    n_cores: int
    #: The co-running groups; together they cover the pool.
    groups: Tuple[Group, ...]

    @property
    def programs(self) -> Tuple[str, ...]:
        """Every placed program, in group order."""
        return tuple(name for group in self.groups for name in group)

    def canonical(self) -> "Schedule":
        """Sort members within groups and groups among themselves.

        Group-member order is simulation-relevant (core 0 vs core 1 draw
        different derived streams), so the harness always evaluates the
        canonical form — making every score invariant under the member
        orderings a symmetric policy might emit.
        """
        groups = tuple(sorted(tuple(sorted(g)) for g in self.groups))
        return replace(self, groups=groups)


def validate_cover(
    schedule: Schedule, programs: Sequence[str]
) -> Schedule:
    """Check the permutation-complete-cover contract; return the schedule.

    Every program of the pool appears exactly once across the groups, no
    group is empty, and no group holds more members than the supply has
    cores.  Violations raise :class:`~repro.errors.SchedulingError`
    naming the offending policy.
    """
    for group in schedule.groups:
        if not 1 <= len(group) <= schedule.n_cores:
            raise SchedulingError(
                f"policy {schedule.policy!r} emitted a group of "
                f"{len(group)} for {schedule.n_cores} cores: {group!r}"
            )
    placed = sorted(schedule.programs)
    expected = sorted(programs)
    if placed != expected:
        raise SchedulingError(
            f"policy {schedule.policy!r} did not cover the pool exactly "
            f"once: placed {placed!r}, expected {expected!r}"
        )
    return schedule


def group_sizes(n_programs: int, n_cores: int) -> Tuple[int, ...]:
    """Canonical group sizes for a pool: full supplies plus a remainder.

    ``group_sizes(10, 4) == (4, 4, 2)`` — every supply filled, with at
    most one under-filled group soaking up the remainder (its idle cores
    run the idle loop during measurement).
    """
    if n_cores < 2:
        raise SchedulingError("n_cores must be >= 2")
    if n_programs < 1:
        raise SchedulingError("need at least one program")
    full, remainder = divmod(n_programs, n_cores)
    return (n_cores,) * full + ((remainder,) if remainder else ())
