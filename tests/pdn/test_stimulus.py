"""Unit tests for current stimuli."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.pdn.stimulus import current_step, reset_stimulus, square_wave_current


class TestCurrentStep:
    def test_levels(self):
        trace = current_step(100, 2.0, 10.0, step_at=50)
        assert np.all(trace[:50] == 2.0)  # simlint: disable=HYG001 (exact by construction)
        assert np.all(trace[51:] == 10.0)  # simlint: disable=HYG001 (exact by construction)

    def test_ramp(self):
        trace = current_step(100, 0.0, 10.0, step_at=10, ramp_samples=5)
        assert np.all(np.diff(trace[10:16]) > 0)
        assert trace[15] == 10.0  # simlint: disable=HYG001 (exact by construction)

    def test_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            current_step(10, 0, 1, step_at=10)
        with pytest.raises(ConfigurationError):
            current_step(0, 0, 1, step_at=0)

    @given(
        low=st.floats(min_value=0, max_value=10),
        high=st.floats(min_value=10, max_value=50),
        step_at=st.integers(min_value=0, max_value=99),
    )
    def test_always_within_levels(self, low, high, step_at):
        trace = current_step(100, low, high, step_at=step_at)
        assert trace.min() >= low - 1e-12
        assert trace.max() <= high + 1e-12


class TestResetStimulus:
    def test_shape(self):
        trace = reset_stimulus(
            10000, idle_amps=5.0, inrush_amps=40.0, reset_at=1000,
            off_samples=2000, ramp_samples=4, settle_tau_samples=800,
        )
        # Idle before reset.
        assert np.all(trace[:1000] == 5.0)  # simlint: disable=HYG001 (exact by construction)
        # Off region at zero.
        assert np.all(trace[1010:3000] == 0.0)  # simlint: disable=HYG001 (exact by construction)
        # Inrush exceeds idle, then decays towards idle.
        assert trace.max() > 35.0
        assert trace[-1] == pytest.approx(5.0, abs=2.0)

    def test_decay_timescale_respected(self):
        trace = reset_stimulus(
            50000, idle_amps=5.0, inrush_amps=40.0, reset_at=100,
            off_samples=100, ramp_samples=2, settle_tau_samples=10000,
        )
        peak_idx = int(np.argmax(trace))
        one_tau = trace[peak_idx + 10000]
        expected = 5.0 + (trace[peak_idx] - 5.0) * np.exp(-1)
        assert one_tau == pytest.approx(expected, rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            reset_stimulus(10, 1, 2, reset_at=20, off_samples=5)
        with pytest.raises(ConfigurationError):
            reset_stimulus(10, 1, 2, reset_at=0, off_samples=0)
        with pytest.raises(ConfigurationError):
            reset_stimulus(
                100, 1, 2, reset_at=0, off_samples=5, settle_tau_samples=0
            )


class TestSquareWave:
    def test_period_and_duty(self):
        trace = square_wave_current(100, 1.0, 9.0, period_samples=10, duty=0.3)
        assert np.all(trace[:3] == 9.0)  # simlint: disable=HYG001 (exact by construction)
        assert np.all(trace[3:10] == 1.0)  # simlint: disable=HYG001 (exact by construction)
        assert np.array_equal(trace[:10], trace[10:20])

    def test_mean_tracks_duty(self):
        trace = square_wave_current(1000, 0.0, 10.0, period_samples=10, duty=0.5)
        assert trace.mean() == pytest.approx(5.0, abs=0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            square_wave_current(100, 0, 1, period_samples=1)
        with pytest.raises(ConfigurationError):
            square_wave_current(100, 0, 1, period_samples=10, duty=1.0)
