"""Text, JSON, and SARIF reporters for simlint findings."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.analysis.findings import Finding, Severity

#: SARIF 2.1.0 schema constants (consumed by GitHub code scanning).
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_SARIF_VERSION = "2.1.0"


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [f.format() for f in findings]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    if findings:
        by_code = Counter(f.code for f in findings)
        breakdown = ", ".join(
            f"{code}×{count}" for code, count in sorted(by_code.items())
        )
        lines.append("")
        lines.append(
            f"simlint: {errors} error(s), {warnings} warning(s) "
            f"({breakdown})"
        )
    else:
        lines.append("simlint: clean")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (consumed by CI and the baseline tests)."""
    payload = {
        "version": 1,
        "summary": {
            "total": len(findings),
            "errors": sum(
                1 for f in findings if f.severity is Severity.ERROR
            ),
            "warnings": sum(
                1 for f in findings if f.severity is Severity.WARNING
            ),
        },
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_uri(path: str) -> str:
    uri = path.replace("\\", "/")
    while uri.startswith("./"):
        uri = uri[2:]
    return uri


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 report: findings annotate PRs via GitHub code scanning."""
    from repro.analysis.registry import all_rules

    rules = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {
                "level": "error"
                if rule.severity is Severity.ERROR
                else "warning"
            },
        }
        for rule in all_rules()
    ]
    results = [
        {
            "ruleId": f.code,
            "level": "error" if f.severity is Severity.ERROR else "warning",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _sarif_uri(f.path),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": f.column + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {"simlintFingerprint": f.fingerprint},
        }
        for f in findings
    ]
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render(findings: Sequence[Finding], fmt: str) -> str:
    """Dispatch on ``fmt`` (``"text"``, ``"json"``, or ``"sarif"``)."""
    if fmt == "json":
        return render_json(findings)
    if fmt == "text":
        return render_text(findings)
    if fmt == "sarif":
        return render_sarif(findings)
    raise ValueError(f"unknown report format {fmt!r}")
