"""Unit tests for deterministic RNG helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.random_utils import as_generator, derive_generator


class TestAsGenerator:
    def test_none_is_reproducible(self):
        a = as_generator(None).integers(0, 1 << 30, size=5)
        b = as_generator(None).integers(0, 1 << 30, size=5)
        assert np.array_equal(a, b)

    def test_int_seed(self):
        a = as_generator(7).random(3)
        b = as_generator(7).random(3)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert as_generator(rng) is rng


class TestDeriveGenerator:
    def test_children_are_independent_of_parent_consumption(self):
        child_a = derive_generator(5, "x").random(4)
        child_b = derive_generator(5, "x").random(4)
        assert np.array_equal(child_a, child_b)

    def test_different_keys_different_streams(self):
        a = derive_generator(5, "x").random(4)
        b = derive_generator(5, "y").random(4)
        assert not np.array_equal(a, b)

    def test_key_kinds(self):
        # ints, strings and mixed tuples all produce stable streams.
        a = derive_generator(1, 2, "three").random(2)
        b = derive_generator(1, 2, "three").random(2)
        assert np.array_equal(a, b)

    def test_generator_parent_advances(self):
        parent = np.random.default_rng(3)
        first = derive_generator(parent, "k").random(2)
        second = derive_generator(parent, "k").random(2)
        # Each derivation consumes parent entropy -> different children.
        assert not np.array_equal(first, second)

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        key=st.text(min_size=0, max_size=20),
    )
    def test_stable_for_arbitrary_string_keys(self, seed, key):
        a = derive_generator(seed, key).integers(0, 1 << 20)
        b = derive_generator(seed, key).integers(0, 1 << 20)
        assert a == b


class TestUnits:
    def test_prefixes(self):
        from repro import units

        assert units.MICRO_FARAD == 1e-6  # simlint: disable=HYG001 (exact constant definition)
        assert units.PICO_HENRY == 1e-12  # simlint: disable=HYG001 (exact constant definition)
        assert units.MEGA_HERTZ == 1e6  # simlint: disable=HYG001 (exact constant definition)

    def test_percent_roundtrip(self):
        from repro import units

        assert units.to_percent(0.042) == pytest.approx(4.2)
        assert units.from_percent(4.2) == pytest.approx(0.042)

    def test_db(self):
        from repro import units

        assert units.db(10.0) == pytest.approx(20.0)
        with pytest.raises(ValueError):
            units.db(0.0)
