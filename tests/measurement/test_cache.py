"""Unit tests for the persistent result cache."""

import gzip
import json

import pytest

from repro.measurement.cache import ResultCache, cache_key, default_cache_dir
from repro.measurement.campaign import MeasurementCampaign
from repro.measurement.executor import config_fingerprint
from repro.measurement.record import encode_measurement, measurements_identical


@pytest.fixture(scope="module")
def measurement():
    campaign = MeasurementCampaign("Proc100", n_cycles=2000, seed=1, jobs=1)
    return campaign.measure("lbm")


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


FINGERPRINT = {"config": "Proc100", "n_cores": 2}


def _key(measurement):
    return cache_key(measurement.spec, FINGERPRINT, measurement.n_cycles, 1)


class TestKey:
    def test_key_is_hex_digest(self, measurement):
        key = _key(measurement)
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_key_depends_on_every_input(self, measurement):
        base = _key(measurement)
        spec = measurement.spec
        assert cache_key(spec, FINGERPRINT, measurement.n_cycles, 2) != base
        assert cache_key(spec, FINGERPRINT, 4000, 1) != base
        assert (
            cache_key(spec, {"config": "Proc3", "n_cores": 2}, 2000, 1) != base
        )

    def test_real_fingerprint_distinguishes_configs(self, measurement):
        spec = measurement.spec
        a = cache_key(spec, config_fingerprint("Proc100", 2), 2000, 1)
        b = cache_key(spec, config_fingerprint("Proc3", 2), 2000, 1)
        assert a != b


class TestStoreLoad:
    def test_round_trip(self, cache, measurement):
        key = _key(measurement)
        cache.store(key, measurement)
        loaded = cache.load(key)
        assert loaded is not None
        assert measurements_identical(measurement, loaded)

    def test_miss_on_empty_cache(self, cache, measurement):
        assert cache.load(_key(measurement)) is None
        assert cache.stats.misses == 1
        assert cache.stats.corrupt == 0

    def test_contains_and_entry_count(self, cache, measurement):
        key = _key(measurement)
        assert key not in cache
        assert cache.entry_count() == 0
        cache.store(key, measurement)
        assert key in cache
        assert cache.entry_count() == 1

    def test_entries_are_sharded(self, cache, measurement):
        key = _key(measurement)
        cache.store(key, measurement)
        assert cache.path_for(key).parent.name == key[:2]

    def test_store_leaves_no_temp_files(self, cache, measurement):
        key = _key(measurement)
        cache.store(key, measurement)
        leftovers = [
            p for p in cache.directory.rglob("*") if p.suffix == ".tmp"
        ]
        assert leftovers == []

    def test_overwrite_is_clean(self, cache, measurement):
        key = _key(measurement)
        cache.store(key, measurement)
        cache.store(key, measurement)
        assert cache.entry_count() == 1
        assert cache.load(key) is not None

    def test_deterministic_bytes(self, cache, measurement):
        """Records are byte-stable (sorted keys, fixed gzip mtime), so a
        re-stored identical result never dirties a synced cache."""
        key = _key(measurement)
        cache.store(key, measurement)
        first = cache.path_for(key).read_bytes()
        cache.store(key, measurement)
        assert cache.path_for(key).read_bytes() == first


class TestCorruptionTolerance:
    def test_truncated_entry_is_miss(self, cache, measurement):
        key = _key(measurement)
        cache.store(key, measurement)
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[:20])
        assert cache.load(key) is None
        assert cache.stats.corrupt == 1

    def test_garbage_bytes_are_miss(self, cache, measurement):
        key = _key(measurement)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not gzip at all")
        assert cache.load(key) is None
        assert cache.stats.corrupt == 1

    def test_valid_gzip_invalid_json_is_miss(self, cache, measurement):
        key = _key(measurement)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(gzip.compress(b"{broken"))
        assert cache.load(key) is None
        assert cache.stats.corrupt == 1

    def test_valid_json_wrong_shape_is_miss(self, cache, measurement):
        key = _key(measurement)
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        record = encode_measurement(measurement)
        del record["counters"]
        path.write_bytes(gzip.compress(json.dumps(record).encode()))
        assert cache.load(key) is None
        assert cache.stats.corrupt == 1


class TestDefaultDirectory:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro"

    def test_home_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        monkeypatch.setenv("HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / ".cache" / "repro"
