"""Fault plans: which faults fire, how often, and from which seed.

A plan is written as a compact comma-separated string so one value can
travel through ``--inject-faults``, ``$REPRO_INJECT_FAULTS`` and the
pickled worker arguments identically::

    crash:0.1,hang:0.05,exception:0.1,corrupt:0.2,seed=7,hang-seconds=0.05

Each ``kind[:rate]`` token enables one fault kind (rate defaults to
:data:`DEFAULT_RATE`); ``seed=N`` seeds the decision streams and
``hang-seconds=S`` sets how long an injected hang sleeps.  The reserved
word ``default`` expands to :data:`DEFAULT_PLAN_SPEC` — the chaos plan
the CI gate runs (crashes, slow workers, transient exceptions, and
cache corruption all enabled) — and ``off``/``none`` disable injection.

Fault kinds map to named hook points in the execution layer:

========== ==================== =========================================
token       site                 effect
========== ==================== =========================================
crash       ``worker.crash``     pool worker exits hard (``os._exit``)
hang        ``worker.hang``      worker sleeps ``hang_seconds`` first
exception   ``simulate.exception`` transient :class:`~repro.faults.injector.InjectedFault`
corrupt     ``cache.store``      stored cache record is garbled on disk
corrupt-read ``cache.load``      one cache read is treated as corrupt
biterror    ``vmin.biterror``    SRAM-style bit flip, scaled by undervolt depth
========== ==================== =========================================

The ``biterror`` kind is voltage-dependent: its effective per-decision
probability is the plan rate multiplied by the bit-error-rate curve of
:mod:`repro.undervolt.model` evaluated at the plan's
``undervolt-depth=VOLTS`` option (how far below the characterized Vmin
the campaign pretends to run).  At zero depth — the default — the kind
never fires, matching the physics: at or above Vmin the part is clean.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError

#: Environment variable carrying the session-wide fault plan.
INJECT_FAULTS_ENV = "REPRO_INJECT_FAULTS"

#: token -> hook-point site name.
FAULT_SITES: Dict[str, str] = {
    "crash": "worker.crash",
    "hang": "worker.hang",
    "exception": "simulate.exception",
    "corrupt": "cache.store",
    "corrupt-read": "cache.load",
    "biterror": "vmin.biterror",
}

_TOKEN_BY_SITE: Dict[str, str] = {site: token for token, site in FAULT_SITES.items()}

#: Rate used by a bare ``kind`` token with no explicit ``:rate``.
DEFAULT_RATE = 0.1

#: Sleep applied by an injected hang unless the plan overrides it.  Kept
#: small so a "slow worker" stays slow, not stuck: recovery must come
#: from the executor's timeout/retry path, never from test patience.
DEFAULT_HANG_SECONDS = 0.05

#: The canonical chaos plan: every fault kind enabled at rates that make
#: a quick campaign hit each recovery path without drowning in retries.
#: ``biterror`` is armed but inert here — with no ``undervolt-depth`` the
#: part is at or above Vmin, where the bit-error rate is exactly zero;
#: the undervolt probe supplies the depth that brings it to life.
DEFAULT_PLAN_SPEC = (
    "biterror:0.2,crash:0.08,hang:0.05,exception:0.08,corrupt:0.15,"
    "corrupt-read:0.05,hang-seconds=0.05,seed=0"
)

_DISABLED = ("", "off", "none", "0")


@dataclass(frozen=True)
class FaultPlan:
    """One parsed fault plan: per-site rates plus decision-seed material."""

    rates: Tuple[Tuple[str, float], ...]  # ((site, rate), ...) sorted
    seed: int = 0
    hang_seconds: float = DEFAULT_HANG_SECONDS
    undervolt_depth_volt: float = 0.0
    _rate_map: Dict[str, float] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        self._rate_map.update(dict(self.rates))

    def rate(self, site: str) -> float:
        """Firing probability at ``site`` (0.0 when the kind is off)."""
        if site not in _TOKEN_BY_SITE:
            raise ConfigurationError(f"unknown fault site {site!r}")
        return self._rate_map.get(site, 0.0)

    @property
    def spec(self) -> str:
        """Canonical string form (parse → spec round-trips)."""
        tokens = [
            f"{_TOKEN_BY_SITE[site]}:{rate:g}" for site, rate in self.rates
        ]
        tokens.append(f"hang-seconds={self.hang_seconds:g}")
        # Emitted only when set so pre-undervolt plan specs stay
        # byte-identical (golden chaos fixtures pin them).
        if self.undervolt_depth_volt:
            tokens.append(
                f"undervolt-depth={self.undervolt_depth_volt:g}"
            )
        tokens.append(f"seed={self.seed}")
        return ",".join(tokens)


def parse_plan(spec: Optional[str]) -> Optional[FaultPlan]:
    """Parse a plan string; ``None``/``off``/``none`` → no injection.

    Raises :class:`~repro.errors.ConfigurationError` on unknown tokens,
    malformed rates, or rates outside ``[0, 1]`` — a mistyped chaos plan
    must fail loudly, not silently run clean.
    """
    if spec is None:
        return None
    text = spec.strip().lower()
    if text in _DISABLED:
        return None
    if text == "default":
        text = DEFAULT_PLAN_SPEC
    rates: Dict[str, float] = {}
    seed = 0
    hang_seconds = DEFAULT_HANG_SECONDS
    undervolt_depth_volt = 0.0
    for raw_token in text.split(","):
        token = raw_token.strip()
        if not token:
            continue
        if "=" in token:
            key, _, value = token.partition("=")
            key = key.strip()
            if key == "seed":
                seed = _parse_int(value, token)
            elif key == "hang-seconds":
                hang_seconds = _parse_float(value, token)
                if hang_seconds < 0:
                    raise ConfigurationError(
                        f"hang-seconds must be >= 0 in fault plan "
                        f"token {token!r}"
                    )
            elif key == "undervolt-depth":
                undervolt_depth_volt = _parse_float(value, token)
                if undervolt_depth_volt < 0:
                    raise ConfigurationError(
                        f"undervolt-depth must be >= 0 volts in fault "
                        f"plan token {token!r}"
                    )
            else:
                raise ConfigurationError(
                    f"unknown fault-plan option {key!r} (token {token!r})"
                )
            continue
        kind, _, rate_text = token.partition(":")
        kind = kind.strip()
        if kind not in FAULT_SITES:
            raise ConfigurationError(
                f"unknown fault kind {kind!r}; choose from "
                f"{sorted(FAULT_SITES)}"
            )
        rate = DEFAULT_RATE if not rate_text else _parse_float(
            rate_text, token
        )
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"fault rate must be within [0, 1], got {rate!r} "
                f"in token {token!r}"
            )
        rates[FAULT_SITES[kind]] = rate
    if not rates:
        return None
    ordered = tuple(sorted(rates.items()))
    return FaultPlan(
        rates=ordered,
        seed=seed,
        hang_seconds=hang_seconds,
        undervolt_depth_volt=undervolt_depth_volt,
    )


def plan_from_env() -> Optional[FaultPlan]:
    """The plan named by ``$REPRO_INJECT_FAULTS``, or ``None``."""
    return parse_plan(os.environ.get(INJECT_FAULTS_ENV))


def _parse_float(text: str, token: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ConfigurationError(
            f"malformed number in fault-plan token {token!r}"
        ) from None


def _parse_int(text: str, token: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ConfigurationError(
            f"malformed integer in fault-plan token {token!r}"
        ) from None
