"""Observability rules (``OBS0xx``).

The repository has exactly one sanctioned timing layer:
:mod:`repro.observability`.  Its spans time stages, its metrics carry
wall-clock totals, and :func:`repro.observability.monotonic_seconds`
wraps the monotonic clock for code that needs a raw reading.  Scattered
``time.perf_counter()`` pairs bypass all of it — the reading never lands
in a trace or a metrics export, and each call site reinvents the
subtraction.  ``OBS001`` funnels every timing need through the one
layer.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator, Set

from repro.analysis.engine import FileContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register

#: Monotonic-clock reads that belong inside the observability layer.
_PERF_CLOCKS: Set[str] = {
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
}

#: The package that is allowed to touch the clock directly.
_SANCTIONED_PACKAGE = "repro/observability"


def _in_observability_layer(path: str) -> bool:
    return _SANCTIONED_PACKAGE in path.replace(os.sep, "/")


@register
class ScatteredTimingRule(Rule):
    """OBS001: ad-hoc monotonic-clock timing outside the telemetry layer."""

    code = "OBS001"
    name = "scattered-timing"
    severity = Severity.ERROR
    description = (
        "time.perf_counter()/time.monotonic() outside repro.observability "
        "bypasses the sanctioned timing layer; use observability spans "
        "(repro.observability.span) or monotonic_seconds() so readings "
        "land in traces and metrics exports"
    )
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if _in_observability_layer(ctx.path):
            return
        dotted = ctx.dotted_name(node.func)
        if dotted in _PERF_CLOCKS:
            yield ctx.finding(
                self,
                node,
                f"ad-hoc timing call `{dotted}()`; time through "
                "repro.observability (span(...) or monotonic_seconds())",
            )
