"""Unit tests for the ITRS scaling projection (Fig. 1)."""

import pytest

from repro.errors import ConfigurationError
from repro.scaling.itrs import (
    TECHNOLOGY_NODES,
    TechnologyNode,
    node_by_name,
    projected_voltage_swings,
)


class TestNodes:
    def test_table_spans_45_to_11(self):
        names = [n.name for n in TECHNOLOGY_NODES]
        assert names == ["45nm", "32nm", "22nm", "16nm", "11nm"]

    def test_vdd_follows_itrs(self):
        assert node_by_name("45nm").vdd == 1.0  # simlint: disable=HYG001 (exact by construction)
        assert node_by_name("11nm").vdd == 0.6  # simlint: disable=HYG001 (exact by construction)
        vdds = [n.vdd for n in TECHNOLOGY_NODES]
        assert vdds == sorted(vdds, reverse=True)

    def test_unknown_node_rejected(self):
        with pytest.raises(ConfigurationError):
            node_by_name("7nm")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TechnologyNode("x", -1, 1.0, 0.3)
        with pytest.raises(ConfigurationError):
            TechnologyNode("x", 45, 0.5, 0.7)


class TestProjection:
    @pytest.fixture(scope="class")
    def swings(self):
        return projected_voltage_swings(n_samples=20_000)

    def test_reference_node_is_unity(self, swings):
        assert swings["45nm"] == pytest.approx(1.0)

    def test_monotone_growth(self, swings):
        values = [swings[n.name] for n in TECHNOLOGY_NODES]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_doubles_by_16nm(self, swings):
        """The paper's headline Fig. 1 claim."""
        assert 1.8 <= swings["16nm"] <= 2.3

    def test_11nm_between_2_and_3(self, swings):
        assert 2.3 <= swings["11nm"] <= 3.2

    def test_needs_nodes(self):
        with pytest.raises(ConfigurationError):
            projected_voltage_swings(nodes=())
