"""Executor fault paths: every injected fault recovers bit-identically.

The contract under test (docs/robustness.md): a campaign run under any
seeded fault plan must produce measurement content bit-identical to the
fault-free run — the injector may cost retries, pool rebuilds and
re-simulations, but never change a result.  Recovery *effort* counters
are asserted alongside to pin that each scenario actually exercised the
path it claims to.
"""

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultInjector
from repro.measurement.cache import ResultCache
from repro.measurement.campaign import MeasurementCampaign
from repro.measurement.executor import (
    MAX_BACKOFF_SECONDS,
    MAX_RETRIES_ENV,
    RUN_TIMEOUT_ENV,
    RetryPolicy,
    RunFailure,
)
from repro.measurement.record import diff_measurements

SUBSET = ("mcf", "lbm", "namd")

#: Tiny windows and backoff keep each scenario fast; the recovery logic
#: is identical at any scale.
FAST = RetryPolicy(max_retries=2, backoff_base=0.0)


def _campaign(injector=None, cache=None, jobs=1, retry=FAST, **kwargs):
    kwargs.setdefault("n_cycles", 2000)
    kwargs.setdefault("seed", 3)
    return MeasurementCampaign(
        "Proc100", jobs=jobs, cache=cache, retry=retry,
        injector=injector, **kwargs
    )


def _measure(campaign):
    specs = [campaign.run_spec(name) for name in SUBSET]
    return campaign.measure_specs(specs)


@pytest.fixture(scope="module")
def clean():
    """Fault-free golden measurements for the test subset."""
    return _measure(_campaign())


def _assert_identical(clean_runs, recovered_runs):
    for a, b in zip(clean_runs, recovered_runs):
        assert diff_measurements(a, b) == [], a.spec.label


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2
        assert policy.run_timeout is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"run_timeout": 0.0},
            {"run_timeout": -2.0},
            {"backoff_base": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(backoff_base=0.5)
        assert policy.backoff_seconds(1) == 0.5  # simlint: disable=HYG001 (exact by construction)
        assert policy.backoff_seconds(2) == 1.0  # simlint: disable=HYG001 (exact by construction)
        assert policy.backoff_seconds(10) == MAX_BACKOFF_SECONDS

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV, "5")
        monkeypatch.setenv(RUN_TIMEOUT_ENV, "7.5")
        policy = RetryPolicy.from_env()
        assert policy.max_retries == 5
        assert policy.run_timeout == 7.5  # simlint: disable=HYG001 (exact by construction)

    def test_arguments_beat_env(self, monkeypatch):
        monkeypatch.setenv(MAX_RETRIES_ENV, "5")
        assert RetryPolicy.from_env(max_retries=1).max_retries == 1

    @pytest.mark.parametrize("env,value", [
        (MAX_RETRIES_ENV, "many"), (RUN_TIMEOUT_ENV, "soon"),
    ])
    def test_malformed_env_raises(self, monkeypatch, env, value):
        monkeypatch.setenv(env, value)
        with pytest.raises(ConfigurationError):
            RetryPolicy.from_env()


class TestSerialRecovery:
    def test_transient_exceptions_retried_to_identical_result(self, clean):
        campaign = _campaign(injector=FaultInjector("exception:0.5,seed=1"))
        recovered = _measure(campaign)
        _assert_identical(clean, recovered)
        stats = campaign.executor.stats
        assert stats.retries > 0
        assert all(f.site == "simulate" for f in stats.failures)
        assert all(f.action == "retried" for f in stats.failures)

    def test_always_failing_injection_converges_via_final_clean_attempt(
        self, clean
    ):
        campaign = _campaign(injector=FaultInjector("exception:1.0"))
        recovered = _measure(campaign)
        _assert_identical(clean, recovered)
        stats = campaign.executor.stats
        # Every injected attempt failed; the final clean attempt saved
        # each run: max_retries+1 faulting attempts + 1 clean, per run.
        assert stats.retries == len(SUBSET) * (FAST.max_retries + 1)
        assert stats.attempts == len(SUBSET) * (FAST.max_retries + 2)

    def test_real_persistent_errors_still_propagate(self):
        campaign = _campaign()
        campaign.executor._campaign = None  # force AttributeError inside
        with pytest.raises(AttributeError):
            _measure(campaign)


class TestNoDoubleCounting:
    """Regression: retried/replayed runs must count as simulated once."""

    def test_simulated_counts_runs_not_attempts(self):
        campaign = _campaign(injector=FaultInjector("exception:1.0"))
        _measure(campaign)
        stats = campaign.executor.stats
        assert stats.simulated == len(SUBSET)
        assert stats.attempts > stats.simulated

    def test_parallel_requeues_do_not_inflate_simulated(self):
        campaign = _campaign(
            injector=FaultInjector("crash:1.0"), jobs=2
        )
        _measure(campaign)
        stats = campaign.executor.stats
        assert stats.simulated == len(SUBSET)
        assert stats.requeued > 0

    def test_memo_replay_after_recovery_counts_as_memory_hit(self):
        campaign = _campaign(injector=FaultInjector("exception:1.0"))
        first = _measure(campaign)
        again = _measure(campaign)
        assert [a is b for a, b in zip(first, again)] == [True] * len(SUBSET)
        stats = campaign.executor.stats
        assert stats.simulated == len(SUBSET)
        assert stats.memory_hits == len(SUBSET)


class TestParallelRecovery:
    def test_crash_mid_batch_recovers_identical(self, clean):
        campaign = _campaign(
            injector=FaultInjector("crash:0.5,seed=2"), jobs=2
        )
        recovered = _measure(campaign)
        _assert_identical(clean, recovered)
        stats = campaign.executor.stats
        assert stats.pool_rebuilds > 0
        assert stats.requeued > 0

    def test_total_pool_breakage_degrades_to_serial(self, clean):
        campaign = _campaign(injector=FaultInjector("crash:1.0"), jobs=2)
        recovered = _measure(campaign)
        _assert_identical(clean, recovered)
        stats = campaign.executor.stats
        assert stats.serial_fallbacks == len(SUBSET)
        assert any(f.action == "serial-fallback" for f in stats.failures)
        assert {f.site for f in stats.failures} <= {"pool", "timeout"}

    def test_hung_workers_hit_the_timeout_path(self, clean):
        campaign = _campaign(
            injector=FaultInjector("hang:1.0,hang-seconds=5.0"),
            jobs=2,
            retry=RetryPolicy(
                max_retries=1, run_timeout=0.2, backoff_base=0.0
            ),
        )
        recovered = _measure(campaign)
        _assert_identical(clean, recovered)
        stats = campaign.executor.stats
        assert stats.timeouts > 0
        assert stats.pool_rebuilds > 0
        assert any(f.site == "timeout" for f in stats.failures)

    def test_worker_exceptions_requeue_without_pool_rebuild(self, clean):
        campaign = _campaign(
            injector=FaultInjector("exception:0.5,seed=1"), jobs=2
        )
        recovered = _measure(campaign)
        _assert_identical(clean, recovered)
        stats = campaign.executor.stats
        assert stats.pool_rebuilds == 0
        assert any(f.site == "worker" for f in stats.failures)


class TestCacheCorruptionRecovery:
    def test_corrupted_stores_are_resimulated_identically(
        self, clean, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        chaotic = _campaign(
            injector=FaultInjector("corrupt:1.0"), cache=cache
        )
        _measure(chaotic)  # every stored record is garbled on disk
        assert cache.entry_count() == len(SUBSET)

        warm = _campaign(cache=ResultCache(tmp_path / "cache"))
        recovered = _measure(warm)
        _assert_identical(clean, recovered)
        stats = warm.executor.stats
        assert stats.cache.corrupt == len(SUBSET)
        assert stats.simulated == len(SUBSET)

    def test_transient_read_corruption_falls_back_to_simulation(
        self, clean, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        _measure(_campaign(cache=cache))  # populate, clean

        chaotic = _campaign(
            injector=FaultInjector("corrupt-read:1.0"),
            cache=ResultCache(tmp_path / "cache"),
        )
        recovered = _measure(chaotic)
        _assert_identical(clean, recovered)
        stats = chaotic.executor.stats
        assert stats.cache.corrupt == len(SUBSET)
        assert stats.simulated == len(SUBSET)

        # corrupt-read never touches the disk: a clean reader still hits.
        fresh = _campaign(cache=ResultCache(tmp_path / "cache"))
        _measure(fresh)
        assert fresh.executor.stats.cache.hits == len(SUBSET)


class TestDefaultChaosPlan:
    def test_full_default_plan_end_to_end(self, clean, tmp_path):
        campaign = _campaign(
            injector=FaultInjector("default"),
            cache=ResultCache(tmp_path / "cache"),
            jobs=2,
        )
        recovered = _measure(campaign)
        _assert_identical(clean, recovered)


class TestStats:
    def test_failures_merge_into_global(self):
        from repro.measurement.executor import ExecutorStats

        a, b = ExecutorStats(), ExecutorStats()
        a.retries = 2
        a.failures.append(
            RunFailure("mcf@Proc100", "simulate", "boom", 1, "retried")
        )
        a.merged_into(b)
        assert b.retries == 2
        assert len(b.failures) == 1

    def test_summary_mentions_recovery_only_when_active(self):
        from repro.measurement.executor import ExecutorStats

        stats = ExecutorStats()
        assert "recovery" not in stats.summary()
        stats.timeouts = 1
        assert "recovery" in stats.summary()
        assert stats.recovery_active

    def test_failure_summary_format(self):
        failure = RunFailure(
            "mcf@Proc100", "timeout", "no result within 0.2s", 2, "requeued"
        )
        assert failure.summary() == (
            "mcf@Proc100: attempt 2 failed at timeout "
            "(no result within 0.2s) -> requeued"
        )
