"""Fig. 16 — the sliding-window co-scheduling experiment (473.astar).

Paper: astar running alone has a flat noise profile (~80 droops/1K).
Sliding a restarted copy of astar over the pinned copy exposes both
*constructive* interference offsets (droops nearly double, ~160/1K) and
*destructive* offsets where the pair's droop count stays at the
single-core level even though both cores are busy.
"""

from __future__ import annotations

from repro.core.interference import sliding_window_experiment
from repro.experiments.common import ExperimentResult
from repro.uarch.chip import Chip
from repro.workloads.spec import spec_benchmark


def run(
    quick: bool = False,
    config: str = "Proc3",
    benchmark: str = "astar",
) -> ExperimentResult:
    chip = Chip(config, with_ripple=True)
    workload = spec_benchmark(benchmark)
    experiment = sliding_window_experiment(
        pinned=workload,
        restarted=workload,
        chip=chip,
        interval_seconds=60.0,
        window_cycles=20_000 if quick else 30_000,
        max_intervals=8 if quick else None,
        seed=11,
    )
    result = ExperimentResult(
        experiment_id="Fig. 16",
        title=f"Sliding-window co-schedule of {benchmark} over itself",
        columns=("offset (s)", "co-scheduled droops/1K", "single-core droops/1K"),
    )
    for offset, paired, alone in zip(
        experiment.offsets_s,
        experiment.droops_per_1k,
        experiment.single_core_droops_per_1k,
    ):
        result.add_row(float(offset), float(paired), float(alone))
    ratio = experiment.droops_per_1k / experiment.single_core_droops_per_1k.clip(min=1e-9)
    result.series["experiment"] = experiment
    result.series["max_amplification"] = float(ratio.max())
    result.series["min_amplification"] = float(ratio.min())
    result.notes.append(
        f"amplification range {ratio.min():.2f}x..{ratio.max():.2f}x over "
        "single-core (paper: destructive offsets stay ~1x, constructive "
        "offsets nearly double the droop count)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=True).format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
