"""Metrics registry: counters, gauges and histograms with a fixed catalog.

Every metric the pipeline may record is declared up front in
:data:`CATALOG` with its kind, unit and determinism class; recording an
undeclared name raises.  A closed catalog keeps the docs honest (the
table in ``docs/observability.md`` is generated from the same
declarations) and makes the determinism contract checkable:

* **content metrics** (``deterministic=True``) describe the measured
  physics and the work performed — droop/overshoot events by depth
  bucket, cycles simulated, cache traffic.  Their values are bit-stable
  across ``--jobs N`` for a given starting cache state (enforced by
  ``tests/observability/test_determinism.py``).
* **runtime metrics** (``deterministic=False``) describe this particular
  execution — wall seconds, parallel batches, per-worker run counts —
  and are exported under a separate ``runtime`` key so diffing the
  deterministic sections of two metric files is meaningful.

Exporters: :meth:`MetricsRegistry.json_payload` (machine-diffable JSON)
and :meth:`MetricsRegistry.prometheus_text` (the Prometheus text
exposition format, for scraping long campaigns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple

from repro.errors import ConfigurationError

#: Canonical ``((key, value), ...)`` rendering of a label set.
LabelItems = Tuple[Tuple[str, str], ...]
#: ``(metric name, label items)`` — one exported sample's identity.
SampleKey = Tuple[str, LabelItems]


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric: its meaning, unit and determinism."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    unit: str
    help: str
    #: Bit-stable across ``--jobs N`` (given the same starting cache)?
    deterministic: bool = True
    #: Upper bucket bounds for histograms (``+Inf`` is implicit).
    buckets: Tuple[float, ...] = ()


#: Depth-bucket labels for droop/overshoot event counters: each event's
#: maximum deviation (fraction of nominal) falls into exactly one bucket.
DEPTH_BUCKET_BOUNDS: Tuple[Tuple[str, float], ...] = (
    ("lt2pct", 0.02),
    ("2to3pct", 0.03),
    ("3to5pct", 0.05),
    ("5to10pct", 0.10),
    ("ge10pct", float("inf")),
)

_PER_1K_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)

CATALOG: Dict[str, MetricSpec] = {
    spec.name: spec
    for spec in (
        # -- measurement content (recorded per resolved run) -----------
        MetricSpec(
            "repro_runs_total", "counter", "runs",
            "measurement runs resolved by the executor "
            "(memo + cache + simulation)",
        ),
        MetricSpec(
            "repro_run_cycles_total", "counter", "cycles",
            "execution-window cycles covered by resolved runs",
        ),
        MetricSpec(
            "repro_droop_events_total", "counter", "events",
            "distinct droop excursions in resolved runs, by depth bucket "
            "(label `depth`, fraction of nominal voltage)",
        ),
        MetricSpec(
            "repro_overshoot_events_total", "counter", "events",
            "distinct overshoot excursions in resolved runs, by depth "
            "bucket (label `depth`)",
        ),
        MetricSpec(
            "repro_run_droops_per_1k", "histogram", "events/kcycle",
            "per-run droop samples per 1K cycles at the 2.3% "
            "characterization margin",
            buckets=_PER_1K_BUCKETS,
        ),
        # -- executor / cache traffic -----------------------------------
        MetricSpec(
            "repro_memo_hits_total", "counter", "lookups",
            "runs served from a campaign's in-memory memo",
        ),
        MetricSpec(
            "repro_cache_hits_total", "counter", "lookups",
            "runs replayed from the persistent result cache",
        ),
        MetricSpec(
            "repro_cache_misses_total", "counter", "lookups",
            "persistent-cache lookups that required simulation",
        ),
        MetricSpec(
            "repro_cache_stores_total", "counter", "entries",
            "new entries written to the persistent result cache",
        ),
        MetricSpec(
            "repro_cache_corrupt_total", "counter", "entries",
            "corrupt/truncated cache entries ignored (re-simulated)",
        ),
        MetricSpec(
            "repro_runs_simulated_total", "counter", "runs",
            "runs actually simulated (cache misses)",
        ),
        # -- simulation internals (recorded where the work happens) ----
        MetricSpec(
            "repro_chip_runs_total", "counter", "runs",
            "Chip.run invocations (one execution window per core)",
        ),
        MetricSpec(
            "repro_chip_cycles_total", "counter", "cycles",
            "chip cycles simulated by Chip.run",
        ),
        MetricSpec(
            "repro_pdn_samples_total", "counter", "samples",
            "current samples filtered through the PDN ladder",
        ),
        MetricSpec(
            "repro_campaigns_built_total", "counter", "campaigns",
            "measurement campaigns constructed by the experiment context",
        ),
        # -- core-layer work --------------------------------------------
        MetricSpec(
            "repro_schedules_built_total", "counter", "schedules",
            "batch schedules built by BatchScheduler",
        ),
        MetricSpec(
            "repro_schedule_pairs_total", "counter", "pairs",
            "workload pairs placed into batch schedules",
        ),
        MetricSpec(
            "repro_scheduler_intervals_total", "counter", "intervals",
            "scheduling intervals executed by the online scheduler",
        ),
        MetricSpec(
            "repro_arena_runs_total", "counter", "runs",
            "policy-arena harness invocations",
        ),
        MetricSpec(
            "repro_arena_policies_total", "counter", "policies",
            "policies scored by the arena harness",
        ),
        MetricSpec(
            "repro_arena_groups_total", "counter", "groups",
            "co-running groups placed into arena schedules",
        ),
        MetricSpec(
            "repro_interval_droops_per_1k", "histogram", "events/kcycle",
            "per-interval droop rate observed by the online scheduler",
            buckets=_PER_1K_BUCKETS,
        ),
        MetricSpec(
            "repro_recovery_evaluations_total", "counter", "mechanisms",
            "recovery mechanisms evaluated for an optimal margin",
        ),
        MetricSpec(
            "repro_recovery_rollbacks_per_1k", "gauge", "events/kcycle",
            "expected rollback recoveries per 1K cycles at the chosen "
            "optimal margin (label `mechanism`)",
        ),
        MetricSpec(
            "repro_undervolt_sweeps_total", "counter", "sweeps",
            "Vmin characterization sweeps executed",
        ),
        MetricSpec(
            "repro_undervolt_cells_total", "counter", "cells",
            "(workload, frequency, core-count) cells characterized by "
            "undervolt sweeps",
        ),
        MetricSpec(
            "repro_undervolt_energy_savings_fraction", "gauge", "fraction",
            "energy savings at the frontier Vmin per operating point "
            "(labels `cores`, `ghz`)",
        ),
        # -- runtime (this execution only; never diffed) ----------------
        MetricSpec(
            "repro_parallel_batches_total", "counter", "batches",
            "cache-miss batches fanned out over the process pool",
            deterministic=False,
        ),
        MetricSpec(
            "repro_worker_runs_total", "counter", "runs",
            "runs simulated per pool worker (label `worker`)",
            deterministic=False,
        ),
        MetricSpec(
            "repro_batch_wall_seconds_total", "counter", "s",
            "wall time spent inside executor batches",
            deterministic=False,
        ),
        MetricSpec(
            "repro_experiment_seconds", "gauge", "s",
            "wall time of one experiment harness (label `experiment`)",
            deterministic=False,
        ),
        # -- fault injection & recovery (runtime: recovery effort varies
        # with scheduling even though recovered *content* is bit-stable) -
        MetricSpec(
            "repro_faults_injected_total", "counter", "faults",
            "injected faults actually fired, by hook point (label `site`)",
            deterministic=False,
        ),
        MetricSpec(
            "repro_run_attempts_total", "counter", "attempts",
            "simulation attempts dispatched (first tries plus retries)",
            deterministic=False,
        ),
        MetricSpec(
            "repro_run_retries_total", "counter", "retries",
            "failed run attempts absorbed by the retry path",
            deterministic=False,
        ),
        MetricSpec(
            "repro_run_timeouts_total", "counter", "timeouts",
            "run attempts abandoned for exceeding the per-run timeout",
            deterministic=False,
        ),
        MetricSpec(
            "repro_pool_rebuilds_total", "counter", "rebuilds",
            "process pools torn down and rebuilt after breakage/timeouts",
            deterministic=False,
        ),
        MetricSpec(
            "repro_runs_requeued_total", "counter", "runs",
            "incomplete runs requeued onto a rebuilt process pool",
            deterministic=False,
        ),
        MetricSpec(
            "repro_serial_fallbacks_total", "counter", "runs",
            "runs degraded to in-process serial simulation after "
            "exhausting pool retries",
            deterministic=False,
        ),
        MetricSpec(
            "repro_run_failures_total", "counter", "failures",
            "structured run failures recorded by the executor",
            deterministic=False,
        ),
    )
}


def depth_bucket(depth_fraction: float) -> str:
    """The depth-bucket label for one excursion depth."""
    for label, bound in DEPTH_BUCKET_BOUNDS:
        if depth_fraction < bound:
            return label
    return DEPTH_BUCKET_BOUNDS[-1][0]  # pragma: no cover - inf bound


def _label_items(labels: Mapping[str, Any]) -> LabelItems:
    return tuple((key, str(labels[key])) for key in sorted(labels))


def sample_name(name: str, labels: LabelItems) -> str:
    """Render ``name{a="x",b="y"}`` (Prometheus-style sample identity)."""
    if not labels:
        return name
    rendered = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{rendered}}}"


class _HistogramState:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * (n_buckets + 1)  # +Inf last
        self.total = 0.0
        self.count = 0

    def observe(self, value: float, buckets: Tuple[float, ...]) -> None:
        for i, bound in enumerate(buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        self.total += value
        self.count += 1

    def merge(self, counts: List[int], total: float, count: int) -> None:
        for i, n in enumerate(counts):
            self.bucket_counts[i] += n
        self.total += total
        self.count += count


class MetricsRegistry:
    """One process's (or worker's) recorded metric samples."""

    def __init__(self) -> None:
        self._counters: Dict[SampleKey, float] = {}
        self._gauges: Dict[SampleKey, float] = {}
        self._histograms: Dict[SampleKey, _HistogramState] = {}

    # -- recording ------------------------------------------------------
    def _spec(self, name: str, kind: str) -> MetricSpec:
        spec = CATALOG.get(name)
        if spec is None:
            raise ConfigurationError(
                f"unknown metric {name!r}; declare it in "
                "repro.observability.metrics.CATALOG"
            )
        if spec.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} is a {spec.kind}, not a {kind}"
            )
        return spec

    def increment(
        self, name: str, value: float = 1.0, **labels: Any
    ) -> None:
        self._spec(name, "counter")
        if value < 0:
            raise ConfigurationError(
                f"counter {name!r} cannot decrease (got {value})"
            )
        key = (name, _label_items(labels))
        self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        self._spec(name, "gauge")
        self._gauges[(name, _label_items(labels))] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        spec = self._spec(name, "histogram")
        key = (name, _label_items(labels))
        state = self._histograms.get(key)
        if state is None:
            state = self._histograms[key] = _HistogramState(
                len(spec.buckets)
            )
        state.observe(float(value), spec.buckets)

    # -- worker merge ---------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Picklable dump for shipping a worker's samples to the parent."""
        return {
            "counters": [
                [name, list(labels), value]
                for (name, labels), value in self._counters.items()
            ],
            "gauges": [
                [name, list(labels), value]
                for (name, labels), value in self._gauges.items()
            ],
            "histograms": [
                [name, list(labels), h.bucket_counts, h.total, h.count]
                for (name, labels), h in self._histograms.items()
            ],
        }

    def merge(self, payload: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` into this registry (adds counters and
        histogram buckets; gauges take the incoming value)."""
        for name, labels, value in payload.get("counters", ()):
            key = (name, tuple((k, v) for k, v in labels))
            self._counters[key] = self._counters.get(key, 0.0) + value
        for name, labels, value in payload.get("gauges", ()):
            self._gauges[(name, tuple((k, v) for k, v in labels))] = value
        for name, labels, counts, total, count in payload.get(
            "histograms", ()
        ):
            key = (name, tuple((k, v) for k, v in labels))
            state = self._histograms.get(key)
            if state is None:
                state = self._histograms[key] = _HistogramState(
                    len(counts) - 1
                )
            state.merge(counts, total, count)

    # -- export ---------------------------------------------------------
    @staticmethod
    def _render_value(value: float) -> float:
        # Counters are conceptually integers most of the time; exporting
        # 12 rather than 12.0 keeps the JSON diffable by eye.
        return int(value) if float(value).is_integer() else value

    def json_payload(self) -> Dict[str, Any]:
        """Deterministic sections first, ``runtime`` quarantined last."""
        payload: Dict[str, Any] = {
            "version": 1,
            "counters": {},
            "gauges": {},
            "histograms": {},
            "runtime": {},
        }
        for (name, labels), value in sorted(self._counters.items()):
            section = (
                payload["counters"]
                if CATALOG[name].deterministic
                else payload["runtime"]
            )
            section[sample_name(name, labels)] = self._render_value(value)
        for (name, labels), value in sorted(self._gauges.items()):
            section = (
                payload["gauges"]
                if CATALOG[name].deterministic
                else payload["runtime"]
            )
            section[sample_name(name, labels)] = value
        for (name, labels), state in sorted(self._histograms.items()):
            spec = CATALOG[name]
            entry = {
                "buckets": {
                    f"le_{bound:g}": count
                    for bound, count in zip(
                        spec.buckets, state.bucket_counts
                    )
                },
                "inf": state.bucket_counts[-1],
                "sum": state.total,
                "count": state.count,
            }
            section = (
                payload["histograms"]
                if spec.deterministic
                else payload["runtime"]
            )
            section[sample_name(name, labels)] = entry
        return payload

    def prometheus_text(self) -> str:
        """The Prometheus text exposition format (one scrape's worth)."""
        lines: List[str] = []
        seen_help: set = set()

        def _header(name: str) -> None:
            if name in seen_help:
                return
            seen_help.add(name)
            spec = CATALOG[name]
            lines.append(f"# HELP {name} {spec.help} (unit: {spec.unit})")
            lines.append(f"# TYPE {name} {spec.kind}")

        for (name, labels), value in sorted(self._counters.items()):
            _header(name)
            lines.append(
                f"{sample_name(name, labels)} {self._render_value(value)}"
            )
        for (name, labels), value in sorted(self._gauges.items()):
            _header(name)
            lines.append(f"{sample_name(name, labels)} {value}")
        for (name, labels), state in sorted(self._histograms.items()):
            _header(name)
            spec = CATALOG[name]
            cumulative = 0
            for bound, count in zip(spec.buckets, state.bucket_counts):
                cumulative += count
                key = sample_name(
                    f"{name}_bucket", labels + (("le", f"{bound:g}"),)
                )
                lines.append(f"{key} {cumulative}")
            cumulative += state.bucket_counts[-1]
            inf_key = sample_name(
                f"{name}_bucket", labels + (("le", "+Inf"),)
            )
            lines.append(f"{inf_key} {cumulative}")
            lines.append(
                f"{sample_name(name + '_sum', labels)} {state.total}"
            )
            lines.append(
                f"{sample_name(name + '_count', labels)} {state.count}"
            )
        return "\n".join(lines) + ("\n" if lines else "")

    # -- test / report helpers -----------------------------------------
    def counter_value(self, name: str, **labels: Any) -> float:
        """Current value of one counter sample (0 if never recorded)."""
        self._spec(name, "counter")
        return self._counters.get((name, _label_items(labels)), 0.0)

    def counters_matching(self, prefix: str) -> Dict[str, float]:
        """Rendered-name → value for counters whose name starts with
        ``prefix`` (report summaries)."""
        return {
            sample_name(name, labels): value
            for (name, labels), value in sorted(self._counters.items())
            if name.startswith(prefix)
        }
