"""Unit tests for the VRM ripple model."""

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.pdn.vrm import VoltageRegulatorModule


class TestRipple:
    def test_zero_mean_and_bounded(self):
        vrm = VoltageRegulatorModule(jitter_fraction=0.0)
        ripple = vrm.ripple(100000, 5e-10, nominal_voltage=1.3)
        amplitude = vrm.ripple_fraction * 1.3
        assert abs(ripple.mean()) < 0.05 * amplitude
        assert ripple.max() <= amplitude / 2 + 1e-12
        assert ripple.min() >= -amplitude / 2 - 1e-12

    def test_peak_to_peak_close_to_spec(self):
        vrm = VoltageRegulatorModule(jitter_fraction=0.0)
        ripple = vrm.ripple(200000, 5e-10, nominal_voltage=1.0)
        assert ripple.max() - ripple.min() == pytest.approx(
            vrm.ripple_fraction, rel=0.05
        )

    def test_periodicity_without_jitter(self):
        vrm = VoltageRegulatorModule(
            switching_frequency_hz=1 * units.MEGA_HERTZ, ripple_fraction=0.02, jitter_fraction=0.0
        )
        dt = 1e-9
        period = int(round(1 / (1e6 * dt)))
        ripple = vrm.ripple(5 * period, dt, 1.0)
        assert np.allclose(ripple[:period], ripple[period : 2 * period], atol=1e-9)

    def test_zero_ripple_configuration(self):
        vrm = VoltageRegulatorModule(ripple_fraction=0.0)
        assert np.all(vrm.ripple(100, 1e-9, 1.0) == 0.0)  # simlint: disable=HYG001 (exact by construction)

    def test_deterministic_with_seed(self):
        vrm = VoltageRegulatorModule()
        a = vrm.ripple(1000, 1e-9, 1.0, seed=7)
        b = vrm.ripple(1000, 1e-9, 1.0, seed=7)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VoltageRegulatorModule(switching_frequency_hz=0)
        with pytest.raises(ConfigurationError):
            VoltageRegulatorModule(ripple_fraction=0.5)
        vrm = VoltageRegulatorModule()
        with pytest.raises(ConfigurationError):
            vrm.ripple(0, 1e-9, 1.0)
        with pytest.raises(ConfigurationError):
            vrm.ripple(10, -1e-9, 1.0)
