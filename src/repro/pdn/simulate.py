"""Time-domain PDN simulation: current trace in, voltage trace out.

The fast path discretizes the ladder's single-input (load current) /
single-output (die voltage) transfer function with the bilinear transform
and runs it through :func:`scipy.signal.sosfilt` in second-order sections,
which is numerically robust across the network's six decades of time
constants and fast enough to sweep the paper's 881 workload runs.

A deliberately simple trapezoidal (Crank–Nicolson) integrator over the full
state-space model is kept as a reference implementation; the unit tests
check the two against each other on short traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy import signal

from repro import observability as obs
from repro.errors import ConfigurationError, SimulationError
from repro.pdn.network import PowerDeliveryNetwork
from repro.pdn.vrm import VoltageRegulatorModule
from repro.random_utils import SeedLike


@dataclass(frozen=True)
class VoltageTrace:
    """A sampled on-die voltage waveform.

    Parameters
    ----------
    samples:
        Voltage per sample, in volts.
    dt_seconds:
        Sample period.
    nominal_voltage:
        The regulator set-point the deviations are measured against.
    """

    samples: np.ndarray
    dt_seconds: float
    nominal_voltage: float

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=float)
        if samples.ndim != 1 or samples.size == 0:
            raise ConfigurationError("samples must be a non-empty 1-D array")
        object.__setattr__(self, "samples", samples)
        if self.dt_seconds <= 0:
            raise ConfigurationError("dt_seconds must be positive")
        if self.nominal_voltage <= 0:
            raise ConfigurationError("nominal_voltage must be positive")

    def __len__(self) -> int:
        return int(self.samples.size)

    @property
    def duration_seconds(self) -> float:
        return len(self) * self.dt_seconds

    def deviations_fraction(self) -> np.ndarray:
        """Per-sample deviation from nominal, as a signed fraction.

        Negative values are droops, positive values are overshoots —
        the quantity plotted on the x-axis of the paper's Figs. 7 and 9.
        The array is computed once and memoized (droop detection and
        histogram binning both consume it); treat it as read-only.
        """
        cached = self.__dict__.get("_deviations")
        if cached is None:
            cached = (
                (self.samples - self.nominal_voltage) / self.nominal_voltage
            )
            object.__setattr__(self, "_deviations", cached)
        return cached

    def peak_to_peak(self) -> float:
        """Peak-to-peak swing in volts."""
        return float(self.samples.max() - self.samples.min())

    def peak_to_peak_fraction(self) -> float:
        """Peak-to-peak swing as a fraction of nominal voltage."""
        return self.peak_to_peak() / self.nominal_voltage

    def max_droop_fraction(self) -> float:
        """Deepest droop below nominal, as a positive fraction."""
        return float(max(0.0, -self.deviations_fraction().min()))

    def max_overshoot_fraction(self) -> float:
        """Highest overshoot above nominal, as a positive fraction."""
        return float(max(0.0, self.deviations_fraction().max()))

    def window(self, start: int, stop: int) -> "VoltageTrace":
        """A sub-trace covering ``samples[start:stop]``."""
        if not 0 <= start < stop <= len(self):
            raise ConfigurationError("invalid window bounds")
        return VoltageTrace(
            self.samples[start:stop], self.dt_seconds, self.nominal_voltage
        )


class TransientSimulator:
    """Fast LTI solver for one PDN at a fixed sample rate.

    Parameters
    ----------
    network:
        The power-delivery ladder to simulate.
    dt_seconds:
        Sample period of the current stimulus (for per-cycle current
        traces this is one clock period).
    vrm:
        Optional regulator model whose switching ripple is superimposed on
        the simulated response.  Pass ``None`` for an ideal, ripple-free
        source (useful in analytical tests).
    """

    def __init__(
        self,
        network: PowerDeliveryNetwork,
        dt_seconds: float,
        vrm: Optional[VoltageRegulatorModule] = None,
    ) -> None:
        if dt_seconds <= 0:
            raise ConfigurationError("dt_seconds must be positive")
        self._network = network
        self._dt = float(dt_seconds)
        self._vrm = vrm
        self._sos, self._zi_unit = self._discretize()

    @property
    def network(self) -> PowerDeliveryNetwork:
        return self._network

    @property
    def dt_seconds(self) -> float:
        return self._dt

    def discrete_sections(self) -> tuple[np.ndarray, np.ndarray]:
        """The (sos, unit-step zi) pair of the discretized current channel.

        Exposed for cycle-stepped co-simulation (e.g. closed-loop
        throttling) where the caller advances the filter one sample at a
        time while reacting to the output voltage.
        """
        return self._sos.copy(), self._zi_unit.copy()

    def _discretize(self) -> tuple[np.ndarray, np.ndarray]:
        """Bilinear-discretize the current→voltage channel to SOS form."""
        a, b, c, d = self._network.state_space()
        # Current channel only; the source channel contributes exactly the
        # nominal voltage once the network starts from its DC operating
        # point (DC gain from the source to the die node is unity).
        zeros, poles, gain = signal.ss2zpk(a, b[:, [1]], c, d[:, [1]])
        zd, pd, kd = signal.bilinear_zpk(
            np.atleast_1d(np.squeeze(zeros)), poles, gain, fs=1.0 / self._dt
        )
        sos = signal.zpk2sos(zd, pd, kd)
        zi_unit = signal.sosfilt_zi(sos)
        return sos, zi_unit

    # ------------------------------------------------------------------
    # Fast path
    # ------------------------------------------------------------------
    def simulate(
        self,
        current_amps: np.ndarray,
        seed: SeedLike = None,
        include_ripple: bool = True,
    ) -> VoltageTrace:
        """Simulate the die voltage for a per-sample current trace.

        The network starts at the DC operating point of the first current
        sample, so there is no artificial startup transient; pass a short
        warm-up prefix if the stimulus itself begins abruptly.
        """
        current = np.asarray(current_amps, dtype=float)
        if current.ndim != 1 or current.size == 0:
            raise SimulationError("current trace must be a non-empty 1-D array")
        if np.any(~np.isfinite(current)):
            raise SimulationError("current trace contains non-finite values")
        with obs.span("pdn.simulate", samples=int(current.size)):
            obs.increment("repro_pdn_samples_total", int(current.size))
            zi = self._zi_unit * current[0]
            response, _ = signal.sosfilt(self._sos, current, zi=zi)
            voltage = self._network.nominal_voltage + response
            if include_ripple and self._vrm is not None:
                voltage = voltage + self._vrm.ripple(
                    current.size,
                    self._dt,
                    self._network.nominal_voltage,
                    seed=seed,
                )
        return VoltageTrace(voltage, self._dt, self._network.nominal_voltage)

    def simulate_batch(
        self,
        current_amps: np.ndarray,
        seeds: Optional[Sequence[SeedLike]] = None,
        include_ripple: bool = True,
    ) -> List[VoltageTrace]:
        """Simulate many current traces through one batched filter call.

        ``current_amps`` stacks one trace per row; ``seeds`` supplies
        the per-row ripple seed.  The SOS filter is linear and each
        row's initial condition scales linearly with its first sample,
        so one ``sosfilt`` over the matrix returns every row
        bit-identical to a separate :meth:`simulate` call — pinned by
        the batched-filter property tests.  One ``pdn.simulate`` span
        covers the whole batch (there are no per-row spans).
        """
        currents = np.asarray(current_amps, dtype=float)
        if currents.ndim != 2 or currents.size == 0:
            raise SimulationError(
                "current batch must be a non-empty 2-D array"
            )
        if np.any(~np.isfinite(currents)):
            raise SimulationError("current trace contains non-finite values")
        n_runs, n_samples = currents.shape
        if seeds is None:
            seeds = [None] * n_runs
        if len(seeds) != n_runs:
            raise SimulationError("one seed per current trace required")
        with obs.span(
            "pdn.simulate", samples=int(currents.size), batched=n_runs
        ):
            obs.increment("repro_pdn_samples_total", int(currents.size))
            # zi is linear in the DC operating point: scale the unit
            # initial condition by each row's first sample.
            zi = self._zi_unit[:, None, :] * currents[None, :, 0, None]
            response, _ = signal.sosfilt(
                self._sos, currents, axis=-1, zi=zi
            )
            voltage = self._network.nominal_voltage + response
            if include_ripple and self._vrm is not None:
                for index in range(n_runs):
                    voltage[index] += self._vrm.ripple(
                        n_samples,
                        self._dt,
                        self._network.nominal_voltage,
                        seed=seeds[index],
                    )
        return [
            VoltageTrace(
                voltage[index], self._dt, self._network.nominal_voltage
            )
            for index in range(n_runs)
        ]

    def step_response(
        self, low_amps: float, high_amps: float, n_samples: int = 4096
    ) -> VoltageTrace:
        """Voltage response to a single low→high current step (no ripple)."""
        from repro.pdn.stimulus import current_step

        stimulus = current_step(
            n_samples, low_amps, high_amps, step_at=n_samples // 8
        )
        return self.simulate(stimulus, include_ripple=False)

    # ------------------------------------------------------------------
    # Reference path (for validation)
    # ------------------------------------------------------------------
    def simulate_reference(self, current_amps: np.ndarray) -> VoltageTrace:
        """Trapezoidal integration of the full state-space model.

        Orders of magnitude slower than :meth:`simulate` (Python loop) but
        independent of the zpk/SOS machinery; used by tests to validate the
        fast path.  No VRM ripple is added.
        """
        current = np.asarray(current_amps, dtype=float)
        if current.ndim != 1 or current.size == 0:
            raise SimulationError("current trace must be a non-empty 1-D array")
        a, b, c, d = self._network.state_space()
        n_states = a.shape[0]
        identity = np.eye(n_states)
        half = self._dt / 2.0
        lhs = np.linalg.inv(identity - half * a)
        propagate = lhs @ (identity + half * a)
        inject = lhs @ (half * b)

        v_source = self._network.nominal_voltage
        state = self._network.dc_operating_point(current[0])
        output = np.empty(current.size)
        u_prev = np.array([v_source, current[0]])
        output[0] = (c @ state + d @ u_prev).item()
        for k in range(1, current.size):
            u_next = np.array([v_source, current[k]])
            state = propagate @ state + inject @ (u_prev + u_next)
            output[k] = (c @ state + d @ u_next).item()
            u_prev = u_next
        return VoltageTrace(output, self._dt, v_source)

    def natural_frequencies_hz(self) -> np.ndarray:
        """Oscillatory eigenfrequencies of the network, ascending (Hz)."""
        a, _, _, _ = self._network.state_space()
        eigenvalues = np.linalg.eigvals(a)
        freqs = np.abs(eigenvalues.imag) / (2.0 * np.pi)
        return np.sort(freqs[freqs > 0.0])
