"""Shared, memoized measurement context for experiment harnesses.

Several figures draw on the same underlying campaigns (the Proc3 pairing
sweep feeds Figs. 17-19 and Tab. I; the Proc100/25/3 suites feed
Figs. 7-10).  Campaigns memoize per-run measurements internally; this
module additionally caches the campaign objects themselves so harnesses
and benchmarks share work within a process, and wires every campaign to
the process-spanning executor layer:

* a shared persistent :class:`~repro.measurement.cache.ResultCache`
  (``~/.cache/repro`` / ``$REPRO_CACHE_DIR`` / ``--cache-dir``), so a
  fresh process replays warm runs instead of re-simulating — this closes
  the old cross-process coherence hole where the ``lru_cache`` here was
  keyed only by ``(config, n_cycles, seed)`` and nothing outlived the
  process;
* process fan-out for cache misses (``$REPRO_JOBS`` / ``--jobs``);
* fault-tolerance knobs: retry budget and per-run timeout
  (``$REPRO_MAX_RETRIES`` / ``$REPRO_RUN_TIMEOUT`` / ``--max-retries`` /
  ``--run-timeout``) and the seeded fault plan
  (``$REPRO_INJECT_FAULTS`` / ``--inject-faults``; see
  :mod:`repro.faults`).

:func:`configure_execution` changes those knobs at runtime (the CLI calls
it); it also drops the memoized campaigns, since a campaign built under
the old settings would silently keep using them.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Optional, Tuple

from repro import observability as obs
from repro.faults import FaultInjector, FaultPlan, plan_from_env
from repro.measurement.cache import ResultCache
from repro.measurement.campaign import MeasurementCampaign
from repro.measurement.executor import RetryPolicy, default_jobs

#: A reduced benchmark subset for quick experiment variants: spans the
#: suite's noise spectrum (memory-bound, branchy, phased, compute-dense).
QUICK_SPEC_SUBSET: Tuple[str, ...] = (
    "astar", "gamess", "lbm", "libquantum", "mcf",
    "namd", "povray", "sjeng", "sphinx", "tonto",
)

QUICK_PARSEC_SUBSET: Tuple[str, ...] = ("canneal", "streamcluster", "swaptions")

#: Window lengths for full vs quick protocols.
FULL_WINDOW_CYCLES = 40_000
QUICK_WINDOW_CYCLES = 25_000

#: Environment switch to disable the persistent cache entirely.
NO_CACHE_ENV = "REPRO_NO_CACHE"

#: Runtime execution overrides (None = fall back to the environment).
_jobs_override: Optional[int] = None
_cache_dir_override: Optional[str] = None
_no_cache_override: Optional[bool] = None
_max_retries_override: Optional[int] = None
_run_timeout_override: Optional[float] = None
_fault_plan_override: Optional[str] = None

#: The shared cache instance (one per (directory, enabled, plan) setting,
#: so all campaigns see one coherent set of stats and entries — and a
#: plan change rebinds the cache so its injector hooks follow suit).
_shared_cache: Optional[ResultCache] = None
_shared_cache_settings: Optional[
    Tuple[Optional[str], bool, Optional[str]]
] = None


def _env_no_cache() -> bool:
    return os.environ.get(NO_CACHE_ENV, "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def execution_jobs() -> int:
    """Effective worker count (override, else ``$REPRO_JOBS``, else 1)."""
    if _jobs_override is not None:
        return _jobs_override
    return default_jobs()


def cache_enabled() -> bool:
    if _no_cache_override is not None:
        return not _no_cache_override
    return not _env_no_cache()


def fault_plan() -> Optional[FaultPlan]:
    """The effective fault plan (override, else ``$REPRO_INJECT_FAULTS``)."""
    if _fault_plan_override is not None:
        from repro.faults import parse_plan

        return parse_plan(_fault_plan_override)
    return plan_from_env()


def retry_policy() -> RetryPolicy:
    """The effective retry policy (overrides, else the environment)."""
    return RetryPolicy.from_env(
        max_retries=_max_retries_override,
        run_timeout=_run_timeout_override,
    )


def shared_cache() -> Optional[ResultCache]:
    """The process-wide result cache (``None`` when caching is off)."""
    global _shared_cache, _shared_cache_settings
    plan = fault_plan()
    settings = (
        _cache_dir_override,
        cache_enabled(),
        plan.spec if plan is not None else None,
    )
    if settings != _shared_cache_settings:
        _shared_cache_settings = settings
        if not cache_enabled():
            _shared_cache = None
        else:
            _shared_cache = ResultCache(_cache_dir_override)
    return _shared_cache


def configure_execution(
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    no_cache: Optional[bool] = None,
    max_retries: Optional[int] = None,
    run_timeout: Optional[float] = None,
    inject_faults: Optional[str] = None,
) -> None:
    """Set the executor knobs for every campaign built after this call.

    ``None`` leaves a knob at its environment-derived default.  Memoized
    campaigns are dropped: they were built against the previous settings
    and holding on to them would reintroduce the coherence hole this
    module exists to close.
    """
    global _jobs_override, _cache_dir_override, _no_cache_override
    global _max_retries_override, _run_timeout_override, _fault_plan_override
    _jobs_override = jobs
    _cache_dir_override = cache_dir
    _no_cache_override = no_cache
    _max_retries_override = max_retries
    _run_timeout_override = run_timeout
    _fault_plan_override = inject_faults
    reset_campaigns()


def reset_campaigns() -> None:
    """Forget memoized campaigns (and the shared cache binding)."""
    global _shared_cache, _shared_cache_settings
    _build_campaign.cache_clear()
    _shared_cache = None
    _shared_cache_settings = None


@lru_cache(maxsize=8)
def _build_campaign(
    config: str,
    n_cycles: int,
    seed: int,
    jobs: int,
    cache_settings: Tuple[Optional[str], bool],
    retry: RetryPolicy,
    plan_spec: Optional[str],
    n_cores: int,
) -> MeasurementCampaign:
    # cache_settings is part of the key so that campaigns built under
    # different --cache-dir / --no-cache regimes never alias each other;
    # retry and plan_spec likewise keep fault-tolerance regimes apart,
    # and n_cores keeps a 4-core arena campaign from aliasing the
    # dual-core one for the same configuration.
    del cache_settings
    injector = FaultInjector(plan_spec) if plan_spec is not None else None
    with obs.span(
        "campaign.build", config=config, cycles=n_cycles, jobs=jobs
    ):
        obs.increment("repro_campaigns_built_total")
        return MeasurementCampaign(
            config,
            n_cycles=n_cycles,
            seed=seed,
            jobs=jobs,
            cache=shared_cache(),
            retry=retry,
            injector=injector,
            n_cores=n_cores,
        )


def get_campaign(
    config: str,
    n_cycles: int = FULL_WINDOW_CYCLES,
    seed: int = 0,
    n_cores: int = 2,
) -> MeasurementCampaign:
    """A process-wide shared campaign for one configuration.

    Campaigns route every measurement through the executor layer, so
    results are coherent across processes via the shared persistent
    cache, not just within this process's memo.
    """
    plan = fault_plan()
    return _build_campaign(
        config,
        n_cycles,
        seed,
        execution_jobs(),
        (_cache_dir_override, cache_enabled()),
        retry_policy(),
        plan.spec if plan is not None else None,
        n_cores,
    )


def spec_names(quick: bool) -> Tuple[str, ...]:
    if quick:
        return QUICK_SPEC_SUBSET
    from repro.workloads.spec import SPEC_NAMES

    return SPEC_NAMES


def parsec_names(quick: bool) -> Tuple[str, ...]:
    if quick:
        return QUICK_PARSEC_SUBSET
    from repro.workloads.parsec import PARSEC

    return tuple(sorted(PARSEC))


def window_cycles(quick: bool) -> int:
    return QUICK_WINDOW_CYCLES if quick else FULL_WINDOW_CYCLES
