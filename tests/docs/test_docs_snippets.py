"""Executable-documentation gate.

Every fenced code block whose info string is exactly ``python`` in
``README.md`` and ``docs/*.md`` is executed in a fresh subprocess with
``src`` on ``PYTHONPATH``.  A snippet that fails to run is documentation
drift, and this gate turns it into a test failure with the snippet's
file and line in the test id.

Blocks that are deliberately illustrative — pseudo-code, elided
fragments, API sketches — must opt out by using the info string
``python fragment`` (rendered identically by GitHub), which this gate
skips.  ``bash``/plain fences are never executed.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path
from typing import List, Tuple

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SNIPPET_TIMEOUT_SECONDS = 180


def documentation_pages() -> List[Path]:
    return [REPO_ROOT / "README.md"] + sorted(
        (REPO_ROOT / "docs").glob("*.md")
    )


def extract_python_blocks(path: Path) -> List[Tuple[int, str]]:
    """Return ``(start_line, source)`` for each runnable ``python`` fence.

    Fences indented up to three spaces (CommonMark list-item fences) are
    recognized, and the fence's indentation is stripped from the block's
    lines so list-embedded snippets stay syntactically valid.
    """
    blocks: List[Tuple[int, str]] = []
    fence_indent = 0
    fence_info = None
    start_line = 0
    collected: List[str] = []
    for lineno, raw in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        stripped = raw.lstrip(" ")
        indent = len(raw) - len(stripped)
        if fence_info is None:
            if stripped.startswith("```") and indent <= 3:
                fence_indent = indent
                fence_info = stripped[3:].strip()
                start_line = lineno
                collected = []
        elif stripped == "```":
            if fence_info == "python":
                blocks.append((start_line, "\n".join(collected) + "\n"))
            fence_info = None
        else:
            collected.append(raw[min(fence_indent, indent):])
    return blocks


def snippet_params() -> List["pytest.param"]:
    params = []
    for path in documentation_pages():
        rel = path.relative_to(REPO_ROOT)
        for lineno, source in extract_python_blocks(path):
            params.append(pytest.param(source, id=f"{rel}:{lineno}"))
    return params


def test_gate_is_not_vacuous():
    """The docs must keep at least a handful of runnable snippets."""
    assert len(snippet_params()) >= 3


@pytest.mark.parametrize("source", snippet_params())
def test_documentation_snippet_runs(source: str, tmp_path: Path) -> None:
    env = dict(os.environ)
    src_dir = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir + os.pathsep + existing if existing else src_dir
    )
    result = subprocess.run(
        [sys.executable, "-"],
        input=source,
        capture_output=True,
        text=True,
        cwd=tmp_path,
        env=env,
        timeout=SNIPPET_TIMEOUT_SECONDS,
    )
    assert result.returncode == 0, (
        "documentation snippet failed to execute\n"
        "--- snippet ---\n"
        f"{source}"
        "--- stderr ---\n"
        f"{result.stderr}"
    )
