"""Concurrency-safety dataflow: seed provenance and payload picklability.

The parallel campaign executor's bit-identical-to-serial guarantee rests
on three conventions that nothing in the type system enforces:

1. every random stream drawn inside a worker is *derived from the run's
   seed material* (a parameter threaded from the spec), never fresh
   entropy or a constant (``CON001``);
2. everything shipped to a :class:`ProcessPoolExecutor` is picklable —
   module-level functions, not lambdas or closures (``CON002``);
3. workers do not write module globals, because those writes die with
   the worker process and silently diverge from serial runs (``CON003``).

This pass finds the pool dispatch sites, resolves their payload
callables through the project symbol table, computes the
*worker-reachable* function set as a breadth-first closure over the call
graph, then audits that set with a flow-insensitive taint analysis: a
name is *seed-derived* when it is a parameter or was ever assigned an
expression mentioning a seed-derived name.  The call-graph plumbing
(payload scanning, the closure itself) lives in
:mod:`repro.analysis.flow.callgraph`, shared with the effect-inference
and determinism-taint passes so all three audit the same function set.

Run :func:`repro.analysis.flow.inference.run_dimension_pass` first — it
populates the class attribute-type tables the shared call-graph
resolution reuses.
"""

from __future__ import annotations

import ast
from typing import List, Set, Union

from repro.analysis.findings import Finding
from repro.analysis.flow.callgraph import (
    MUTATING_METHODS,
    iter_dispatch_payloads,
    param_derived_names,
    reachable,
    worker_entries,
)
from repro.analysis.flow.symbols import (
    STREAM_FACTORIES,
    FunctionInfo,
    ModuleInfo,
    Project,
)
from repro.analysis.registry import get_rule


class ConcurrencyPass:
    """CON001–CON003 over one analyzed project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.findings: List[Finding] = []

    def _report(
        self, code: str, module: ModuleInfo, node: ast.AST, message: str
    ) -> None:
        self.findings.append(
            module.ctx.finding(get_rule(code), node, message)
        )

    # ------------------------------------------------------------------
    # Dispatch sites (CON002)
    # ------------------------------------------------------------------
    def _check_dispatches(self, fn: FunctionInfo) -> None:
        """CON002: lambdas and closure locals shipped to a pool."""
        local_defs = {
            child.name
            for child in ast.walk(fn.node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not fn.node
        }
        lambda_names = {
            node.targets[0].id
            for node in ast.walk(fn.node)
            if isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Lambda)
        }
        for _call, payload in iter_dispatch_payloads(fn):
            if isinstance(payload, ast.Lambda):
                self._report(
                    "CON002", fn.module, payload,
                    "lambda shipped to a process pool; pool payloads "
                    "are pickled by name and must be module-level "
                    "functions",
                )
            elif isinstance(payload, ast.Name) and (
                payload.id in local_defs or payload.id in lambda_names
            ):
                self._report(
                    "CON002", fn.module, payload,
                    f"`{payload.id}` is a closure-captured local; "
                    "process-pool payloads must be module-level "
                    "functions",
                )

    # ------------------------------------------------------------------
    # Worker-side audits (CON001, CON003)
    # ------------------------------------------------------------------
    def _audit_worker(self, fn: FunctionInfo) -> None:
        module = fn.module
        tainted = param_derived_names(fn)
        global_decls: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                global_decls.update(node.names)

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                self._audit_factory_call(fn, module, node, tainted)
                self._audit_mutation_call(fn, module, node, tainted)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                self._audit_global_store(fn, module, node, global_decls,
                                         tainted)

    def _audit_factory_call(
        self,
        fn: FunctionInfo,
        module: ModuleInfo,
        node: ast.Call,
        tainted: Set[str],
    ) -> None:
        dotted = module.ctx.dotted_name(node.func)
        if dotted not in STREAM_FACTORIES:
            return
        seed_args = list(node.args) + [kw.value for kw in node.keywords]
        if not seed_args:
            self._report(
                "CON001", module, node,
                f"`{dotted}()` inside worker-reachable "
                f"{fn.qualname} draws fresh entropy; derive the stream "
                "from the run's seed parameter",
            )
            return
        derived = any(
            isinstance(sub, ast.Name) and sub.id in tainted
            for arg in seed_args
            for sub in ast.walk(arg)
        )
        if not derived:
            self._report(
                "CON001", module, node,
                f"seed material for `{dotted}` in worker-reachable "
                f"{fn.qualname} is not derived from its parameters; "
                "parallel runs would share or randomize the stream",
            )

    def _audit_mutation_call(
        self,
        fn: FunctionInfo,
        module: ModuleInfo,
        node: ast.Call,
        tainted: Set[str],
    ) -> None:
        if not (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.attr in MUTATING_METHODS
        ):
            return
        name = node.func.value.id
        if name in tainted or name not in module.mutable_globals:
            return
        self._report(
            "CON003", module, node,
            f"module global `{name}` mutated via .{node.func.attr}() in "
            f"worker-reachable {fn.qualname}; worker writes never reach "
            "the parent process",
        )

    def _audit_global_store(
        self,
        fn: FunctionInfo,
        module: ModuleInfo,
        node: Union[ast.Assign, ast.AugAssign],
        global_decls: Set[str],
        tainted: Set[str],
    ) -> None:
        targets = node.targets if isinstance(node, ast.Assign) else [
            node.target
        ]
        for target in targets:
            if isinstance(target, ast.Name) and target.id in global_decls:
                self._report(
                    "CON003", module, node,
                    f"module global `{target.id}` rebound in "
                    f"worker-reachable {fn.qualname}; the write dies with "
                    "the worker process",
                )
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in module.mutable_globals
                and target.value.id not in tainted
            ):
                self._report(
                    "CON003", module, node,
                    f"module global `{target.value.id}` written by "
                    f"subscript in worker-reachable {fn.qualname}; the "
                    "write dies with the worker process",
                )

    # ------------------------------------------------------------------
    def run(self) -> List[Finding]:
        entries: List[FunctionInfo] = []
        for fn in self.project.functions.values():
            self._check_dispatches(fn)
            entries.extend(worker_entries(self.project, fn))
        for fn in reachable(self.project, entries):
            self._audit_worker(fn)
        return self.findings


def run_concurrency_pass(project: Project) -> List[Finding]:
    """All CON findings for an analyzed project."""
    return ConcurrencyPass(project).run()
