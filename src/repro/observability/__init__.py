"""Zero-dependency instrumentation for the simulation pipeline.

The paper characterizes voltage noise by *instrumenting* a production
processor; this package gives the reproduction the same courtesy.  Three
coupled facilities, all off by default:

* **tracing** — hierarchical wall-time spans
  (``campaign.batch`` → ``run.simulate`` → ``chip.run`` →
  ``pdn.simulate``) whose structure is deterministic; parallel workers'
  spans are merged into one tree in spec order;
* **metrics** — a closed catalog of counters/gauges/histograms (cycles
  simulated, droop/overshoot events by depth bucket, cache traffic,
  per-worker run counts, expected rollback recoveries) with JSON and
  Prometheus-text exporters, split into deterministic *content* and
  execution-specific *runtime* sections;
* **profiling** — per-stage timing tables and top-N hottest runs,
  derived from the trace.

Entry points: ``repro-experiments ... --trace t.json --metrics m.json
--profile-stages`` (environment: ``REPRO_TRACE`` / ``REPRO_METRICS``),
or programmatically::

    from repro import observability

    with observability.capture() as session:
        campaign.measure_specs(specs)
    session.metrics_payload()["counters"]   # deterministic content
    session.trace_payload()                 # the span tree

While disabled, every call site costs one attribute read; no span
objects are allocated (``tests/observability/test_determinism.py``
asserts this).  See ``docs/observability.md`` for the span model,
metric catalog, exporter formats, and overhead measurements.
"""

from __future__ import annotations

from repro.observability.clock import monotonic_seconds
from repro.observability.metrics import (
    CATALOG,
    DEPTH_BUCKET_BOUNDS,
    MetricSpec,
    MetricsRegistry,
    depth_bucket,
)
from repro.observability.profiling import (
    HotSpan,
    StageRow,
    format_hottest,
    format_stage_table,
    hottest_spans,
    stage_table,
)
from repro.observability.session import (
    ObservabilitySession,
    active_session,
    capture,
    enabled,
    increment,
    observe,
    set_gauge,
    span,
    start,
    stop,
)
from repro.observability.spans import (
    NULL_SPAN,
    ActiveSpan,
    NullSpan,
    SpanRecord,
    Tracer,
)

__all__ = [
    "CATALOG",
    "DEPTH_BUCKET_BOUNDS",
    "NULL_SPAN",
    "ActiveSpan",
    "HotSpan",
    "MetricSpec",
    "MetricsRegistry",
    "NullSpan",
    "ObservabilitySession",
    "SpanRecord",
    "StageRow",
    "Tracer",
    "active_session",
    "capture",
    "depth_bucket",
    "enabled",
    "format_hottest",
    "format_stage_table",
    "hottest_spans",
    "increment",
    "monotonic_seconds",
    "observe",
    "set_gauge",
    "span",
    "stage_table",
    "start",
    "stop",
]
