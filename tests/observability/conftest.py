"""Observability suite: guard against leaked global sessions."""

from __future__ import annotations

import pytest

from repro import observability as obs


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """Every test must leave instrumentation off (the process default)."""
    assert not obs.enabled(), "a previous test leaked an active session"
    yield
    leaked = obs.stop()
    assert leaked is None, "test left an observability session installed"
