"""ITRS-style supply scaling and projected voltage swings (Fig. 1).

The paper's Fig. 1 projects peak-to-peak voltage swing growth across
process nodes by simulating a Pentium 4-class power delivery package with
a 50-100 A current step at 45 nm and scaling subsequent stimuli inversely
with Vdd (constant power budget), while Vdd itself follows ITRS from 1 V
at 45 nm down to 0.6 V at 11 nm.

Two effects compound: the current step grows as ``1/Vdd`` and the swing
*fraction* divides by ``Vdd`` again, so the relative swing scales roughly
as ``1/Vdd^2`` — doubling by the 16 nm node, as the paper reports.  We run
the actual PDN transient per node rather than the closed form, so package
dynamics are retained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro import units
from repro.errors import ConfigurationError
from repro.pdn.network import PowerDeliveryNetwork
from repro.pdn.platform import PlatformParameters, build_network
from repro.pdn.simulate import TransientSimulator
from repro.pdn.stimulus import current_step


@dataclass(frozen=True)
class TechnologyNode:
    """One process node of the projection."""

    name: str
    feature_nm: float
    vdd: float
    #: Representative transistor threshold (volts), shrinking slowly.
    vth: float

    def __post_init__(self) -> None:
        if self.feature_nm <= 0:
            raise ConfigurationError("feature_nm must be positive")
        if not 0 < self.vth < self.vdd:
            raise ConfigurationError("need 0 < vth < vdd")


#: ITRS-style node table (paper footnote 1: Vdd from 1 V at 45 nm to
#: 0.6 V at 11 nm).
TECHNOLOGY_NODES: Tuple[TechnologyNode, ...] = (
    TechnologyNode("45nm", 45.0, 1.0, 0.32),
    TechnologyNode("32nm", 32.0, 0.9, 0.30),
    TechnologyNode("22nm", 22.0, 0.8, 0.29),
    TechnologyNode("16nm", 16.0, 0.7, 0.28),
    TechnologyNode("11nm", 11.0, 0.6, 0.27),
)

#: The 45 nm stimulus of the paper's projection: a 50 A -> 100 A step.
BASE_STEP_LOW_A = 50.0
BASE_STEP_HIGH_A = 100.0


def node_by_name(name: str) -> TechnologyNode:
    for node in TECHNOLOGY_NODES:
        if node.name == name:
            return node
    raise ConfigurationError(
        f"unknown node {name!r}; have {[n.name for n in TECHNOLOGY_NODES]}"
    )


def _package_network(vdd: float) -> PowerDeliveryNetwork:
    """The package model used for the projection, at a node's Vdd.

    The paper uses a published Pentium 4 package model; we reuse the
    calibrated reference ladder (stock decap), re-anchored to the node's
    nominal voltage — the swing *ratio* across nodes is what Fig. 1 plots,
    and it is insensitive to the exact package as long as it is shared.
    """
    parameters = PlatformParameters(nominal_voltage=vdd)
    return build_network("Proc100", parameters)


def projected_voltage_swings(
    nodes: Sequence[TechnologyNode] = TECHNOLOGY_NODES,
    n_samples: int = 60_000,
    dt_seconds: float = 0.5 * units.NANO_SECOND,
) -> Dict[str, float]:
    """Fig. 1: per-node peak-to-peak swing relative to the 45 nm node.

    Each node sees the base current step scaled by ``1 V / Vdd`` (same
    power budget); the swing is normalized by the node's own supply and
    then referenced to the first node's value.
    """
    if not nodes:
        raise ConfigurationError("need at least one node")
    fractions: Dict[str, float] = {}
    for node in nodes:
        scale = nodes[0].vdd / node.vdd
        stimulus = current_step(
            n_samples,
            BASE_STEP_LOW_A * scale,
            BASE_STEP_HIGH_A * scale,
            step_at=n_samples // 4,
            ramp_samples=2,
        )
        simulator = TransientSimulator(_package_network(node.vdd), dt_seconds)
        trace = simulator.simulate(stimulus, include_ripple=False)
        fractions[node.name] = trace.peak_to_peak_fraction()
    reference = fractions[nodes[0].name]
    return {name: value / reference for name, value in fractions.items()}
