"""Voltage-noise phases over full program executions (Fig. 14).

Programs pass through phases of differing microarchitectural stall
activity, and the droop rate follows: 482.sphinx holds a flat ~100 droops
per 1K cycles for its whole run, 416.gamess steps through four distinct
regimes, 465.tonto oscillates every few tens of seconds.  These *noise
phases* are what give a software scheduler something to exploit.

:class:`NoiseTimeline` samples a workload at a fixed wall-clock cadence
(the paper averages each 60-second interval) and records droop activity
per interval; :func:`count_phase_changes` detects level shifts in the
resulting series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.measurement.droops import CHARACTERIZATION_MARGIN, droop_samples_per_1k
from repro.random_utils import SeedLike, derive_generator
from repro.uarch.chip import Chip
from repro.workloads.base import Workload
from repro.workloads.microbenchmarks import IdleLoop


@dataclass(frozen=True)
class NoiseTimeline:
    """Droop activity of one workload across its execution."""

    workload_name: str
    times_s: np.ndarray
    droops_per_1k: np.ndarray

    def mean_level(self) -> float:
        return float(self.droops_per_1k.mean())

    def span(self) -> float:
        """Max minus min interval level."""
        return float(self.droops_per_1k.max() - self.droops_per_1k.min())


def measure_noise_timeline(
    workload: Workload,
    chip: Chip,
    interval_seconds: float = 60.0,
    window_cycles: int = 25_000,
    windows_per_interval: int = 5,
    seed: SeedLike = 0,
    margin: float = CHARACTERIZATION_MARGIN,
    max_intervals: Optional[int] = None,
) -> NoiseTimeline:
    """Sample a workload's droop rate once per wall-clock interval.

    The co-runner core idles, matching the paper's single-core phase
    characterization.  Each interval averages ``windows_per_interval``
    independent windows sampled at that interval's start time — the paper
    averages a full 60 seconds of execution per point, so sampling noise
    per interval must be small relative to the phase structure.
    """
    if interval_seconds <= 0:
        raise ConfigurationError("interval_seconds must be positive")
    if windows_per_interval < 1:
        raise ConfigurationError("windows_per_interval must be >= 1")
    idle = IdleLoop()
    n_intervals = max(1, int(workload.duration_seconds / interval_seconds))
    if max_intervals is not None:
        n_intervals = min(n_intervals, max_intervals)
    times = np.arange(n_intervals) * interval_seconds
    rates = np.empty(n_intervals)
    for i, at_time in enumerate(times):
        samples = []
        for rep in range(windows_per_interval):
            rng = derive_generator(seed, workload.name, i, rep)
            windows = [
                workload.sample_window(
                    window_cycles, rng=rng, at_time_s=float(at_time)
                ),
                idle.sample_window(
                    window_cycles, rng=derive_generator(rng, "idle")
                ),
            ]
            run = chip.run(windows, seed=derive_generator(rng, "chip"))
            samples.append(droop_samples_per_1k(run.voltage, margin))
        rates[i] = float(np.mean(samples))
    return NoiseTimeline(
        workload_name=workload.name, times_s=times, droops_per_1k=rates
    )


def count_phase_changes(
    series: np.ndarray,
    min_shift: float,
    smooth: int = 3,
) -> int:
    """Count level shifts of at least ``min_shift`` in a noise series.

    The series is smoothed with a short moving average, then scanned for
    crossings of the midpoint between its running regimes: a phase change
    is a smoothed excursion from one side of the global midline to the
    other by at least ``min_shift``.
    """
    series = np.asarray(series, dtype=float)
    if series.ndim != 1 or series.size == 0:
        raise ConfigurationError("series must be a non-empty 1-D array")
    if min_shift <= 0:
        raise ConfigurationError("min_shift must be positive")
    if smooth > 1 and series.size > smooth:
        kernel = np.ones(smooth) / smooth
        smoothed = np.convolve(series, kernel, mode="valid")
    else:
        smoothed = series
    if smoothed.size < 2:
        return 0
    midline = (smoothed.max() + smoothed.min()) / 2.0
    if smoothed.max() - smoothed.min() < min_shift:
        return 0
    # Hysteresis band around the midline to ignore small wiggles.
    upper = midline + min_shift / 4.0
    lower = midline - min_shift / 4.0
    state = 1 if smoothed[0] > midline else -1
    changes = 0
    for value in smoothed[1:]:
        if state < 0 and value > upper:
            state = 1
            changes += 1
        elif state > 0 and value < lower:
            state = -1
            changes += 1
    return changes


def oscillation_period_intervals(series: np.ndarray) -> Optional[float]:
    """Dominant oscillation period (in intervals) via autocorrelation.

    Returns ``None`` when the series has no significant periodicity —
    flat profiles like 482.sphinx.
    """
    series = np.asarray(series, dtype=float)
    if series.size < 8:
        return None
    centered = series - series.mean()
    if np.allclose(centered, 0):
        return None
    autocorr = np.correlate(centered, centered, mode="full")
    autocorr = autocorr[autocorr.size // 2 :]
    autocorr /= autocorr[0]
    # First significant peak after the zero lag.
    for lag in range(2, autocorr.size - 1):
        if (
            autocorr[lag] > 0.3
            and autocorr[lag] >= autocorr[lag - 1]
            and autocorr[lag] >= autocorr[lag + 1]
        ):
            return float(lag)
    return None
