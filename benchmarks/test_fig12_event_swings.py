"""Bench: Fig. 12 — single-core event swings; BR is the largest."""

from benchmarks.conftest import run_once
from repro.experiments import fig12_event_swings
from repro.uarch.events import StallEvent


def test_fig12_event_swings(benchmark, quick):
    result = run_once(benchmark, lambda: fig12_event_swings.run(quick=quick))
    swings = result.series["swings"]
    # Every stall event is visible above the idle baseline.
    assert all(value > 1.1 for value in swings.values())
    # Branch misprediction causes the largest swing (paper: >1.7x);
    # allow statistical ties within a few percent.
    br = swings[StallEvent.BRANCH_MISPREDICT]
    assert br >= 0.95 * max(swings.values())
    assert br > 1.5
    # L1 misses are the mildest event.
    assert swings[StallEvent.L1_MISS] == min(swings.values())
    print("\n" + result.format_table())
