"""Extension bench: online learned scheduling vs fair-share random."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import ext_online_scheduler


def test_ext_online_scheduler(benchmark, quick):
    result = run_once(
        benchmark, lambda: ext_online_scheduler.run(quick=quick)
    )
    ratio = result.series["droop_ratio"]
    # The learned scheduler is never meaningfully worse than fair-share
    # random, and on average squeezes out a real (if modest) reduction —
    # the deployable slice of the oracle policy's benefit.
    assert ratio < 1.03
    aware = np.array(result.series["aware_droops"])
    oblivious = np.array(result.series["oblivious_droops"])
    assert (aware <= oblivious * 1.08).mean() >= 0.6
    print("\n" + result.format_table())
