"""Unit constants and helpers.

All internal computation uses SI base units (volts, amperes, seconds,
hertz, ohms, farads, henries).  These constants make intent explicit at
construction sites, e.g. ``22 * units.MICRO_FARAD``.
"""

from __future__ import annotations

# -- scale prefixes -----------------------------------------------------------
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15
KILO = 1e3
MEGA = 1e6
GIGA = 1e9

# -- convenience aliases ------------------------------------------------------
MILLI_VOLT = MILLI
MILLI_OHM = MILLI
MICRO_FARAD = MICRO
NANO_FARAD = NANO
PICO_FARAD = PICO
NANO_HENRY = NANO
PICO_HENRY = PICO
NANO_SECOND = NANO
MICRO_SECOND = MICRO
KILO_HERTZ = KILO
MEGA_HERTZ = MEGA
GIGA_HERTZ = GIGA


def to_percent(fraction: float) -> float:
    """Convert a fraction (0.04) to a percentage (4.0)."""
    return fraction * 100.0


def from_percent(percent: float) -> float:
    """Convert a percentage (4.0) to a fraction (0.04)."""
    return percent / 100.0


def db(ratio: float) -> float:
    """Convert an amplitude ratio to decibels (20 log10)."""
    import math

    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return 20.0 * math.log10(ratio)
