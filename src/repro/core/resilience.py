"""The typical-case (resilient) design performance model of Sec. III-B.

A resilient processor relaxes its operating voltage margin below the
worst-case guardband and recovers from the (rare) voltage emergencies that
result.  Three quantities govern the outcome:

* **margin → frequency**: Bowman et al. report that removing a 10 % margin
  buys ~15 % clock frequency; the paper adopts this 1.5x scaling.
* **emergency rate**: how often a workload's droops exceed the margin
  (from measurement, extrapolated by the droop-tail model).
* **recovery cost**: cycles lost per emergency — from ~1 (Razor), tens
  (DeCoR), ~100 (signature-based prediction with checkpointing) up to
  thousands-to-100k (production checkpoint/rollback hardware).

The net improvement over the worst-case design is

    speedup = (1 + 1.5 * (margin_wc - margin)) / (1 + rate * cost) - 1

:class:`ResilientDesignModel` evaluates this over workload populations,
finds optimal margins (Fig. 8), produces the margin x cost heat maps
(Fig. 10), and reports per-run pass/fail against an expected-improvement
target (Tab. I, Fig. 19).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.measurement.tail import DroopTailModel

#: The paper's canonical recovery-cost sweep (cycles per emergency).
RECOVERY_COSTS: Tuple[int, ...] = (1, 10, 100, 1_000, 10_000, 100_000)


@dataclass(frozen=True)
class ResilienceParameters:
    """Machine-level constants of the performance model."""

    #: The conservative guardband of the baseline design (Core 2: 14 %).
    worst_case_margin: float = 0.14
    #: Clock-frequency gain per unit of margin reduction (Bowman: 1.5).
    frequency_gain_per_margin: float = 1.5
    #: The smallest margin the sweep considers; below the VRM ripple the
    #: "emergency" notion stops being meaningful.
    min_margin: float = 0.020

    def __post_init__(self) -> None:
        if not 0 < self.worst_case_margin < 0.5:
            raise ConfigurationError("worst_case_margin must be in (0, 0.5)")
        if self.frequency_gain_per_margin <= 0:
            raise ConfigurationError(
                "frequency_gain_per_margin must be positive"
            )
        if not 0 < self.min_margin < self.worst_case_margin:
            raise ConfigurationError(
                "min_margin must be in (0, worst_case_margin)"
            )

    def frequency_gain(self, margin: float) -> float:
        """Clock-speed factor of running at ``margin`` vs the guardband."""
        if not 0 < margin <= self.worst_case_margin:
            raise ConfigurationError(
                f"margin must be in (0, {self.worst_case_margin}]"
            )
        return 1.0 + self.frequency_gain_per_margin * (
            self.worst_case_margin - margin
        )


def performance_improvement(
    margin: float,
    recovery_cost: float,
    emergency_rate_per_cycle: float,
    parameters: ResilienceParameters = ResilienceParameters(),
) -> float:
    """Net speedup (fraction) of a resilient design over worst-case.

    Emergencies add ``rate * cost`` recovery cycles per useful cycle; the
    aggressive margin multiplies clock frequency.  Values below 0 are the
    paper's "dead zone": worse than the conservative baseline.
    """
    if recovery_cost < 0:
        raise ConfigurationError("recovery_cost must be non-negative")
    if emergency_rate_per_cycle < 0:
        raise ConfigurationError("emergency_rate must be non-negative")
    gain = parameters.frequency_gain(margin)
    overhead = emergency_rate_per_cycle * recovery_cost
    return gain / (1.0 + overhead) - 1.0


@dataclass(frozen=True)
class OptimalMargin:
    """Result of an optimal-margin search for one recovery cost."""

    recovery_cost: float
    margin: float
    improvement: float


class ResilientDesignModel:
    """Evaluates typical-case design over a population of measured runs.

    Parameters
    ----------
    tail_models:
        One droop-tail model per workload run (e.g. from a
        :class:`~repro.measurement.campaign.MeasurementCampaign`).
    parameters:
        Machine constants.
    """

    def __init__(
        self,
        tail_models: Iterable[DroopTailModel],
        parameters: ResilienceParameters = ResilienceParameters(),
    ) -> None:
        self._tails = list(tail_models)
        if not self._tails:
            raise ConfigurationError("need at least one tail model")
        self._parameters = parameters

    @property
    def parameters(self) -> ResilienceParameters:
        return self._parameters

    @property
    def n_runs(self) -> int:
        return len(self._tails)

    # ------------------------------------------------------------------
    # Aggregate sweeps
    # ------------------------------------------------------------------
    def mean_improvement(self, margin: float, recovery_cost: float) -> float:
        """Average improvement across all runs at one design point."""
        return float(np.mean([
            performance_improvement(
                margin, recovery_cost, tail.rate(margin), self._parameters
            )
            for tail in self._tails
        ]))

    def mean_emergency_rate(self, margin: float) -> float:
        """Average per-cycle emergency rate across all runs at a margin.

        This is the rate of margin crossings a rollback-style recovery
        mechanism would actually service — the telemetry layer exports
        it (scaled to events per 1K cycles) per evaluated mechanism.
        """
        return float(np.mean([tail.rate(margin) for tail in self._tails]))

    def margin_grid(self, n_points: int = 60) -> np.ndarray:
        """The margin axis used by sweeps (min_margin … worst case)."""
        return np.linspace(
            self._parameters.min_margin,
            self._parameters.worst_case_margin,
            n_points,
        )

    def margin_sweep(
        self,
        recovery_cost: float,
        margins: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(margins, mean improvement) — one line of Fig. 8."""
        if margins is None:
            margins = self.margin_grid()
        improvements = np.array([
            self.mean_improvement(float(m), recovery_cost) for m in margins
        ])
        return margins, improvements

    def optimal_margin(
        self,
        recovery_cost: float,
        margins: Optional[np.ndarray] = None,
    ) -> OptimalMargin:
        """The single static margin maximizing mean improvement (Fig. 8)."""
        margins, improvements = self.margin_sweep(recovery_cost, margins)
        best = int(np.argmax(improvements))
        return OptimalMargin(
            recovery_cost=recovery_cost,
            margin=float(margins[best]),
            improvement=float(improvements[best]),
        )

    def heatmap(
        self,
        recovery_costs: Sequence[float] = RECOVERY_COSTS,
        margins: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(margins, costs, improvement[cost, margin]) — one Fig. 10 panel."""
        if margins is None:
            margins = self.margin_grid()
        grid = np.empty((len(recovery_costs), margins.size))
        for i, cost in enumerate(recovery_costs):
            _, grid[i] = self.margin_sweep(cost, margins)
        return margins, np.asarray(recovery_costs, dtype=float), grid

    # ------------------------------------------------------------------
    # Per-run pass/fail (Tab. I / Fig. 19)
    # ------------------------------------------------------------------
    def run_improvement(
        self, run_index: int, margin: float, recovery_cost: float
    ) -> float:
        tail = self._tails[run_index]
        return performance_improvement(
            margin, recovery_cost, tail.rate(margin), self._parameters
        )

    def per_run_optimal_margins(
        self,
        recovery_cost: float,
        margins: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Each run's individually optimal margin for one recovery cost.

        Sec. III-B: "each benchmark can have a unique optimal voltage
        margin.  However, we found that the range of optimal margins is
        small across all executions" — which is what justifies the
        one-design-fits-all static margin.  This method quantifies that
        spread for the simulated population.
        """
        if margins is None:
            margins = self.margin_grid()
        optima = np.empty(len(self._tails))
        for i, tail in enumerate(self._tails):
            improvements = np.array([
                performance_improvement(
                    float(m), recovery_cost, tail.rate(float(m)),
                    self._parameters,
                )
                for m in margins
            ])
            optima[i] = float(margins[int(np.argmax(improvements))])
        return optima

    def one_design_fits_all_gap(self, recovery_cost: float) -> float:
        """Mean improvement lost by using the single static optimal margin
        instead of each run's own optimum.  The paper argues this gap is
        negligible; returns the absolute improvement difference."""
        margins = self.margin_grid()
        static = self.optimal_margin(recovery_cost, margins)
        per_run = self.per_run_optimal_margins(recovery_cost, margins)
        individual = float(np.mean([
            performance_improvement(
                float(m), recovery_cost, tail.rate(float(m)),
                self._parameters,
            )
            for m, tail in zip(per_run, self._tails)
        ]))
        return individual - static.improvement

    def passing_runs(
        self,
        recovery_cost: float,
        margin: float,
        expected_improvement: float,
        tolerance: float = 0.0,
    ) -> List[int]:
        """Indices of runs meeting the expected improvement at a margin."""
        passing = []
        for i in range(len(self._tails)):
            improvement = self.run_improvement(i, margin, recovery_cost)
            if improvement >= expected_improvement - tolerance:
                passing.append(i)
        return passing
