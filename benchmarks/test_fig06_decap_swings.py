"""Bench: Fig. 6 — normalized pk-pk swings vs package capacitance."""

from benchmarks.conftest import run_once
from repro.experiments import fig06_decap_swings


def test_fig06_decap_swings(benchmark, quick):
    result = run_once(benchmark, lambda: fig06_decap_swings.run(quick=quick))
    relative = result.series["relative_swings"]
    order = ["Proc100", "Proc75", "Proc50", "Proc25", "Proc3", "Proc0"]
    values = [relative[name] for name in order]
    assert relative["Proc100"] == 1.0  # simlint: disable=HYG001 (exact by construction)
    # Monotone growth towards less capacitance.
    assert all(a <= b * 1.02 for a, b in zip(values, values[1:]))
    # Overall span comparable to the paper's 150->350 mV (~2.3x), with
    # simulator headroom.
    assert 2.0 <= relative["Proc0"] <= 5.0
    # The knee sits between Proc25 and Proc3: that jump dominates the
    # earlier Proc50 -> Proc25 one.
    assert (relative["Proc3"] - relative["Proc25"]) > (
        relative["Proc25"] - relative["Proc50"]
    )
    print("\n" + result.format_table())
