"""Package decoupling-capacitor inventory and decap-removal configurations.

Fig. 5 of the paper shows the land side of the Core 2 Duo package with
three kinds of decoupling capacitors (22 uF, 2.2 uF and 1 uF) and a family
of physically altered processors — ``Proc100`` (stock) down to ``Proc0``
(all package decaps removed) — created by breaking capacitors off.  To
remove 50 % of all capacitance, half of *each kind* is removed.

This module models that inventory and exposes the same ``ProcXX``
configuration family.  ``Proc0`` keeps a small parasitic residue (plane
capacitance never comes off with the discrete parts) but is flagged as
non-bootable: in the paper it is the only processor that fails stability
testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro import units
from repro.errors import ConfigurationError

#: Residual parasitic package-plane capacitance fraction left behind when
#: every discrete capacitor has been removed (Proc0).
PARASITIC_FRACTION = 0.004


@dataclass(frozen=True)
class CapacitorBank:
    """A homogeneous group of package capacitors.

    Parameters
    ----------
    unit_capacitance:
        Capacitance of one part, in farads.
    unit_esr:
        Equivalent series resistance of one part, in ohms.
    count:
        Number of parts populated on the stock package.
    """

    unit_capacitance: float
    unit_esr: float
    count: int

    def __post_init__(self) -> None:
        if self.unit_capacitance <= 0:
            raise ConfigurationError("unit_capacitance must be positive")
        if self.unit_esr <= 0:
            raise ConfigurationError("unit_esr must be positive")
        if self.count < 0:
            raise ConfigurationError("count must be non-negative")

    @property
    def total_capacitance(self) -> float:
        """Parallel capacitances add."""
        return self.unit_capacitance * self.count

    @property
    def effective_esr(self) -> float:
        """Parallel ESRs divide; infinite for an empty bank."""
        if self.count == 0:
            return float("inf")
        return self.unit_esr / self.count

    def keep(self, count: int) -> "CapacitorBank":
        """Return a bank with only ``count`` parts still populated."""
        if not 0 <= count <= self.count:
            raise ConfigurationError(
                f"cannot keep {count} parts of a bank of {self.count}"
            )
        return CapacitorBank(self.unit_capacitance, self.unit_esr, count)


#: Stock Core 2 Duo-like land-side inventory (Fig. 5g).  Counts chosen to
#: give a realistic total package decap in the low hundreds of microfarads.
STOCK_INVENTORY: Tuple[CapacitorBank, ...] = (
    CapacitorBank(22 * units.MICRO_FARAD, 18 * units.MILLI_OHM, 8),
    CapacitorBank(2.2 * units.MICRO_FARAD, 15 * units.MILLI_OHM, 12),
    CapacitorBank(1.0 * units.MICRO_FARAD, 20 * units.MILLI_OHM, 12),
)


@dataclass(frozen=True)
class DecapConfiguration:
    """One physically altered processor from the Proc100 … Proc0 family.

    Parameters
    ----------
    name:
        Label used throughout the paper, e.g. ``"Proc25"``.
    fraction:
        Fraction of the stock package capacitance that remains (1.0 for
        Proc100, 0.03 for Proc3).  ``Proc0`` uses a small parasitic
        residue instead of a literal zero.
    boots:
        Whether the processor survives stability testing.  Only Proc0
        fails in the paper — its 350 mV reset droop prevents boot.
    banks:
        The per-kind populated counts after removal.
    """

    name: str
    fraction: float
    boots: bool = True
    banks: Tuple[CapacitorBank, ...] = field(default=STOCK_INVENTORY)

    def __post_init__(self) -> None:
        if not 0 < self.fraction <= 1:
            raise ConfigurationError(
                f"fraction must be in (0, 1], got {self.fraction!r}"
            )

    @property
    def total_capacitance(self) -> float:
        return sum(bank.total_capacitance for bank in self.banks)

    @property
    def effective_fraction(self) -> float:
        """Remaining capacitance relative to the stock inventory."""
        stock = sum(bank.total_capacitance for bank in STOCK_INVENTORY)
        return max(self.total_capacitance / stock, PARASITIC_FRACTION)


def _configuration(name: str, percent: float, boots: bool = True) -> DecapConfiguration:
    """Build a configuration that keeps ``percent`` % of each bank kind.

    Matching the paper's methodology ("to eliminate 50 % of all capacitors,
    we remove half of each kind"), part counts are rounded per kind; the
    recorded ``fraction`` is the resulting capacitance ratio (floored at the
    parasitic residue for Proc0).
    """
    keep_fraction = percent / 100.0
    stock_total = sum(bank.total_capacitance for bank in STOCK_INVENTORY)
    target_total = stock_total * keep_fraction
    counts = [round(bank.count * keep_fraction) for bank in STOCK_INVENTORY]

    # Per-kind rounding can badly miss small targets (3 % of 8 parts rounds
    # to zero), so nudge individual part counts — smallest-value parts give
    # the finest granularity — until no single change improves the match.
    def total(current: list[int]) -> float:
        return sum(
            bank.unit_capacitance * n for bank, n in zip(STOCK_INVENTORY, current)
        )

    order = sorted(
        range(len(STOCK_INVENTORY)),
        key=lambda i: STOCK_INVENTORY[i].unit_capacitance,
    )
    improved = True
    while improved:
        improved = False
        for i in order:
            for delta in (+1, -1):
                candidate = counts[i] + delta
                if not 0 <= candidate <= STOCK_INVENTORY[i].count:
                    continue
                trial = list(counts)
                trial[i] = candidate
                if abs(total(trial) - target_total) < abs(total(counts) - target_total):
                    counts = trial
                    improved = True

    banks = tuple(
        bank.keep(n) for bank, n in zip(STOCK_INVENTORY, counts)
    )
    kept_total = sum(bank.total_capacitance for bank in banks)
    fraction = max(kept_total / stock_total, PARASITIC_FRACTION)
    return DecapConfiguration(name=name, fraction=fraction, boots=boots, banks=banks)


#: The paper's processor family, keyed by name.  Fractions are derived from
#: the per-kind part counts, mirroring how the physical chips were altered.
PROC_CONFIGS: Mapping[str, DecapConfiguration] = {
    cfg.name: cfg
    for cfg in (
        _configuration("Proc100", 100.0),
        _configuration("Proc75", 75.0),
        _configuration("Proc50", 50.0),
        _configuration("Proc25", 25.0),
        _configuration("Proc3", 3.0),
        _configuration("Proc0", 0.0, boots=False),
    )
}


def proc_config(name: str) -> DecapConfiguration:
    """Look up a configuration by name (``"Proc100"`` … ``"Proc0"``)."""
    try:
        return PROC_CONFIGS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown processor configuration {name!r}; "
            f"have {sorted(PROC_CONFIGS)}"
        ) from None


def ordered_configs() -> Tuple[DecapConfiguration, ...]:
    """All configurations ordered from most to least capacitance."""
    return tuple(
        PROC_CONFIGS[name]
        for name in ("Proc100", "Proc75", "Proc50", "Proc25", "Proc3", "Proc0")
    )


def capacitance_summary() -> Dict[str, float]:
    """Total package capacitance (farads) per configuration, for reports."""
    return {cfg.name: cfg.total_capacitance for cfg in ordered_configs()}
