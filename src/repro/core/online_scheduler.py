"""An online noise-aware scheduler (extension of the Sec. IV limit study).

The paper's scheduling results are an *oracle* limit study: droop counts
for every pairing are measured a priori.  A production scheduler has no
oracle — it observes droops (from a hardware emergency counter) and
performance counters only for the pairs it actually runs, while jobs
arrive and finish.

:class:`OnlineScheduler` closes that gap: it runs a job pool interval by
interval on the simulated chip, learns per-program droop propensity from
the intervals it schedules (attributing each measured interval equally to
the two co-runners), and uses an epsilon-greedy pairing rule over the
learned estimates.  Comparing its cumulative droops against random
pairing quantifies how much of the oracle benefit survives online
operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import observability as obs
from repro.errors import SchedulingError
from repro.measurement.droops import (
    CHARACTERIZATION_MARGIN,
    detect_droops,
    droop_samples_per_1k,
)
from repro.random_utils import SeedLike, as_generator, derive_generator
from repro.uarch.chip import Chip
from repro.workloads.base import Workload
from repro.workloads.spec import spec_benchmark


@dataclass
class Job:
    """One program instance working through its intervals."""

    name: str
    remaining_intervals: int
    progress_intervals: int = 0

    @property
    def done(self) -> bool:
        return self.remaining_intervals <= 0


@dataclass
class IntervalRecord:
    """What the scheduler observed in one interval."""

    interval: int
    pair: Tuple[str, str]
    droops_per_1k: float
    throughput_ipc: float


@dataclass
class OnlineScheduleResult:
    """Cumulative outcome of one online-scheduling run."""

    policy_name: str
    records: List[IntervalRecord] = field(default_factory=list)

    @property
    def intervals(self) -> int:
        return len(self.records)

    @property
    def total_droops(self) -> float:
        return float(sum(r.droops_per_1k for r in self.records))

    @property
    def mean_droops(self) -> float:
        return self.total_droops / max(self.intervals, 1)

    @property
    def mean_ipc(self) -> float:
        return float(
            np.mean([r.throughput_ipc for r in self.records])
        ) if self.records else 0.0


class OnlineScheduler:
    """Interval-driven scheduler with learned droop estimates.

    Parameters
    ----------
    chip:
        The (shared-supply) chip jobs run on.
    interval_seconds:
        Wall-clock length of one scheduling interval.
    window_cycles:
        Simulated window representing each interval.
    ema_alpha:
        Learning rate of the per-program droop estimate.
    epsilon:
        Exploration probability: with this chance the scheduler pairs
        randomly instead of greedily, so estimates keep improving.
    metric:
        What the scheduler observes per interval: ``"events"`` counts
        distinct droop excursions beyond the characterization margin (the
        paper's emergency-recovery count) while ``"samples"`` counts
        cycles spent below it.
    """

    def __init__(
        self,
        chip: Chip,
        interval_seconds: float = 60.0,
        window_cycles: int = 20_000,
        ema_alpha: float = 0.4,
        epsilon: float = 0.10,
        metric: str = "events",
    ) -> None:
        if not 0 < ema_alpha <= 1:
            raise SchedulingError("ema_alpha must be in (0, 1]")
        if not 0 <= epsilon < 1:
            raise SchedulingError("epsilon must be in [0, 1)")
        if metric not in ("events", "samples"):
            raise SchedulingError("metric must be 'events' or 'samples'")
        self._chip = chip
        self._interval_seconds = float(interval_seconds)
        self._window_cycles = int(window_cycles)
        self._alpha = float(ema_alpha)
        self._epsilon = float(epsilon)
        self._metric = metric

    # ------------------------------------------------------------------
    def _workload(self, name: str) -> Workload:
        return spec_benchmark(name)

    def _run_interval(
        self,
        jobs: Tuple[Job, Job],
        interval: int,
        rng: np.random.Generator,
    ) -> IntervalRecord:
        pair_label = f"{jobs[0].name}+{jobs[1].name}"
        with obs.span(
            "scheduler.interval", interval=interval, run=pair_label
        ):
            return self._run_interval_impl(jobs, interval, rng)

    def _run_interval_impl(
        self,
        jobs: Tuple[Job, Job],
        interval: int,
        rng: np.random.Generator,
    ) -> IntervalRecord:
        windows = []
        for slot, job in enumerate(jobs):
            workload = self._workload(job.name)
            at_time = job.progress_intervals * self._interval_seconds
            windows.append(
                workload.sample_window(
                    self._window_cycles,
                    rng=derive_generator(rng, "win", interval, slot),
                    at_time_s=at_time,
                )
            )
        run = self._chip.run(
            windows, seed=derive_generator(rng, "chip", interval)
        )
        if self._metric == "events":
            droops = 1000.0 * detect_droops(run.voltage).event_rate(
                CHARACTERIZATION_MARGIN
            )
        else:
            droops = droop_samples_per_1k(
                run.voltage, CHARACTERIZATION_MARGIN
            )
        obs.increment("repro_scheduler_intervals_total")
        obs.observe("repro_interval_droops_per_1k", droops)
        return IntervalRecord(
            interval=interval,
            pair=(jobs[0].name, jobs[1].name),
            droops_per_1k=droops,
            throughput_ipc=float(
                sum(e.counters.ipc for e in run.cores)
            ),
        )

    @staticmethod
    def _pair_key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def _pick_pair(
        self,
        waiting: List[Job],
        estimates: Dict[Tuple[str, str], float],
        rng: np.random.Generator,
        noise_aware: bool,
    ) -> Tuple[Job, Job]:
        if len(waiting) < 2:
            raise SchedulingError("need at least two waiting jobs")
        explore = rng.random() < self._epsilon
        if not noise_aware or explore:
            picks = rng.choice(len(waiting), size=2, replace=False)
            return waiting[picks[0]], waiting[picks[1]]
        # Anchor on the job with the most remaining work (so quiet jobs
        # cannot be burned down first, stranding loud jobs together at the
        # end), then choose its partner by the learned *pair-level* droop
        # estimate.  Unseen pairings get an optimistic prior, which drives
        # exploration the way the paper's pre-run phase sweeps all
        # combinations.
        if estimates:
            optimistic = float(np.quantile(list(estimates.values()), 0.25))
        else:
            optimistic = 0.0
        most_remaining = max(job.remaining_intervals for job in waiting)
        anchors = [
            job for job in waiting
            if job.remaining_intervals == most_remaining
        ]
        anchor = anchors[int(rng.integers(0, len(anchors)))]
        best: Optional[Tuple[float, float, int]] = None
        for idx, job in enumerate(waiting):
            if job is anchor:
                continue
            key = self._pair_key(anchor.name, job.name)
            value = estimates.get(key, optimistic)
            candidate = (value, float(rng.random()), idx)
            if best is None or candidate < best:
                best = candidate
        assert best is not None
        return anchor, waiting[best[2]]

    # ------------------------------------------------------------------
    def run_service(
        self,
        programs: Sequence[str],
        n_intervals: int = 60,
        fairness_slack: int = 2,
        noise_aware: bool = True,
        seed: SeedLike = None,
        policy_name: Optional[str] = None,
    ) -> OnlineScheduleResult:
        """Schedule a standing service mix for ``n_intervals`` intervals.

        This is the long-running-server setting the paper's scheduler
        targets: the same programs keep (re)arriving, and each interval
        the scheduler picks *which two* to co-run.  A fair-share
        constraint keeps any program from starving (its service count may
        not trail the minimum by more than ``fairness_slack``); inside
        that envelope the noise-aware policy pairs the most-starved
        program with the partner whose learned pair estimate is lowest.
        """
        if len(programs) < 2:
            raise SchedulingError("need at least two programs")
        if n_intervals < 1:
            raise SchedulingError("n_intervals must be >= 1")
        if fairness_slack < 1:
            raise SchedulingError("fairness_slack must be >= 1")
        rng = as_generator(seed)
        service: Dict[str, int] = {name: 0 for name in programs}
        estimates: Dict[Tuple[str, str], float] = {}
        result = OnlineScheduleResult(
            policy_name=policy_name
            or ("service-droop" if noise_aware else "service-random")
        )
        for interval in range(n_intervals):
            min_service = min(service.values())
            # The most-starved program must run this interval.
            starved = [p for p in programs if service[p] == min_service]
            anchor = starved[int(rng.integers(0, len(starved)))]
            eligible = [
                p for p in programs
                if p != anchor and service[p] < min_service + fairness_slack
            ] or [p for p in programs if p != anchor]
            if not noise_aware or rng.random() < self._epsilon:
                partner = eligible[int(rng.integers(0, len(eligible)))]
            else:
                if estimates:
                    optimistic = float(
                        np.quantile(list(estimates.values()), 0.25)
                    )
                else:
                    optimistic = 0.0
                scored = sorted(
                    eligible,
                    key=lambda p: (
                        estimates.get(self._pair_key(anchor, p), optimistic),
                        float(rng.random()),
                    ),
                )
                partner = scored[0]
            jobs = (
                Job(anchor, remaining_intervals=1,
                    progress_intervals=service[anchor]),
                Job(partner, remaining_intervals=1,
                    progress_intervals=service[partner]),
            )
            record = self._run_interval(jobs, interval, rng)
            result.records.append(record)
            key = self._pair_key(anchor, partner)
            previous = estimates.get(key, record.droops_per_1k)
            estimates[key] = (
                (1 - self._alpha) * previous
                + self._alpha * record.droops_per_1k
            )
            service[anchor] += 1
            service[partner] += 1
        return result

    # ------------------------------------------------------------------
    def run_pool(
        self,
        programs: Sequence[str],
        copies: int = 2,
        intervals_per_job: int = 3,
        noise_aware: bool = True,
        seed: SeedLike = None,
        policy_name: Optional[str] = None,
    ) -> OnlineScheduleResult:
        """Run a pool of jobs to completion, two at a time.

        Each program contributes ``copies`` jobs of ``intervals_per_job``
        intervals.  When only one job remains it runs against an idle
        core (its droops are attributed to it alone).
        """
        if copies < 1 or intervals_per_job < 1:
            raise SchedulingError("copies and intervals_per_job must be >= 1")
        rng = as_generator(seed)
        jobs = [
            Job(name=name, remaining_intervals=intervals_per_job)
            for name in programs
            for _ in range(copies)
        ]
        if len(jobs) < 2:
            raise SchedulingError("the pool needs at least two jobs")
        estimates: Dict[Tuple[str, str], float] = {}
        result = OnlineScheduleResult(
            policy_name=policy_name
            or ("online-droop" if noise_aware else "online-random")
        )
        interval = 0
        while True:
            waiting = [job for job in jobs if not job.done]
            if len(waiting) < 2:
                break
            pair = self._pick_pair(waiting, estimates, rng, noise_aware)
            record = self._run_interval(pair, interval, rng)
            result.records.append(record)
            # Learn the pairing's droop level from what was observed.
            key = self._pair_key(pair[0].name, pair[1].name)
            previous = estimates.get(key, record.droops_per_1k)
            estimates[key] = (
                (1 - self._alpha) * previous
                + self._alpha * record.droops_per_1k
            )
            for job in pair:
                job.remaining_intervals -= 1
                job.progress_intervals += 1
            interval += 1
        return result
