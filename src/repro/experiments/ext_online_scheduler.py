"""Extension — online noise-aware scheduling without an oracle.

The paper's Droop policy is an oracle limit study: all 29x29 pair droop
counts are measured a priori.  This experiment drops the oracle: an
:class:`~repro.core.online_scheduler.OnlineScheduler` serves a standing
job mix interval by interval, learns pair-level droop estimates from the
emergencies it actually observes, and pairs the most-starved program with
the quietest learned partner inside a fair-share envelope.

Finding: the online scheduler recovers a *modest but consistent* slice of
the oracle's droop reduction (a few percent vs the oracle's ~15-25 %).
Most of the oracle's benefit needs a-priori pair knowledge and the freedom
to schedule quiet programs more often — which is exactly why the paper
gathers its pre-run pairing sweep.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.online_scheduler import OnlineScheduler
from repro.experiments.common import ExperimentResult
from repro.uarch.chip import Chip

POOL = ("gamess", "lbm", "libquantum", "mcf", "namd", "povray", "sphinx",
        "sjeng")


def run(quick: bool = False, config: str = "Proc3") -> ExperimentResult:
    chip = Chip(config, with_ripple=True)
    scheduler = OnlineScheduler(
        chip,
        window_cycles=15_000 if quick else 20_000,
        metric="events",
    )
    seeds = (1, 2, 3) if quick else (1, 2, 3, 4, 5, 6)
    n_intervals = 40 if quick else 60

    aware_droops: List[float] = []
    oblivious_droops: List[float] = []
    aware_ipc: List[float] = []
    oblivious_ipc: List[float] = []
    for seed in seeds:
        aware = scheduler.run_service(
            POOL, n_intervals=n_intervals, fairness_slack=4,
            noise_aware=True, seed=seed,
        )
        oblivious = scheduler.run_service(
            POOL, n_intervals=n_intervals, fairness_slack=4,
            noise_aware=False, seed=seed,
        )
        aware_droops.append(aware.mean_droops)
        oblivious_droops.append(oblivious.mean_droops)
        aware_ipc.append(aware.mean_ipc)
        oblivious_ipc.append(oblivious.mean_ipc)

    result = ExperimentResult(
        experiment_id="Ext. B",
        title=f"Online noise-aware vs noise-oblivious scheduling ({config})",
        columns=("policy", "mean droop events/1K", "mean pair IPC"),
    )
    result.add_row("online-droop (learned)", float(np.mean(aware_droops)),
                   float(np.mean(aware_ipc)))
    result.add_row("online-random (fair-share)",
                   float(np.mean(oblivious_droops)),
                   float(np.mean(oblivious_ipc)))
    ratio = float(np.mean(aware_droops) / np.mean(oblivious_droops))
    result.series["aware_droops"] = aware_droops
    result.series["oblivious_droops"] = oblivious_droops
    result.series["droop_ratio"] = ratio
    result.notes.append(
        f"learned online pairing reaches {ratio:.3f}x the droop events of "
        "fair-share random scheduling; the oracle Droop policy's 0.76-0.85x "
        "additionally needs a-priori pair knowledge + usage freedom"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=True).format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
