"""Unit tests for the transient simulator and VoltageTrace."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.pdn.platform import build_network, build_simulator, CLOCK_PERIOD_S
from repro.pdn.simulate import TransientSimulator, VoltageTrace
from repro.pdn.stimulus import current_step


@pytest.fixture(scope="module")
def simulator():
    return build_simulator("Proc100", with_ripple=False)


class TestVoltageTrace:
    def test_basic_stats(self):
        trace = VoltageTrace(np.array([1.0, 1.2, 0.9, 1.1]), 1e-9, 1.0)
        assert len(trace) == 4
        assert trace.peak_to_peak() == pytest.approx(0.3)
        assert trace.max_droop_fraction() == pytest.approx(0.1)
        assert trace.max_overshoot_fraction() == pytest.approx(0.2)

    def test_no_droop_when_above_nominal(self):
        trace = VoltageTrace(np.array([1.1, 1.2]), 1e-9, 1.0)
        assert trace.max_droop_fraction() == 0.0  # simlint: disable=HYG001 (exact by construction)

    def test_window(self):
        trace = VoltageTrace(np.arange(1.0, 2.0, 0.1), 1e-9, 1.0)
        sub = trace.window(2, 5)
        assert len(sub) == 3
        assert sub.samples[0] == pytest.approx(1.2)
        with pytest.raises(ConfigurationError):
            trace.window(5, 2)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            VoltageTrace(np.array([]), 1e-9, 1.0)

    @given(
        values=st.lists(
            st.floats(min_value=0.5, max_value=1.5), min_size=1, max_size=50
        )
    )
    def test_pkpk_nonnegative_and_consistent(self, values):
        trace = VoltageTrace(np.array(values), 1e-9, 1.0)
        assert trace.peak_to_peak() >= 0
        assert trace.peak_to_peak_fraction() == pytest.approx(
            trace.peak_to_peak() / 1.0
        )
        dev = trace.deviations_fraction()
        assert np.isclose(
            trace.peak_to_peak_fraction(), dev.max() - dev.min()
        )


class TestTransientSimulator:
    def test_constant_current_gives_dc_solution(self, simulator):
        current = np.full(5000, 12.0)
        trace = simulator.simulate(current, include_ripple=False)
        expected = simulator.network.die_voltage_dc(12.0)
        assert np.allclose(trace.samples, expected, atol=1e-6)

    def test_step_produces_droop_then_recovery(self, simulator):
        trace = simulator.step_response(5.0, 40.0, n_samples=50000)
        dc_high = simulator.network.die_voltage_dc(40.0)
        # There is an undershoot below the final DC value...
        assert trace.samples.min() < dc_high - 1e-4
        # ...and the trace heads back towards it (full settling takes the
        # bulk time constant, ~50 us, longer than this window).
        assert trace.samples[-1] == pytest.approx(dc_high, abs=4e-3)
        assert abs(trace.samples[-1] - dc_high) < 0.5 * abs(
            trace.samples.min() - dc_high
        )

    def test_current_rise_causes_droop_fall_causes_overshoot(self, simulator):
        nominal = simulator.network.nominal_voltage
        up = simulator.simulate(
            current_step(20000, 5.0, 35.0, step_at=1000), include_ripple=False
        )
        down = simulator.simulate(
            current_step(20000, 35.0, 5.0, step_at=1000), include_ripple=False
        )
        assert up.samples.min() < down.samples.min()
        assert down.samples.max() > nominal  # overshoot above nominal
        # The rise droops deeper than it overshoots; the fall the reverse.
        assert up.samples.max() - nominal < nominal - up.samples.min()
        assert down.samples.max() > up.samples.max()

    def test_fast_path_matches_reference(self):
        """sosfilt fast path vs trapezoidal state-space reference."""
        simulator = build_simulator("Proc100", with_ripple=False)
        rng = np.random.default_rng(1)
        current = 10.0 + np.cumsum(rng.normal(0, 0.2, 4000)).clip(-5, 25)
        fast = simulator.simulate(current, include_ripple=False)
        ref = simulator.simulate_reference(current)
        scale = np.abs(ref.samples - ref.nominal_voltage).max() + 1e-9
        error = np.abs(fast.samples - ref.samples).max()
        assert error < 0.05 * scale

    def test_rejects_bad_current(self, simulator):
        with pytest.raises(SimulationError):
            simulator.simulate(np.array([]))
        with pytest.raises(SimulationError):
            simulator.simulate(np.array([1.0, np.nan]))

    def test_ripple_superimposed_when_enabled(self):
        with_vrm = build_simulator("Proc100", with_ripple=True)
        current = np.full(40000, 10.0)
        quiet = with_vrm.simulate(current, include_ripple=False)
        noisy = with_vrm.simulate(current, include_ripple=True, seed=3)
        assert noisy.peak_to_peak() > quiet.peak_to_peak() + 1e-3

    def test_natural_frequencies_span_expected_decades(self, simulator):
        freqs = simulator.natural_frequencies_hz()
        assert freqs.size >= 2
        # Die resonance in the 100-200 MHz band must be present.
        assert np.any((freqs > 5e7) & (freqs < 5e8))

    def test_deterministic_given_seed(self, simulator):
        sim = build_simulator("Proc100", with_ripple=True)
        current = np.full(5000, 9.0)
        a = sim.simulate(current, seed=42)
        b = sim.simulate(current, seed=42)
        assert np.array_equal(a.samples, b.samples)
