"""Unit tests for the experiment CLI."""

import pytest

from repro.cli import DESCRIPTIONS, EXPERIMENTS, main


class TestCli:
    def test_every_experiment_described(self):
        assert set(EXPERIMENTS) == set(DESCRIPTIONS)

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for alias in EXPERIMENTS:
            assert alias in out

    def test_run_one(self, capsys):
        assert main(["run", "fig01"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert "finished in" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_aliases_resolve_to_modules(self):
        import importlib

        for name in EXPERIMENTS.values():
            importlib.import_module(f"repro.experiments.{name}")
