"""Determinism-taint analysis: nondeterminism sources to result sinks.

The repository's reproducibility contract — campaigns are bit-identical
across ``--jobs N``, retries, pool rebuilds, and cache states — reduces
to a dataflow property: **no nondeterministic value may reach a run
result or a cache key, and no aggregation may depend on an unspecified
order**.  This pass checks that property interprocedurally, on top of
the shared call graph (:mod:`repro.analysis.flow.callgraph`) and the
effect machinery (:mod:`repro.analysis.flow.effects`).

Taint *labels* — ``clock`` (wall-clock **and** monotonic readers: a
monotonic value may time telemetry but never a result), ``rng`` (a
stream not derived from parameter seed material), ``env``
(``os.environ`` / ``platform.*``) — propagate flow-insensitively
through local assignments and through resolved project calls via
per-function **return-taint summaries**; which parameters reach a
hashing sink propagates the same way via **key-param summaries**, so a
caller three modules away that passes a timestamp into a cache-key
helper is still caught.

The rules:

* ``TNT001`` — a clock-derived value reaches a worker entry's return
  (the run result) or a ``hashlib`` cache-key sink;
* ``TNT002`` — a random stream not derived via
  ``random_utils.derive_generator`` (or equivalently from parameter
  seed material) reaches a worker entry's return;
* ``TNT003`` — iteration over an unordered ``set`` feeds an
  order-sensitive reduction (``sum``/``list``/``join``/accumulating
  loop) inside the worker-reachable closure;
* ``TNT004`` — results aggregated in worker *completion* order
  (``as_completed``/``imap_unordered`` feeding an accumulator) rather
  than spec order;
* ``TNT005`` — an environment/platform-dependent value flows into the
  ``hashlib`` cache key.

Analysis boundaries, chosen to keep the pass quiet on sanctioned code:
attribute stores (``batch.wall_seconds = …``) do not taint their base
object — telemetry legitimately hangs timing off result carriers, and
the OBS rules police raw clock reads; dict iteration is *not* unordered
(Python dicts iterate in insertion order); ``sorted()`` normalizes any
iteration order and therefore launders TNT003/TNT004; accumulating
``count += 1`` loops that never touch the loop variable are
order-insensitive and stay silent.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.engine import FileContext
from repro.analysis.findings import Finding
from repro.analysis.flow.callgraph import (
    local_types,
    param_derived_names,
    project_worker_entries,
    worker_closure,
)
from repro.analysis.flow.effects import (
    DERIVE_GENERATOR,
    ENV_ATTRIBUTES,
    ENV_CALLS,
    SEEDABLE_RNG_FACTORIES,
    WALL_CLOCK_CALLS,
    is_set_typed,
    set_typed_locals,
)
from repro.analysis.flow.symbols import FunctionInfo, ModuleInfo, Project
from repro.analysis.registry import get_rule

#: A taint label: ``(kind, origin)`` where kind is ``clock``/``rng``/
#: ``env`` (a nondeterminism source) or ``param`` (a caller-owned value).
Label = Tuple[str, str]

#: Calls whose *value* is clock-derived.  Wider than the ``reads-clock``
#: effect: monotonic readers are sanctioned for telemetry intervals but
#: their values still must never reach a result or cache key.
CLOCK_VALUE_CALLS = WALL_CLOCK_CALLS | frozenset(
    {
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "repro.observability.monotonic_seconds",
        "repro.observability.clock.monotonic_seconds",
    }
)

#: Hash constructors whose arguments form cache-key material.
HASH_SINKS = frozenset(
    {
        "hashlib.sha256",
        "hashlib.sha1",
        "hashlib.sha512",
        "hashlib.sha3_256",
        "hashlib.md5",
        "hashlib.blake2b",
        "hashlib.blake2s",
        "hashlib.new",
    }
)

#: Reductions whose result depends on element order.
ORDER_SENSITIVE_CONSUMERS = frozenset(
    {
        "sum",
        "list",
        "tuple",
        "functools.reduce",
        "itertools.accumulate",
        "numpy.array",
        "numpy.asarray",
        "numpy.cumsum",
    }
)

#: Receiver methods that accumulate in call order.
ACCUMULATING_METHODS = frozenset({"append", "extend", "appendleft", "write"})

#: Iterators that yield in worker-completion order (TNT004).
COMPLETION_ITERATORS = frozenset({"as_completed", "imap_unordered"})


@dataclass(frozen=True)
class TaintSummary:
    """What one function exposes to its callers."""

    #: Source kinds the return value may carry, with a witness origin.
    ret_sources: Tuple[Tuple[str, str], ...] = ()
    #: Parameters that flow into a hash (cache-key) sink.
    key_params: FrozenSet[str] = frozenset()


_EMPTY_SUMMARY = TaintSummary()
_MAX_ROUNDS = 12


def _binding_targets(
    node: ast.AST,
) -> Tuple[List[str], Optional[ast.expr]]:
    """Name targets and source expression of one binding statement."""
    targets: List[ast.expr] = []
    value: Optional[ast.expr] = None
    if isinstance(node, ast.Assign):
        targets, value = list(node.targets), node.value
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets, value = [node.target], node.value
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        targets, value = [node.target], node.iter
    elif isinstance(node, (ast.With, ast.AsyncWith)):
        names: List[str] = []
        for item in node.items:
            if isinstance(item.optional_vars, ast.Name):
                names.append(item.optional_vars.id)
        # ``with`` items bind one-to-one; fold them into one edge from
        # the first context expression (conservative, rarely mixed).
        if names:
            return names, node.items[0].context_expr
        return [], None
    elif isinstance(node, ast.NamedExpr):
        targets, value = [node.target], node.value
    names = []
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names.extend(
                elt.id for elt in target.elts if isinstance(elt, ast.Name)
            )
    return names, value


class TaintPass:
    """TNT001–TNT005 over one analyzed project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.findings: List[Finding] = []
        self.summaries: Dict[str, TaintSummary] = {
            qualname: _EMPTY_SUMMARY for qualname in project.functions
        }

    # ------------------------------------------------------------------
    # Label propagation
    # ------------------------------------------------------------------
    def _source_label(
        self,
        fn: FunctionInfo,
        node: ast.Call,
        derived: Set[str],
    ) -> Optional[Label]:
        """The label a source call introduces, if it is one."""
        dotted = fn.module.ctx.dotted_name(node.func)
        if dotted is None:
            return None
        if dotted in CLOCK_VALUE_CALLS:
            return ("clock", dotted)
        if dotted in ENV_CALLS or dotted.startswith("platform."):
            return ("env", dotted)
        if dotted == DERIVE_GENERATOR:
            return None  # the sanctioned derivation — always clean
        if dotted in SEEDABLE_RNG_FACTORIES:
            seed_args = list(node.args) + [kw.value for kw in node.keywords]
            if not seed_args:
                return ("rng", f"{dotted}()")
            seeded = any(
                isinstance(sub, ast.Name) and sub.id in derived
                for arg in seed_args
                for sub in ast.walk(arg)
            )
            return None if seeded else ("rng", dotted)
        if dotted.startswith("random.") or dotted.startswith("numpy.random."):
            return ("rng", dotted)
        return None

    def _expr_labels(
        self,
        fn: FunctionInfo,
        expr: ast.expr,
        env: Dict[str, Set[Label]],
        derived: Set[str],
        types: Dict[str, str],
        self_name: Optional[str],
    ) -> Set[Label]:
        """Every label the value of ``expr`` may carry.

        Sub-expression names propagate conservatively (``f(x)`` keeps
        ``x``'s labels even if ``f`` ignores it); resolved project
        calls additionally contribute their return-taint summaries.
        When a method call *is* resolved, the summary characterizes its
        return exactly, so the receiver's own labels do not leak into
        the call's value (``campaign.run_spec(...)`` is not env-tainted
        merely because the campaign holds an env-derived retry policy);
        unresolved calls (``rng.normal()``) stay conservative.
        """
        labels: Set[Label] = set()
        ctx = fn.module.ctx
        receiver_names: Set[int] = set()
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name):
                if id(sub) not in receiver_names:
                    labels |= env.get(sub.id, set())
            elif isinstance(sub, ast.Call):
                source = self._source_label(fn, sub, derived)
                if source is not None:
                    labels.add(source)
                resolved = self.project.resolve_callee(
                    fn.module, sub.func, types, fn.class_name, self_name
                )
                if isinstance(resolved, FunctionInfo):
                    summary = self.summaries.get(
                        resolved.qualname, _EMPTY_SUMMARY
                    )
                    labels.update(summary.ret_sources)
                    if isinstance(sub.func, ast.Attribute):
                        receiver_names.update(
                            id(inner)
                            for inner in ast.walk(sub.func)
                            if isinstance(inner, ast.Name)
                        )
            elif isinstance(sub, ast.Attribute):
                dotted = ctx.dotted_name(sub)
                if dotted in ENV_ATTRIBUTES:
                    labels.add(("env", dotted))
        return labels

    def _local_env(
        self,
        fn: FunctionInfo,
        derived: Set[str],
        types: Dict[str, str],
        self_name: Optional[str],
    ) -> Dict[str, Set[Label]]:
        """Flow-insensitive fixpoint of local-name labels."""
        env: Dict[str, Set[Label]] = {
            name: {("param", name)} for name in fn.params
        }
        for arg in fn.node.args.kwonlyargs:
            env[arg.arg] = {("param", arg.arg)}
        changed = True
        while changed:
            changed = False
            for node in ast.walk(fn.node):
                names, value = _binding_targets(node)
                if not names or value is None:
                    continue
                labels = self._expr_labels(
                    fn, value, env, derived, types, self_name
                )
                for name in names:
                    before = env.setdefault(name, set())
                    if labels - before:
                        before |= labels
                        changed = True
        return env

    # ------------------------------------------------------------------
    # Summaries (project fixpoint)
    # ------------------------------------------------------------------
    def _summarize(self, fn: FunctionInfo) -> TaintSummary:
        derived = param_derived_names(fn)
        types, self_name = local_types(self.project, fn)
        env = self._local_env(fn, derived, types, self_name)

        ret: Dict[str, str] = {}
        key_params: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                for kind, origin in self._expr_labels(
                    fn, node.value, env, derived, types, self_name
                ):
                    if kind != "param":
                        ret.setdefault(kind, origin)
            elif isinstance(node, ast.Call):
                for _arg, labels in self._key_sink_args(
                    fn, node, env, derived, types, self_name
                ):
                    for kind, origin in labels:
                        if kind == "param":
                            key_params.add(origin)
        return TaintSummary(
            ret_sources=tuple(sorted(ret.items())),
            key_params=frozenset(key_params),
        )

    def _key_sink_args(
        self,
        fn: FunctionInfo,
        node: ast.Call,
        env: Dict[str, Set[Label]],
        derived: Set[str],
        types: Dict[str, str],
        self_name: Optional[str],
    ) -> List[Tuple[ast.expr, Set[Label]]]:
        """``(arg, labels)`` for every argument that is cache-key material."""
        ctx = fn.module.ctx
        sink_args: List[ast.expr] = []
        dotted = ctx.dotted_name(node.func)
        if dotted in HASH_SINKS:
            sink_args = list(node.args) + [kw.value for kw in node.keywords]
        else:
            resolved = self.project.resolve_callee(
                fn.module, node.func, types, fn.class_name, self_name
            )
            if isinstance(resolved, FunctionInfo):
                summary = self.summaries.get(
                    resolved.qualname, _EMPTY_SUMMARY
                )
                if summary.key_params:
                    bound = resolved.is_method and isinstance(
                        node.func, ast.Attribute
                    )
                    for index, arg in enumerate(node.args):
                        name = resolved.positional_param(index, bound=bound)
                        if name in summary.key_params:
                            sink_args.append(arg)
                    for keyword in node.keywords:
                        if keyword.arg in summary.key_params:
                            sink_args.append(keyword.value)
        return [
            (
                arg,
                self._expr_labels(fn, arg, env, derived, types, self_name),
            )
            for arg in sink_args
        ]

    # ------------------------------------------------------------------
    # Findings
    # ------------------------------------------------------------------
    def _report(
        self, code: str, module: ModuleInfo, node: ast.AST, message: str
    ) -> None:
        self.findings.append(
            module.ctx.finding(get_rule(code), node, message)
        )

    @staticmethod
    def _witness(
        expr: ast.expr, env: Dict[str, Set[Label]], kind: str
    ) -> Optional[str]:
        """A local name in ``expr`` carrying ``kind``, for the message."""
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and any(
                k == kind for k, _ in env.get(sub.id, ())
            ):
                return sub.id
        return None

    def _emit_for_function(
        self,
        fn: FunctionInfo,
        entry_qualnames: Set[str],
        closure_qualnames: Set[str],
    ) -> None:
        derived = param_derived_names(fn)
        types, self_name = local_types(self.project, fn)
        env = self._local_env(fn, derived, types, self_name)
        module = fn.module

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                for arg, labels in self._key_sink_args(
                    fn, node, env, derived, types, self_name
                ):
                    kinds = {kind: origin for kind, origin in labels}
                    if "clock" in kinds:
                        via = self._witness(arg, env, "clock") or kinds["clock"]
                        self._report(
                            "TNT001", module, arg,
                            f"clock-derived value `{via}` flows into the "
                            "cache content key; a cached result would "
                            "replay a timestamp and keys must derive only "
                            "from (spec, config, seed)",
                        )
                    if "env" in kinds:
                        via = self._witness(arg, env, "env") or kinds["env"]
                        self._report(
                            "TNT005", module, arg,
                            f"host-dependent value `{via}` (environment/"
                            "platform) flows into the cache content key; "
                            "the cache would fragment across machines "
                            "instead of replaying identical results",
                        )
            elif (
                isinstance(node, ast.Return)
                and node.value is not None
                and fn.qualname in entry_qualnames
            ):
                kinds = {
                    kind: origin
                    for kind, origin in self._expr_labels(
                        fn, node.value, env, derived, types, self_name
                    )
                }
                if "clock" in kinds:
                    via = self._witness(node.value, env, "clock") \
                        or kinds["clock"]
                    self._report(
                        "TNT001", module, node,
                        f"clock-derived value `{via}` reaches the run "
                        f"result returned by worker entry {fn.qualname}; "
                        "results must be a pure function of (seed, spec)",
                    )
                if "rng" in kinds:
                    via = self._witness(node.value, env, "rng") \
                        or kinds["rng"]
                    self._report(
                        "TNT002", module, node,
                        f"random stream `{via}` reaching the run result of "
                        f"{fn.qualname} is not derived via "
                        "random_utils.derive_generator (or from seed "
                        "parameters); parallel and serial runs would "
                        "diverge",
                    )

        if fn.qualname in closure_qualnames:
            self._scan_unordered_reductions(fn)
        self._scan_completion_order(fn)

    # -- TNT003 --------------------------------------------------------
    def _scan_unordered_reductions(self, fn: FunctionInfo) -> None:
        set_names = set_typed_locals(fn)
        if not set_names and not any(
            isinstance(node, (ast.Set, ast.SetComp))
            or (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")
            )
            for node in ast.walk(fn.node)
        ):
            return
        ctx = fn.module.ctx
        consumed: Set[int] = set()
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            first = node.args[0]
            if not self._set_feed(first, set_names):
                continue
            dotted = ctx.dotted_name(node.func)
            is_join = (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
            )
            if dotted in ORDER_SENSITIVE_CONSUMERS or is_join:
                consumed.add(id(first))
                what = "str.join" if is_join else str(dotted)
                self._report(
                    "TNT003", fn.module, node,
                    f"`{what}` consumes an unordered set in "
                    f"worker-reachable {fn.qualname}; the reduction order "
                    "is unspecified, so results would vary run-to-run — "
                    "sort the elements first",
                )
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.For, ast.AsyncFor)) and is_set_typed(
                node.iter, set_names
            ):
                if self._order_sensitive_loop(node):
                    self._report(
                        "TNT003", fn.module, node,
                        "loop over an unordered set accumulates into an "
                        f"order-sensitive result in {fn.qualname}; iterate "
                        "over sorted(...) instead",
                    )
            elif isinstance(node, ast.ListComp) and id(node) not in consumed:
                if any(
                    is_set_typed(gen.iter, set_names)
                    for gen in node.generators
                ):
                    self._report(
                        "TNT003", fn.module, node,
                        "list built by iterating an unordered set in "
                        f"{fn.qualname}; the element order is unspecified "
                        "— sort the set first",
                    )

    @staticmethod
    def _set_feed(expr: ast.expr, set_names: Set[str]) -> bool:
        if is_set_typed(expr, set_names):
            return True
        if isinstance(expr, (ast.GeneratorExp, ast.ListComp)):
            return any(
                is_set_typed(gen.iter, set_names) for gen in expr.generators
            )
        return False

    @staticmethod
    def _order_sensitive_loop(node: ast.AST) -> bool:
        """Does this loop's body accumulate something element-dependent?

        ``count += 1`` never touches the loop variable and is order-
        insensitive; ``total += f(x)`` and ``out.append(x)`` are not.
        """
        assert isinstance(node, (ast.For, ast.AsyncFor))
        loop_names = {
            sub.id
            for sub in ast.walk(node.target)
            if isinstance(sub, ast.Name)
        }

        def mentions_loop_var(expr: ast.AST) -> bool:
            return any(
                isinstance(sub, ast.Name) and sub.id in loop_names
                for sub in ast.walk(expr)
            )

        for child in node.body:
            for sub in ast.walk(child):
                if isinstance(sub, ast.AugAssign) and mentions_loop_var(
                    sub.value
                ):
                    return True
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in ACCUMULATING_METHODS
                    and any(mentions_loop_var(arg) for arg in sub.args)
                ):
                    return True
        return False

    # -- TNT004 --------------------------------------------------------
    @staticmethod
    def _completion_iter(
        ctx: FileContext, expr: ast.expr
    ) -> Optional[str]:
        """The completion-order iterator name ``expr`` calls, if any."""
        if not isinstance(expr, ast.Call):
            return None
        if isinstance(expr.func, ast.Attribute) and \
                expr.func.attr in COMPLETION_ITERATORS:
            return expr.func.attr
        if isinstance(expr.func, ast.Name):
            dotted = ctx.dotted_name(expr.func)
            if dotted is not None and \
                    dotted.rpartition(".")[2] in COMPLETION_ITERATORS:
                return dotted.rpartition(".")[2]
        return None

    def _scan_completion_order(self, fn: FunctionInfo) -> None:
        ctx = fn.module.ctx
        #: Arguments normalized by an order-insensitive consumer.
        laundered = {
            id(arg)
            for node in ast.walk(fn.node)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("sorted", "min", "max", "len", "set",
                                 "frozenset")
            for arg in node.args
        }
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                name = self._completion_iter(ctx, node.iter)
                if name and self._order_sensitive_loop(node):
                    self._report(
                        "TNT004", fn.module, node,
                        f"results accumulated in `{name}` (worker "
                        f"completion) order in {fn.qualname}; aggregate "
                        "by spec order instead so campaigns are "
                        "bit-identical across --jobs N",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and node.args
            ):
                name = self._completion_iter(ctx, node.args[0])
                if name:
                    self._report(
                        "TNT004", fn.module, node,
                        f"`{node.func.id}(...)` materializes `{name}` "
                        f"(worker completion) order in {fn.qualname}; "
                        "reorder by spec before aggregating",
                    )
            elif isinstance(
                node, (ast.ListComp, ast.GeneratorExp)
            ) and id(node) not in laundered:
                for gen in node.generators:
                    name = self._completion_iter(ctx, gen.iter)
                    if name:
                        self._report(
                            "TNT004", fn.module, node,
                            f"comprehension consumes `{name}` (worker "
                            f"completion) order in {fn.qualname}; "
                            "reorder by spec before aggregating",
                        )
                        break

    # ------------------------------------------------------------------
    def run(self) -> List[Finding]:
        ordered = sorted(self.project.functions)
        for _round in range(_MAX_ROUNDS):
            changed = False
            for qualname in ordered:
                summary = self._summarize(self.project.functions[qualname])
                if summary != self.summaries[qualname]:
                    self.summaries[qualname] = summary
                    changed = True
            if not changed:
                break
        entries = {
            fn.qualname for fn in project_worker_entries(self.project)
        }
        closure = {fn.qualname for fn in worker_closure(self.project)}
        for qualname in ordered:
            self._emit_for_function(
                self.project.functions[qualname], entries, closure
            )
        return self.findings


def run_taint_pass(project: Project) -> List[Finding]:
    """All TNT findings for an analyzed project."""
    return TaintPass(project).run()
