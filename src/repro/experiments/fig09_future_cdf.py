"""Fig. 9 — voltage-sample distributions on the future nodes (Proc25/Proc3).

Paper: the typical-case spread widens as decap shrinks — samples violating
the -4 % line grow from 0.06 % (Proc100) to ~0.2 % (Proc25) and ~2.2 %
(Proc3), and the per-run CDF curves fan out more on Proc3.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.context import (
    get_campaign,
    parsec_names,
    spec_names,
    window_cycles,
)
from repro.experiments.fig07_typical_case_cdf import TYPICAL_MARGIN

CONFIGS = ("Proc100", "Proc25", "Proc3")


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="Fig. 9",
        title="Typical-case sample distributions on future nodes",
        columns=("config", "samples beyond -4% (%)", "max droop (%)",
                 "98% spread (%)"),
    )
    fractions = {}
    for config in CONFIGS:
        campaign = get_campaign(config, n_cycles=window_cycles(quick))
        runs = campaign.all_runs(spec_names(quick), parsec_names(quick))
        merged = runs[0].histogram
        for measurement in runs[1:]:
            merged = merged.merge(measurement.histogram)
        beyond = merged.fraction_below(-TYPICAL_MARGIN)
        fractions[config] = beyond
        spread = merged.quantile(0.99) - merged.quantile(0.01)
        result.add_row(
            config,
            100 * beyond,
            100 * max(r.max_droop for r in runs),
            100 * spread,
        )
        result.series[f"histogram_{config}"] = merged
    result.series["beyond_typical"] = fractions
    result.notes.append(
        "paper: 0.06% (Proc100) -> 0.2% (Proc25) -> 2.2% (Proc3) of samples "
        "beyond -4%; the ordering and widening spread are the target shape"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=True).format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
