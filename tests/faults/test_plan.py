"""Fault-plan parsing: the DSL, canonicalization and error handling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.faults import (
    DEFAULT_PLAN_SPEC,
    FAULT_SITES,
    INJECT_FAULTS_ENV,
    FaultPlan,
    parse_plan,
    plan_from_env,
)
from repro.faults.plan import DEFAULT_HANG_SECONDS, DEFAULT_RATE


class TestParsing:
    def test_single_token_with_rate(self):
        plan = parse_plan("crash:0.25")
        assert plan is not None
        assert plan.rate("worker.crash") == 0.25  # simlint: disable=HYG001 (exact by construction)
        assert plan.rate("worker.hang") == 0.0  # simlint: disable=HYG001 (exact by construction)

    def test_bare_token_uses_default_rate(self):
        plan = parse_plan("corrupt")
        assert plan is not None
        assert plan.rate("cache.store") == DEFAULT_RATE

    def test_every_kind_maps_to_a_distinct_site(self):
        assert len(set(FAULT_SITES.values())) == len(FAULT_SITES)
        plan = parse_plan(",".join(f"{kind}:1.0" for kind in FAULT_SITES))
        assert plan is not None
        for site in FAULT_SITES.values():
            assert plan.rate(site) == 1.0  # simlint: disable=HYG001 (exact by construction)

    def test_seed_and_hang_seconds_options(self):
        plan = parse_plan("hang:0.5,seed=42,hang-seconds=0.25")
        assert plan is not None
        assert plan.seed == 42
        assert plan.hang_seconds == 0.25  # simlint: disable=HYG001 (exact by construction)

    def test_defaults(self):
        plan = parse_plan("exception:1")
        assert plan is not None
        assert plan.seed == 0
        assert plan.hang_seconds == DEFAULT_HANG_SECONDS

    def test_whitespace_and_case_tolerated(self):
        plan = parse_plan("  Crash : 0.5 ,  SEED=3 ")
        assert plan is not None
        assert plan.rate("worker.crash") == 0.5  # simlint: disable=HYG001 (exact by construction)
        assert plan.seed == 3

    @pytest.mark.parametrize("spec", [None, "", "  ", "off", "none", "0", "OFF"])
    def test_disabled_specs(self, spec):
        assert parse_plan(spec) is None

    def test_default_keyword_expands_to_canonical_plan(self):
        assert parse_plan("default") == parse_plan(DEFAULT_PLAN_SPEC)

    def test_default_plan_enables_every_kind(self):
        plan = parse_plan("default")
        assert plan is not None
        for site in FAULT_SITES.values():
            assert plan.rate(site) > 0.0


class TestErrors:
    @pytest.mark.parametrize(
        "spec",
        [
            "sigsegv:0.5",  # unknown kind
            "crash:1.5",  # rate above 1
            "crash:-0.1",  # negative rate
            "crash:abc",  # malformed rate
            "seed=1.5",  # non-integer seed
            "hang-seconds=-1",  # negative hang
            "volume=11",  # unknown option
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ConfigurationError):
            parse_plan(spec)

    def test_unknown_site_rate_lookup_raises(self):
        plan = parse_plan("crash:0.5")
        assert plan is not None
        with pytest.raises(ConfigurationError):
            plan.rate("worker.teleport")


class TestCanonicalForm:
    def test_spec_round_trips(self):
        plan = parse_plan("hang:0.5,crash:0.25,seed=9,hang-seconds=0.1")
        assert plan is not None
        assert parse_plan(plan.spec) == plan

    def test_token_order_is_irrelevant(self):
        a = parse_plan("crash:0.2,corrupt:0.4")
        b = parse_plan("corrupt:0.4,crash:0.2")
        assert a == b
        assert a is not None and b is not None
        assert a.spec == b.spec

    @given(
        rates=st.dictionaries(
            st.sampled_from(sorted(FAULT_SITES)),
            st.integers(0, 1000).map(lambda n: n / 1000),
            min_size=1,
        ),
        seed=st.integers(0, 2**31),
    )
    def test_canonicalization_is_a_fixpoint(self, rates, seed):
        spec = ",".join(f"{kind}:{rate}" for kind, rate in rates.items())
        plan = parse_plan(f"{spec},seed={seed}")
        assert plan is not None
        again = parse_plan(plan.spec)
        assert again == plan
        assert again is not None
        assert again.spec == plan.spec


class TestEnvironment:
    def test_env_plan(self, monkeypatch):
        monkeypatch.setenv(INJECT_FAULTS_ENV, "crash:0.5,seed=2")
        plan = plan_from_env()
        assert plan == FaultPlan(rates=(("worker.crash", 0.5),), seed=2)

    def test_env_unset_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(INJECT_FAULTS_ENV, raising=False)
        assert plan_from_env() is None

    def test_env_off_means_no_plan(self, monkeypatch):
        monkeypatch.setenv(INJECT_FAULTS_ENV, "off")
        assert plan_from_env() is None


class TestUndervoltDepth:
    def test_depth_option_parses(self):
        plan = parse_plan("biterror:0.5,undervolt-depth=0.04,seed=3")
        assert plan is not None
        assert plan.rate("vmin.biterror") == 0.5  # simlint: disable=HYG001 (exact by construction)
        assert plan.undervolt_depth_volt == 0.04  # simlint: disable=HYG001 (exact by construction)

    def test_depth_defaults_to_zero(self):
        plan = parse_plan("biterror:1.0")
        assert plan is not None
        assert plan.undervolt_depth_volt == 0.0  # simlint: disable=HYG001 (exact by construction)

    def test_depth_round_trips_through_spec(self):
        plan = parse_plan("biterror:1,undervolt-depth=0.025")
        assert plan is not None
        assert "undervolt-depth=0.025" in plan.spec
        assert parse_plan(plan.spec) == plan

    def test_zero_depth_stays_out_of_the_spec(self):
        # Pre-undervolt plan specs must stay byte-identical: the option
        # is only rendered when it actually changes behavior.
        plan = parse_plan("biterror:1.0,crash:0.5")
        assert plan is not None
        assert "undervolt-depth" not in plan.spec

    def test_default_plan_is_armed_but_inert(self):
        plan = parse_plan("default")
        assert plan is not None
        assert plan.rate("vmin.biterror") > 0.0
        assert plan.undervolt_depth_volt == 0.0  # simlint: disable=HYG001 (exact by construction)

    def test_negative_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_plan("biterror:1,undervolt-depth=-0.01")
