"""Bench: Fig. 8 — improvement vs margin per recovery cost (Proc100)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.resilience import RECOVERY_COSTS
from repro.experiments import fig08_margin_sweep


def test_fig08_margin_sweep(benchmark, quick):
    result = run_once(benchmark, lambda: fig08_margin_sweep.run(quick=quick))
    model = result.series["model"]
    sweeps = result.series["sweeps"]

    optima = [model.optimal_margin(c) for c in RECOVERY_COSTS]
    margins = [o.margin for o in optima]
    peaks = [o.improvement for o in optima]

    # Optimal margins relax (grow) with recovery cost; peak gains shrink.
    assert all(a <= b + 1e-9 for a, b in zip(margins, margins[1:]))
    assert all(a >= b - 1e-9 for a, b in zip(peaks, peaks[1:]))
    # Fine-grained recovery lands in the paper's 15-21 % band on Proc100.
    assert 0.13 <= peaks[0] <= 0.21
    # Coarse-grained recovery still beats worst-case design, but by less
    # (paper: ~13 %) — allow the simulator a generous band.
    assert 0.0 < peaks[-1] < peaks[0]
    # The dead zone exists: for the coarsest scheme, over-aggressive
    # margins fall below the conservative baseline.
    _, worst_curve = sweeps[RECOVERY_COSTS[-1]]
    assert worst_curve.min() < 0.0
    # Each curve has a single interior maximum (no multi-modality),
    # matching the paper's "only one performance peak per recovery cost".
    for cost in RECOVERY_COSTS:
        _, curve = sweeps[cost]
        peak = int(np.argmax(curve))
        assert np.all(np.diff(curve[: peak + 1]) >= -1e-4)
        assert np.all(np.diff(curve[peak:]) <= 1e-4)
    print("\n" + result.format_table())
