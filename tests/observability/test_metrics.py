"""Metrics registry unit tests: catalog, recording, merge, exporters."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.observability import (
    CATALOG,
    DEPTH_BUCKET_BOUNDS,
    MetricsRegistry,
    depth_bucket,
)


class TestCatalog:
    def test_every_metric_declared_consistently(self):
        for name, spec in CATALOG.items():
            assert spec.name == name
            assert name.startswith("repro_")
            assert spec.kind in ("counter", "gauge", "histogram")
            assert spec.unit
            assert spec.help
            assert (spec.kind == "histogram") == bool(spec.buckets)

    def test_unknown_metric_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="unknown metric"):
            registry.increment("repro_not_declared_total")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="is a counter"):
            registry.set_gauge("repro_runs_total", 1.0)

    def test_counters_cannot_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            registry.increment("repro_runs_total", -1)


class TestDepthBuckets:
    @pytest.mark.parametrize(
        "fraction,label",
        [
            (0.0, "lt2pct"),
            (0.019, "lt2pct"),
            (0.02, "2to3pct"),
            (0.04, "3to5pct"),
            (0.07, "5to10pct"),
            (0.5, "ge10pct"),
        ],
    )
    def test_bucket_assignment(self, fraction, label):
        assert depth_bucket(fraction) == label

    def test_bounds_are_increasing(self):
        bounds = [bound for _, bound in DEPTH_BUCKET_BOUNDS]
        assert bounds == sorted(bounds)


class TestRecording:
    def test_counter_accumulates_by_label(self):
        registry = MetricsRegistry()
        registry.increment("repro_droop_events_total", 2, depth="lt2pct")
        registry.increment("repro_droop_events_total", 3, depth="lt2pct")
        registry.increment("repro_droop_events_total", 1, depth="ge10pct")
        assert registry.counter_value(
            "repro_droop_events_total", depth="lt2pct"
        ) == 5
        assert registry.counter_value(
            "repro_droop_events_total", depth="ge10pct"
        ) == 1

    def test_gauge_takes_latest(self):
        registry = MetricsRegistry()
        registry.set_gauge("repro_experiment_seconds", 1.0, experiment="a")
        registry.set_gauge("repro_experiment_seconds", 2.0, experiment="a")
        payload = registry.json_payload()
        assert payload["runtime"][
            'repro_experiment_seconds{experiment="a"}'
        ] == pytest.approx(2.0)

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        for value in (0.5, 1.5, 150.0):
            registry.observe("repro_run_droops_per_1k", value)
        entry = registry.json_payload()["histograms"][
            "repro_run_droops_per_1k"
        ]
        assert entry["count"] == 3
        assert entry["sum"] == pytest.approx(152.0)
        assert entry["buckets"]["le_1"] == 1
        assert entry["buckets"]["le_2"] == 1
        assert entry["inf"] == 1


class TestWorkerMerge:
    def test_snapshot_merge_round_trip(self):
        worker = MetricsRegistry()
        worker.increment("repro_runs_simulated_total", 4)
        worker.observe("repro_run_droops_per_1k", 3.0)
        parent = MetricsRegistry()
        parent.increment("repro_runs_simulated_total", 1)
        parent.merge(worker.snapshot())
        parent.merge(worker.snapshot())
        assert parent.counter_value("repro_runs_simulated_total") == 9
        entry = parent.json_payload()["histograms"][
            "repro_run_droops_per_1k"
        ]
        assert entry["count"] == 2

    def test_snapshot_is_picklable_primitives(self):
        registry = MetricsRegistry()
        registry.increment("repro_runs_total", 1)
        snapshot = registry.snapshot()
        import json

        assert json.loads(json.dumps(snapshot)) == snapshot


class TestExporters:
    def test_runtime_metrics_quarantined(self):
        registry = MetricsRegistry()
        registry.increment("repro_runs_total", 2)
        registry.increment("repro_parallel_batches_total", 1)
        registry.increment("repro_worker_runs_total", 5, worker=1234)
        payload = registry.json_payload()
        assert payload["counters"] == {"repro_runs_total": 2}
        assert payload["runtime"]["repro_parallel_batches_total"] == 1
        assert (
            payload["runtime"]['repro_worker_runs_total{worker="1234"}'] == 5
        )

    def test_integers_rendered_as_integers(self):
        registry = MetricsRegistry()
        registry.increment("repro_runs_total", 2.0)
        assert registry.json_payload()["counters"]["repro_runs_total"] == 2

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.increment("repro_runs_total", 2)
        registry.observe("repro_run_droops_per_1k", 1.5)
        text = registry.prometheus_text()
        assert "# HELP repro_runs_total" in text
        assert "# TYPE repro_runs_total counter" in text
        assert "\nrepro_runs_total 2\n" in text or text.startswith(
            "repro_runs_total 2"
        )
        # Histogram buckets are cumulative and end with +Inf.
        assert 'repro_run_droops_per_1k_bucket{le="2"} 1' in text
        assert 'repro_run_droops_per_1k_bucket{le="+Inf"} 1' in text
        assert "repro_run_droops_per_1k_count 1" in text
        assert text.endswith("\n")

    def test_counters_matching_prefix(self):
        registry = MetricsRegistry()
        registry.increment("repro_cache_hits_total", 2)
        registry.increment("repro_cache_misses_total", 1)
        registry.increment("repro_runs_total", 3)
        matched = registry.counters_matching("repro_cache_")
        assert matched == {
            "repro_cache_hits_total": 2,
            "repro_cache_misses_total": 1,
        }
