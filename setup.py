"""Legacy setup shim.

The offline environment lacks the ``wheel`` package needed for PEP 660
editable installs, so this shim lets ``pip install -e .`` fall back to the
classic ``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
