"""Tests for undervolting-based worst-case margin discovery (Sec. II-C)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.pdn.platform import NOMINAL_VOLTAGE, WORST_CASE_MARGIN
from repro.pdn.undervolt import (
    CRITICAL_VOLTAGE,
    undervolt_to_failure,
)


@pytest.fixture(scope="module")
def result():
    return undervolt_to_failure(n_cycles=40_000)


class TestMarginDiscovery:
    def test_derived_margin_matches_platform_constant(self, result):
        """The shipped WORST_CASE_MARGIN constant is the derived quantity."""
        assert result.worst_case_margin == pytest.approx(
            WORST_CASE_MARGIN, abs=0.005
        )

    def test_headroom_plus_droop_accounts_for_guardband(self, result):
        """Undervolt headroom + the virus's own droop ≈ the guardband:
        the virus eats most of the margin, undervolting finds the rest."""
        total = result.failing_undervolt + result.virus_droop_fraction
        assert total == pytest.approx(result.worst_case_margin, abs=0.015)

    def test_failure_is_reached(self, result):
        assert result.min_voltages[-1] < CRITICAL_VOLTAGE
        assert np.all(result.min_voltages[:-1] >= CRITICAL_VOLTAGE)

    def test_min_voltage_decreases_with_undervolt(self, result):
        assert np.all(np.diff(result.min_voltages) < 0)

    def test_headroom_is_meaningful_but_limited(self, result):
        """Some undervolt is safe (margins are conservative), but far less
        than the full guardband (the virus claims the rest)."""
        assert 0.01 <= result.headroom <= 0.12
        assert result.headroom < result.worst_case_margin

    def test_nominal_set_point_first(self, result):
        assert result.set_points[0] == pytest.approx(NOMINAL_VOLTAGE)


class TestValidation:
    def test_bad_step(self):
        with pytest.raises(ConfigurationError):
            undervolt_to_failure(step=0)

    def test_bad_ceiling(self):
        with pytest.raises(ConfigurationError):
            undervolt_to_failure(max_undervolt=0.9)

    def test_unreachable_failure_raises(self):
        with pytest.raises(SimulationError):
            undervolt_to_failure(
                n_cycles=20_000, critical_voltage=0.5, max_undervolt=0.02
            )
