"""Worst-case margin discovery by undervolting (Sec. II-C).

The paper: "In order to determine this value, we progressively undervolt
the processor while maintaining its clock frequency.  This ultimately
forces the processor into a functional error, which we detect when the
processor fails stress-testing under multiple copies of the power virus."

The simulator's version: the chip's critical path fails whenever the
instantaneous die voltage falls below :data:`CRITICAL_VOLTAGE` (the supply
at which the critical path no longer closes timing at 1.86 GHz — see the
ring-oscillator model for why frequency collapses near threshold).  The
experiment lowers the regulator set-point step by step while both cores
run the phase-locked power virus, and finds the first set-point whose
worst droop dips below the critical voltage.

Two numbers fall out:

* the **undervolt headroom** — how far below nominal the set-point can go
  before the virus kills the machine (small: the virus's own droop eats
  most of the guardband);
* the **worst-case operating margin** — ``(Vnom − V_crit)/Vnom``, the
  guardband the shipped part actually carries; the reproduction's
  ``WORST_CASE_MARGIN = 14 %`` constant is *this derived quantity*, not an
  assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.pdn import platform

#: Supply voltage below which the critical path misses timing at the
#: shipped 1.86 GHz clock.  1.118 V = 86 % of the 1.30 V nominal — the
#: complement of the 14 % guardband the paper measures.
CRITICAL_VOLTAGE = 1.118


@dataclass(frozen=True)
class UndervoltResult:
    """Outcome of one undervolting campaign."""

    config_name: str
    failing_undervolt: float
    virus_droop_fraction: float
    worst_case_margin: float
    set_points: np.ndarray
    min_voltages: np.ndarray

    @property
    def headroom(self) -> float:
        """Largest safe undervolt below nominal (fraction)."""
        return max(0.0, self.failing_undervolt)


def _virus_current(n_cycles: int) -> np.ndarray:
    """Chip current under two phase-locked power-virus copies."""
    from repro.uarch.core import Core
    from repro.workloads.virus import PowerVirus

    core = Core()
    virus = PowerVirus()
    window = virus.sample_window(n_cycles)
    activity = core.realize_activity(window)
    per_core = core.current_from_activity(activity)
    return 2.0 * per_core + 2.0  # both cores + uncore


def _min_voltage_volt(
    config: str,
    current: np.ndarray,
    supply_volt: float,
    with_ripple: bool,
    seed: int,
) -> Tuple[float, float]:
    """Worst instantaneous die voltage at one regulator set-point.

    Returns ``(min voltage in volts, max droop fraction)``.  Kept as a
    module-level seam: the walk, the bisection refinement and the
    non-monotone guard all probe through this one function, and the
    guard's tests monkeypatch it to fake a misbehaving PDN.
    """
    parameters = platform.PlatformParameters(nominal_voltage=supply_volt)
    simulator = platform.build_simulator(
        config, parameters, with_ripple=with_ripple
    )
    trace = simulator.simulate(current, seed=seed, include_ripple=with_ripple)
    return float(trace.samples.min()), float(trace.max_droop_fraction())


def undervolt_to_failure(
    config: str = "Proc100",
    n_cycles: int = 60_000,
    step: float = 0.005,
    max_undervolt: float = 0.12,
    critical_voltage: float = CRITICAL_VOLTAGE,
    with_ripple: bool = True,
    seed: int = 0,
    refine_steps: int = 0,
) -> UndervoltResult:
    """Walk the regulator set-point down until the virus causes failure.

    Parameters
    ----------
    config:
        Decap configuration under test.
    step:
        Undervolt granularity (fraction of nominal per step).
    max_undervolt:
        Search ceiling; exceeded means the model never failed (an error —
        the virus should always be able to kill the machine eventually).
    refine_steps:
        Bisection iterations sharpening the failure edge inside the last
        coarse step.  ``0`` (the default) keeps the classic coarse walk.
        Refinement needs a safe bracket: if the very first set-point
        already fails (bracket exhaustion) the coarse answer — zero
        headroom — is returned unrefined.

    The walk also guards the model's own physics: with a fixed current
    profile the PDN is linear, so the worst die voltage must fall
    strictly as the set-point falls.  A non-monotone response means the
    simulator is mis-configured and raises
    :class:`~repro.errors.SimulationError` rather than reporting a
    margin measured on broken physics.
    """
    if step <= 0:
        raise ConfigurationError("step must be positive")
    if not 0 < max_undervolt < 0.5:
        raise ConfigurationError("max_undervolt must be in (0, 0.5)")
    if refine_steps < 0:
        raise ConfigurationError("refine_steps must be >= 0")
    current = _virus_current(n_cycles)
    nominal = platform.NOMINAL_VOLTAGE

    set_points = []
    minima = []
    failing = None
    virus_droop = None
    undervolt = 0.0
    while undervolt <= max_undervolt + 1e-12:
        supply = nominal * (1.0 - undervolt)
        v_min, droop = _min_voltage_volt(
            config, current, supply, with_ripple, seed
        )
        if minima and v_min >= minima[-1]:
            raise SimulationError(
                f"non-monotone droop response: lowering the set-point to "
                f"{supply:.4f} V raised the worst die voltage "
                f"({v_min:.4f} V >= {minima[-1]:.4f} V); the PDN model "
                "is mis-configured"
            )
        set_points.append(supply)
        minima.append(v_min)
        if virus_droop is None:  # first iteration: nominal set-point
            virus_droop = droop
        if v_min < critical_voltage:
            failing = undervolt
            break
        undervolt += step
    if failing is None:
        raise SimulationError(
            "virus stress never failed within the undervolt ceiling; "
            "the critical voltage is miscalibrated"
        )
    if refine_steps and failing > 0.0:
        failing = _refine_failing_edge(
            config, current, failing - step, failing, critical_voltage,
            with_ripple, seed, refine_steps,
        )
    return UndervoltResult(
        config_name=config,
        failing_undervolt=failing,
        virus_droop_fraction=float(virus_droop),
        worst_case_margin=(nominal - critical_voltage) / nominal,
        set_points=np.array(set_points),
        min_voltages=np.array(minima),
    )


def _refine_failing_edge(
    config: str,
    current: np.ndarray,
    safe_undervolt: float,
    failing_undervolt: float,
    critical_voltage: float,
    with_ripple: bool,
    seed: int,
    refine_steps: int,
) -> float:
    """Bisect the (safe, failing) bracket down to a sharper failure edge.

    Probes go through :func:`_min_voltage_volt` like the coarse walk,
    but are *not* appended to the result's ``set_points``/
    ``min_voltages`` arrays — those record the monotone coarse walk the
    plots and regression pins expect.
    """
    nominal = platform.NOMINAL_VOLTAGE
    for _ in range(refine_steps):
        probe = 0.5 * (safe_undervolt + failing_undervolt)
        v_min, _ = _min_voltage_volt(
            config, current, nominal * (1.0 - probe), with_ripple, seed
        )
        if v_min < critical_voltage:
            failing_undervolt = probe
        else:
            safe_undervolt = probe
    return failing_undervolt
