"""Known bug: records are aggregated in worker-completion order.

``as_completed`` yields whichever worker finishes first, so the
accumulated list depends on host load and ``--jobs N``.  Aggregation
must follow spec order for campaigns to stay bit-identical.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import List


def droop_record(index: int) -> float:
    return 0.05 * index


def run_unordered_suite(indices: List[int]) -> List[float]:
    results: List[float] = []
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(droop_record, i) for i in indices]
        for future in as_completed(futures):  # expect: TNT004
            results.append(future.result())
    return results
