"""Unit tests for the droop-depth tail model."""

import numpy as np
import pytest

from repro.errors import CalibrationError, MeasurementError
from repro.measurement.droops import DroopStatistics
from repro.measurement.tail import DroopTailModel


def stats_from_depths(depths, n_cycles=1_000_000, threshold=0.01):
    depths = np.asarray(depths, dtype=float)
    return DroopStatistics(
        depths=depths,
        durations=np.full(depths.size, 10, dtype=int),
        n_cycles=n_cycles,
        threshold=threshold,
    )


class TestFitting:
    def test_recovers_exponential_scale(self):
        rng = np.random.default_rng(0)
        beta_true = 0.01
        depths = 0.012 + rng.exponential(beta_true, size=5000)
        model = DroopTailModel(stats_from_depths(depths))
        assert model.beta == pytest.approx(beta_true, rel=0.15)

    def test_empirical_region_used_when_well_sampled(self):
        rng = np.random.default_rng(1)
        depths = 0.012 + rng.exponential(0.01, size=5000)
        stats = stats_from_depths(depths)
        model = DroopTailModel(stats)
        margin = 0.02
        assert model.rate(margin) == pytest.approx(
            stats.event_rate(margin), rel=1e-9
        )

    def test_extrapolation_monotone_decreasing(self):
        rng = np.random.default_rng(2)
        depths = 0.012 + rng.exponential(0.008, size=2000)
        model = DroopTailModel(stats_from_depths(depths))
        margins = np.linspace(0.02, 0.13, 30)
        rates = model.rates(margins)
        assert np.all(np.diff(rates) <= 1e-15)
        assert rates[-1] < rates[0]

    def test_deep_margin_rate_is_tiny(self):
        rng = np.random.default_rng(3)
        depths = 0.012 + rng.exponential(0.004, size=1000)
        model = DroopTailModel(stats_from_depths(depths))
        assert model.rate(0.14) < model.rate(0.03) * 1e-3

    def test_few_events_fallback(self):
        model = DroopTailModel(stats_from_depths([0.03, 0.04]))
        # Still answers, steeply decaying.
        assert model.rate(0.05) < model.rate(0.03)

    def test_no_events_fallback(self):
        model = DroopTailModel(stats_from_depths([]))
        assert model.rate(0.05) < 1e-6

    def test_validation(self):
        with pytest.raises(MeasurementError):
            DroopTailModel(stats_from_depths([0.03], n_cycles=0))
        model = DroopTailModel(stats_from_depths([0.03] * 100))
        with pytest.raises(CalibrationError):
            model.rate(0.0)
