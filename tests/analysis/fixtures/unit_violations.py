"""Fixture: unit-safety violations (UNI001-UNI002).

Never imported — parsed by simlint only.  ``# expect: CODE`` markers are
collected by tests/analysis/test_rules.py.
"""

from __future__ import annotations

from repro import units

RISE_TIME_SECONDS = 1e-6  # expect: UNI001
SENSE_NOISE_VOLTS = 0.0004  # expect: UNI001
BULK_CAP_FARADS = 22 * units.MICRO_FARAD  # ok: units constant
STEP_SECONDS = 600.0  # ok: plain base-unit magnitude


def simulate(
    dt_seconds: float = 5e-10,  # expect: UNI001
    bandwidth_hz: float = 1.5e9,  # expect: UNI001
    duration_seconds: float = 60.0,  # ok: plain magnitude
) -> float:
    esr_ohms = 18e-3  # expect: UNI001
    return dt_seconds * bandwidth_hz * duration_seconds * esr_ohms


def call_site() -> float:
    return simulate(dt_seconds=2e-10)  # expect: UNI001


def manual_conversion(delay_seconds: float) -> float:
    return delay_seconds * 1e9  # expect: UNI002


def units_conversion(delay_seconds: float) -> float:
    return delay_seconds / units.NANO_SECOND  # ok: units constant
