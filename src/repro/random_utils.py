"""Deterministic random-number helpers.

Every stochastic component in the library accepts either a seed or an
existing :class:`numpy.random.Generator`.  :func:`as_generator` normalizes
the two so call sites stay simple, and :func:`derive_generator` creates
independent child streams so that, e.g., two cores of a chip draw event
jitter from decorrelated sequences even when the chip was seeded with a
single integer.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

_DEFAULT_SEED = 0xC0DE


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` maps to a fixed library-wide default so that un-seeded runs
    are still reproducible; pass an explicit generator for shared state.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _DEFAULT_SEED
    return np.random.default_rng(seed)


def derive_generator(parent: SeedLike, *keys: object) -> np.random.Generator:
    """Derive an independent child generator from ``parent`` and ``keys``.

    The child stream is a deterministic function of the parent seed material
    and the (stringified) keys, so ``derive_generator(7, "core", 0)`` always
    yields the same stream regardless of how much entropy the parent has
    already consumed.
    """
    if isinstance(parent, np.random.Generator):
        # Fold the parent's bit generator state into new entropy.
        base = int(parent.integers(0, 2**63 - 1))
    elif parent is None:
        base = _DEFAULT_SEED
    else:
        base = int(parent)
    material = [base] + [_stable_key(k) for k in keys]
    seq = np.random.SeedSequence(material)
    return np.random.default_rng(seq)


def seed_fingerprint(seed: SeedLike) -> Union[int, None]:
    """Canonical integer identity of a seed, or ``None`` if it has none.

    Two seeds with the same fingerprint produce identical derived streams
    from :func:`derive_generator`: ``None`` collapses to the library-wide
    default, integers map to themselves.  A live
    :class:`numpy.random.Generator` has *state*, not identity — deriving
    from it consumes entropy, so results depend on call order.  Such seeds
    return ``None`` and callers (the campaign executor, the result cache)
    must disable persistent caching and process fan-out for them.
    """
    if isinstance(seed, np.random.Generator):
        return None
    if seed is None:
        return _DEFAULT_SEED
    return int(seed)


def _stable_key(key: object) -> int:
    """Map an arbitrary key to a stable non-negative integer."""
    if isinstance(key, (int, np.integer)):
        return int(key) & 0x7FFFFFFF
    text = str(key)
    # FNV-1a: stable across processes (unlike the builtin ``hash``).
    acc = 0x811C9DC5
    for ch in text.encode("utf-8"):
        acc ^= ch
        acc = (acc * 0x01000193) & 0xFFFFFFFF
    return acc
