"""Fig. 4 — platform impedance profiles (measured vs capacitor-depleted).

Paper: the stock profile peaks in the 100-200 MHz resonance band; between
1 and 10 MHz a capacitor-depleted package shows around 5x the stock
impedance.  The measurement is reconstructed with the current-modulating
software loop rather than VTT tooling; we run both that loop-based
reconstruction and the analytic sweep and report their agreement.
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.experiments.common import ExperimentResult
from repro.pdn.impedance import ImpedanceProfile
from repro.pdn.platform import (
    CLOCK_FREQUENCY_HZ,
    build_network,
    build_simulator,
)
from repro.uarch.core import Core
from repro.workloads.virus import SteppedCurrentLoop


def loop_reconstructed_impedance(
    frequencies_hz: np.ndarray,
    config: str = "Proc100",
    n_cycles: int = 120_000,
) -> np.ndarray:
    """|Z(f)| reconstructed from the software current loop (Sec. II-A).

    For each loop frequency, run the high/low-current loop, divide the
    voltage response amplitude at the fundamental by the current
    amplitude at the fundamental (lock-in style).
    """
    simulator = build_simulator(config, with_ripple=False)
    core = Core()
    magnitudes = np.empty(frequencies_hz.size)
    for i, frequency in enumerate(frequencies_hz):
        loop = SteppedCurrentLoop(
            frequency_hz=float(frequency), clock_hz=CLOCK_FREQUENCY_HZ
        )
        window = loop.sample_window(n_cycles)
        execution = core.execute(window)
        current = execution.current_amps
        trace = simulator.simulate(current, include_ripple=False)
        # Lock-in at the loop's *realized* fundamental (the loop rounds
        # its period to whole cycles), over an integer number of periods
        # and skipping the first few periods while the PDN settles —
        # otherwise spectral leakage corrupts the estimate.
        period = loop.period_cycles
        skip = min(4 * period, n_cycles // 4)
        usable = ((n_cycles - skip) // period) * period
        if usable < period:
            magnitudes[i] = np.nan
            continue
        sl = slice(skip, skip + usable)
        t = np.arange(usable)
        phase = np.exp(-2j * np.pi * t / period)
        v_amp = np.abs((trace.samples[sl] * phase).mean()) * 2
        i_amp = np.abs((current[sl] * phase).mean()) * 2
        magnitudes[i] = v_amp / i_amp if i_amp > 0 else np.nan
    return magnitudes


def run(quick: bool = False) -> ExperimentResult:
    stock = ImpedanceProfile.from_network(build_network("Proc100"), label="Proc100")
    depleted = ImpedanceProfile.from_network(build_network("Proc3"), label="Proc3")
    result = ExperimentResult(
        experiment_id="Fig. 4",
        title="Impedance profile: stock vs reduced package capacitance",
        columns=("frequency (MHz)", "Proc100 (mOhm)", "Proc3 (mOhm)", "ratio"),
    )
    probe_freqs = np.logspace(5, 8.8, 10 if quick else 20)
    for f in probe_freqs:
        z_stock = stock.at(float(f))
        z_depl = depleted.at(float(f))
        result.add_row(f / 1e6, z_stock * 1e3, z_depl * 1e3, z_depl / z_stock)

    peak = stock.peak()
    result.series["stock"] = stock
    result.series["depleted"] = depleted
    result.series["resonance_hz"] = peak.frequency_hz
    result.series["ratio_1mhz"] = depleted.ratio_to(stock, 1e6)

    # Loop-based reconstruction at a few spot frequencies (validation of
    # the software methodology against the analytic ladder).
    loop_freqs = np.array([3e5, 1e6, 3e6, 1e7]) if quick else np.logspace(
        5.3, 7.5, 8
    )
    reconstructed = loop_reconstructed_impedance(
        loop_freqs, n_cycles=60_000 if quick else 120_000
    )
    analytic = np.array([stock.at(float(f)) for f in loop_freqs])
    result.series["loop_frequencies_hz"] = loop_freqs
    result.series["loop_reconstructed_ohm"] = reconstructed
    result.series["loop_analytic_ohm"] = analytic
    result.notes.append(
        f"stock resonance at {peak.frequency_hz / units.MEGA_HERTZ:.0f} MHz "
        "(paper: 100-200 MHz band)"
    )
    result.notes.append(
        f"Proc3/Proc100 at 1 MHz = {result.series['ratio_1mhz']:.1f}x "
        "(paper: ~5x with reduced caps)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
