"""Project-wide dataflow analysis for simlint (the ``--flow`` engine).

Where :mod:`repro.analysis.engine` pattern-matches one line at a time,
this package understands the *program*: it builds a cross-module symbol
table and call graph for the analyzed tree
(:mod:`repro.analysis.flow.symbols`), runs an abstract-interpretation
pass assigning every expression a physical dimension
(:mod:`repro.analysis.flow.inference` over the algebra in
:mod:`repro.analysis.flow.dimensions`), and runs a second pass tracking
seed provenance and executor-payload picklability
(:mod:`repro.analysis.flow.concurrency`).  Two rule families ride on it:

* ``DIM001``–``DIM004`` — dimensional errors: volts added to amps, an
  inductance passed for a ``c_farads`` parameter, a dimensionless ratio
  bound to ``margin_volts``, a ``*_hertz`` function returning seconds;
* ``CON001``–``CON003`` — concurrency-safety errors around the
  :class:`~repro.measurement.executor.CampaignExecutor` fan-out: RNG
  streams not derived from the run's seed on a worker path, unpicklable
  payloads, module-global writes from worker-reachable code.

Programmatic use::

    from repro.analysis.flow import flow_paths
    findings = flow_paths(["src/repro"])

Results are ordinary :class:`repro.analysis.findings.Finding` objects, so
text/JSON/SARIF reporting, baselines, and ``# simlint: disable``
suppressions all apply unchanged.
"""

from __future__ import annotations

from repro.analysis.flow.dimensions import (
    AMPERE,
    DIMENSIONLESS,
    FARAD,
    HENRY,
    HERTZ,
    OHM,
    SECOND,
    VOLT,
    WATT,
    Dim,
    dim_for_name,
    parse_dim,
)
from repro.analysis.flow.engine import flow_paths, flow_sources

__all__ = [
    "AMPERE",
    "DIMENSIONLESS",
    "Dim",
    "FARAD",
    "HENRY",
    "HERTZ",
    "OHM",
    "SECOND",
    "VOLT",
    "WATT",
    "dim_for_name",
    "flow_paths",
    "flow_sources",
    "parse_dim",
]
