"""A single core: execution window in, activity/current/counters out.

The current model is a two-time-constant refinement of the standard
activity-proportional decomposition:

    I_core(t) = I_leak + I_dyn * (w_fast * a(t) + (1 - w_fast) * ema(a)(t))

Unit-level clock gating reacts within a cycle but only covers part of the
dynamic power (``w_fast``); the remainder — domain gating, cache banks,
thermal-throttle-scale effects — follows activity through a slower
exponential moving average.  Single-cycle pipeline flushes therefore move a
few amps (small, sharp die-resonance kicks — the microbenchmark swings of
Fig. 12), while sustained stalls and program phase changes eventually swing
the full dynamic budget (the larger package-band droops that full
benchmarks exhibit in Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy import signal

from repro.errors import ConfigurationError
from repro.uarch.activity import synthesize_activity
from repro.uarch.counters import (
    STALL_ACTIVITY_THRESHOLD,
    PerformanceCounters,
)
from repro.uarch.events import EventTrace, StallEvent
from repro.uarch.window import ExecutionWindow


@dataclass(frozen=True)
class CoreParameters:
    """Electrical parameters of one core.

    Calibrated so that two fully active cores plus uncore approach the
    chip's ~44 A ceiling while an idling machine draws single-digit amps
    (65 W-class TDP at 1.3 V).
    """

    leakage_amps: float = 2.2
    dynamic_max_amps: float = 18.0
    #: Fraction of dynamic current gated within a cycle (unit-level gating).
    fast_fraction: float = 0.32
    #: Time constant (cycles) of the slow gating component.
    gating_tau_cycles: float = 250.0

    def __post_init__(self) -> None:
        if self.leakage_amps < 0:
            raise ConfigurationError("leakage_amps must be non-negative")
        if self.dynamic_max_amps <= 0:
            raise ConfigurationError("dynamic_max_amps must be positive")
        if not 0 < self.fast_fraction <= 1:
            raise ConfigurationError("fast_fraction must be in (0, 1]")
        if self.gating_tau_cycles <= 0:
            raise ConfigurationError("gating_tau_cycles must be positive")


@dataclass(frozen=True)
class CoreExecution:
    """The realized execution of one window on one core."""

    activity: np.ndarray
    current_amps: np.ndarray
    counters: PerformanceCounters
    label: str = ""

    @property
    def n_cycles(self) -> int:
        return int(self.activity.size)


class Core:
    """Executes :class:`~repro.uarch.window.ExecutionWindow` objects.

    Parameters
    ----------
    parameters:
        Electrical calibration of this core.
    core_id:
        Identifier used in reports.
    """

    def __init__(
        self,
        parameters: CoreParameters | None = None,
        core_id: int = 0,
    ) -> None:
        self._parameters = parameters or CoreParameters()
        self._core_id = int(core_id)
        self._ema_zi_unit: Optional[np.ndarray] = None

    @property
    def parameters(self) -> CoreParameters:
        return self._parameters

    @property
    def core_id(self) -> int:
        return self._core_id

    def realize_activity(self, window: ExecutionWindow) -> np.ndarray:
        """Per-cycle activity with event envelopes applied (no current)."""
        return synthesize_activity(window.baseline_activity, window.events)

    def current_from_activity(self, activity: np.ndarray) -> np.ndarray:
        """Two-time-constant gating: activity series → current series.

        Accepts a 1-D series or a 2-D batch of series (one per row, the
        cycle axis last); a batch runs the slow-gating EMA as a single
        ``lfilter`` call over all rows, bit-identical per row to the
        1-D path.
        """
        params = self._parameters
        if params.fast_fraction >= 1.0:
            effective = activity
        else:
            # Exponential moving average: x[t] = (1-a) x[t-1] + a u[t],
            # initialized at the window's first activity value.  The
            # initial condition is linear in that value, so one unit
            # ``lfiltic`` scaled per row seeds the whole batch.
            alpha = 1.0 - np.exp(-1.0 / params.gating_tau_cycles)
            if self._ema_zi_unit is None:
                self._ema_zi_unit = signal.lfiltic(
                    [alpha], [1.0, -(1.0 - alpha)], [1.0]
                )
            zi = self._ema_zi_unit * activity[..., :1]
            slow, _ = signal.lfilter(
                [alpha], [1.0, -(1.0 - alpha)], activity, axis=-1, zi=zi
            )
            effective = (
                params.fast_fraction * activity
                + (1.0 - params.fast_fraction) * slow
            )
        return params.leakage_amps + params.dynamic_max_amps * effective

    def finalize(
        self, window: ExecutionWindow, activity: np.ndarray
    ) -> CoreExecution:
        """Build the execution record from (possibly adjusted) activity.

        The chip may adjust realized activity for shared-resource coupling
        before currents and counters are derived.
        """
        return CoreExecution(
            activity=activity,
            current_amps=self.current_from_activity(activity),
            counters=self._count(window, activity),
            label=window.label,
        )

    def finalize_batch(
        self,
        windows: Sequence[ExecutionWindow],
        activities: np.ndarray,
        currents: Optional[np.ndarray] = None,
    ) -> List[CoreExecution]:
        """Finalize one window per row of an activity matrix.

        One batched EMA filter derives every row's current at once
        (unless precomputed ``currents`` rows are supplied); counters
        are exact integer/sum reductions per row, so each returned
        execution is bit-identical to :meth:`finalize` on that row.
        """
        activities = np.asarray(activities, dtype=float)
        if currents is None:
            currents = self.current_from_activity(activities)
        return [
            CoreExecution(
                activity=activities[i],
                current_amps=currents[i],
                counters=self._count(windows[i], activities[i]),
                label=windows[i].label,
            )
            for i in range(len(windows))
        ]

    def execute(self, window: ExecutionWindow) -> CoreExecution:
        """Realize a window in isolation (no cross-core coupling)."""
        return self.finalize(window, self.realize_activity(window))

    def _count(
        self, window: ExecutionWindow, activity: np.ndarray
    ) -> PerformanceCounters:
        """Populate the counter file from realized activity."""
        # A cycle is stalled when realized activity falls below half of
        # what the program would have sustained without the event.
        reference = np.maximum(window.baseline_activity, 1e-9)
        stalled = activity < STALL_ACTIVITY_THRESHOLD * reference
        instructions = float(
            window.base_ipc * np.minimum(activity, 1.0).sum()
        )
        occurrences = EventTrace.coerce(window.events).counts()
        counts = {
            event: occurrences[event]
            for event in StallEvent
            if occurrences[event]
        }
        return PerformanceCounters(
            cycles=window.n_cycles,
            instructions=instructions,
            stall_cycles=int(stalled.sum()),
            event_counts=counts,
        )
