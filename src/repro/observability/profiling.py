"""Profiling views over a recorded trace: stage tables and hot spots.

These are *presentation* helpers — they read a finished
:class:`~repro.observability.spans.Tracer` (or the session wrapping it)
and aggregate durations.  Everything here describes wall time, i.e. the
non-deterministic half of the telemetry; counts and structure come from
the trace itself and stay bit-stable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.observability.spans import SpanRecord, Tracer
from repro.units import MILLI

#: Format marker for the machine-readable stage-profile export.
PROFILE_SCHEMA = "repro-stage-profile"
PROFILE_SCHEMA_VERSION = 1

#: Every span name the runtime can emit, by exact name.  Consumers that
#: join a *measured* profile against static analysis (``simlint
#: hotspots``) validate against this catalog so a profile written by a
#: different build fails with a clear message instead of a silent
#: mis-join.  Keep in sync with the ``obs.span(...)`` call sites.
SPAN_CATALOG = frozenset({
    "arena.run",
    "campaign.batch",
    "campaign.build",
    "chip.run",
    "oracle.prefetch",
    "pdn.simulate",
    "pool.rebuild",
    "recovery.evaluate",
    "run.fallback",
    "run.retry",
    "run.simulate",
    "scheduler.evaluate",
    "scheduler.interval",
    "undervolt.probe",
    "undervolt.sweep",
})

#: Dynamic span families: names formed from runtime values (one span
#: per experiment alias) share a fixed prefix.
SPAN_NAME_PREFIXES = ("experiment.",)


def is_known_stage(name: str) -> bool:
    """Is ``name`` a span the current build can emit?"""
    return name in SPAN_CATALOG or name.startswith(SPAN_NAME_PREFIXES)


def unknown_stages(rows: List["StageRow"]) -> List[str]:
    """Profile stage names absent from the current span catalog."""
    return sorted({row.name for row in rows if not is_known_stage(row.name)})


@dataclass(frozen=True)
class StageRow:
    """Aggregate timing for every span sharing one name."""

    name: str
    count: int
    total_seconds: float
    mean_seconds: float
    max_seconds: float


@dataclass(frozen=True)
class HotSpan:
    """One of the slowest spans of a given name (usually a run)."""

    name: str
    label: str
    duration_seconds: float


def stage_table(tracer: Tracer) -> List[StageRow]:
    """Per-stage timing rows, sorted by total wall time (descending).

    "Stage" means span name: all ``pdn.simulate`` spans aggregate into
    one row regardless of where in the tree they sit.  Ties sort by
    name so the table is stable when timings collapse to zero.
    """
    totals: dict = {}
    for record in tracer.walk():
        entry = totals.setdefault(record.name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += record.duration_seconds
        entry[2] = max(entry[2], record.duration_seconds)
    rows = [
        StageRow(
            name=name,
            count=count,
            total_seconds=total,
            mean_seconds=total / count,
            max_seconds=peak,
        )
        for name, (count, total, peak) in totals.items()
    ]
    rows.sort(key=lambda row: (-row.total_seconds, row.name))
    return rows


def stage_profile_payload(tracer: Tracer) -> Dict[str, Any]:
    """JSON-ready, schema-versioned dump of :func:`stage_table`.

    This is what ``--profile-stages FILE`` writes and what
    ``simlint hotspots`` reads back: span names and counts are
    deterministic (jobs-invariant) structure; the ``*_seconds`` fields
    are measured wall time and vary run to run.
    """
    return {
        "schema": PROFILE_SCHEMA,
        "version": PROFILE_SCHEMA_VERSION,
        "stages": [
            {
                "name": row.name,
                "count": row.count,
                "total_seconds": row.total_seconds,
                "mean_seconds": row.mean_seconds,
                "max_seconds": row.max_seconds,
            }
            for row in stage_table(tracer)
        ],
    }


def parse_stage_profile(payload: Dict[str, Any]) -> List[StageRow]:
    """Rows back out of a :func:`stage_profile_payload` dict.

    Raises ``ValueError`` on a foreign or future-versioned payload so a
    stale file fails loudly instead of producing an empty report.
    """
    if not isinstance(payload, dict) or payload.get("schema") != \
            PROFILE_SCHEMA:
        raise ValueError("not a repro stage-profile payload")
    version = payload.get("version")
    if version != PROFILE_SCHEMA_VERSION:
        raise ValueError(
            f"stage-profile version {version!r}; this reader expects "
            f"{PROFILE_SCHEMA_VERSION}"
        )
    try:
        return [
            StageRow(
                name=str(stage["name"]),
                count=int(stage["count"]),
                total_seconds=float(stage["total_seconds"]),
                mean_seconds=float(stage["mean_seconds"]),
                max_seconds=float(stage["max_seconds"]),
            )
            for stage in payload["stages"]
        ]
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed stage entry: {exc}") from None


def load_stage_profile(path: str) -> List[StageRow]:
    """Read and validate a stage-profile JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_stage_profile(json.load(handle))


def _span_label(record: SpanRecord) -> str:
    for key in ("run", "experiment", "config", "mechanism"):
        if key in record.metadata:
            return str(record.metadata[key])
    return "-"


def hottest_spans(
    tracer: Tracer, name: str = "run.simulate", limit: int = 10
) -> List[HotSpan]:
    """The ``limit`` slowest spans named ``name`` (top-N hottest specs)."""
    matches = [r for r in tracer.walk() if r.name == name]
    matches.sort(key=lambda r: (-r.duration_seconds, _span_label(r)))
    return [
        HotSpan(
            name=record.name,
            label=_span_label(record),
            duration_seconds=record.duration_seconds,
        )
        for record in matches[:limit]
    ]


def format_stage_table(rows: List[StageRow]) -> str:
    """Fixed-width text rendering of :func:`stage_table` output."""
    if not rows:
        return "(no spans recorded)"
    headers = ("stage", "count", "total s", "mean ms", "max ms")
    cells: List[Tuple[str, ...]] = [
        (
            row.name,
            str(row.count),
            f"{row.total_seconds:.3f}",
            f"{row.mean_seconds / MILLI:.2f}",
            f"{row.max_seconds / MILLI:.2f}",
        )
        for row in rows
    ]
    widths = [
        max(len(headers[i]), max(len(row[i]) for row in cells))
        for i in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_hottest(spans: List[HotSpan]) -> str:
    """Text rendering of :func:`hottest_spans` output."""
    if not spans:
        return "(no matching spans)"
    width = max(len(span.label) for span in spans)
    return "\n".join(
        f"{span.label.ljust(width)}  {span.duration_seconds / MILLI:8.2f} ms"
        for span in spans
    )
