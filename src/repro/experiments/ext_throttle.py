"""Extension — emergency-prevention throttling: open-loop vs closed-loop.

The paper's recovery-cost axis includes a ~100-cycle scheme built on
emergency *prediction* (Reddi et al., HPCA'09), and its related work
covers a-priori current ramping (Powell et al.).  This experiment builds
both actuation styles on the simulator and compares them on the noisy
Proc3 node:

* **open-loop ramping** (:class:`~repro.core.predictor.EmergencyPredictor`)
  slew-limits every refill edge after a deep activity drop — blind to the
  actual supply state;
* **closed-loop guided throttling**
  (:class:`~repro.core.predictor.VoltageGuidedThrottle`) co-simulates the
  PDN and engages only while the sensed voltage sits inside an arming
  band above the operating margin.

Finding: open-loop ramping is ruinously expensive — the workloads' burst
cadence sits at the package resonance, so smoothing *every* edge costs
tens of percent of throughput.  The closed-loop throttle removes more
droop events at roughly a quarter of that cost, which is why the
literature pairs prediction with voltage awareness rather than ramping
blindly.
"""

from __future__ import annotations

import numpy as np

from repro.core.predictor import (
    EmergencyPredictor,
    ThrottleParameters,
    VoltageGuidedThrottle,
)
from repro.experiments.common import ExperimentResult
from repro.measurement.droops import CHARACTERIZATION_MARGIN, detect_droops
from repro.pdn.platform import CLOCK_PERIOD_S, DEFAULT_PARAMETERS
from repro.pdn.simulate import VoltageTrace
from repro.uarch.chip import Chip
from repro.uarch.core import Core
from repro.workloads.microbenchmarks import IdleLoop
from repro.workloads.spec import spec_benchmark

BENCHMARKS = ("lbm", "libquantum", "mcf", "sphinx")

#: Open-loop ramping aggressive enough to touch the package band.
OPEN_LOOP = ThrottleParameters(
    arm_drop=0.2, drop_window=300, slew_per_cycle=0.0015, hold_cycles=2500
)


def run(quick: bool = False, config: str = "Proc3") -> ExperimentResult:
    n_cycles = 20_000 if quick else 30_000
    repeats = 2 if quick else 3
    chip = Chip(config, with_ripple=True, slack_coupling=0.0)
    core = Core()
    idle = IdleLoop()
    nominal = chip.nominal_voltage
    open_loop = EmergencyPredictor(OPEN_LOOP)
    closed_loop = VoltageGuidedThrottle(chip)
    passthrough = VoltageGuidedThrottle(
        chip, arm_margin=0.5, slew_per_cycle=1.0, hold_cycles=1
    )

    def events(voltage: np.ndarray) -> float:
        trace = VoltageTrace(voltage, CLOCK_PERIOD_S, nominal)
        return 1000.0 * detect_droops(trace).event_rate(
            CHARACTERIZATION_MARGIN
        )

    rows = {"raw": [], "open": [], "closed": []}
    losses = {"open": [], "closed": []}
    for name in BENCHMARKS:
        per_mode = {"raw": [], "open": [], "closed": []}
        per_loss = {"open": [], "closed": []}
        for rep in range(repeats):
            window = spec_benchmark(name).sample_window(n_cycles, rng=50 + rep)
            raw_activity = core.realize_activity(window)
            idle_activity = core.realize_activity(
                idle.sample_window(n_cycles, rng=60 + rep)
            )
            other = core.current_from_activity(idle_activity) + 2.0
            ripple = DEFAULT_PARAMETERS.vrm.ripple(
                n_cycles, CLOCK_PERIOD_S, nominal, seed=rep
            )
            raw = passthrough.run(raw_activity, other, ripple=ripple)
            per_mode["raw"].append(events(raw.voltage))

            ramped = open_loop.throttle(raw_activity)
            open_run = passthrough.run(ramped.activity, other, ripple=ripple)
            per_mode["open"].append(events(open_run.voltage))
            per_loss["open"].append(
                1.0
                - np.minimum(ramped.activity, 1.0).sum()
                / np.minimum(raw_activity, 1.0).sum()
            )

            guided = closed_loop.run(raw_activity, other, ripple=ripple)
            per_mode["closed"].append(events(guided.voltage))
            per_loss["closed"].append(
                guided.throughput_loss_fraction(raw_activity)
            )
        for key in rows:
            rows[key].append(float(np.mean(per_mode[key])))
        for key in losses:
            losses[key].append(float(np.mean(per_loss[key])))

    raw_mean = float(np.mean(rows["raw"]))
    result = ExperimentResult(
        experiment_id="Ext. C",
        title=f"Emergency-prevention throttling, open vs closed loop ({config})",
        columns=("scheme", "droop events/1K", "event reduction (%)",
                 "throughput loss (%)"),
    )
    result.add_row("no throttle", raw_mean, 0.0, 0.0)
    for key, label in (("open", "open-loop ramping"),
                       ("closed", "closed-loop guided")):
        mean_events = float(np.mean(rows[key]))
        result.add_row(
            label,
            mean_events,
            100 * (raw_mean - mean_events) / raw_mean,
            100 * float(np.mean(losses[key])),
        )
    result.series["raw_events"] = rows["raw"]
    result.series["open_events"] = rows["open"]
    result.series["closed_events"] = rows["closed"]
    result.series["open_loss"] = losses["open"]
    result.series["closed_loss"] = losses["closed"]
    result.notes.append(
        "open-loop ramping pays ~half the throughput (burst cadence sits "
        "on the package resonance); the voltage-guided throttle removes "
        "more events at roughly a quarter of that cost"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=True).format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
