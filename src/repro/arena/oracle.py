"""Exhaustive oracle baseline: the best partition the oracle can see.

The paper's policies are heuristics over oracle data; this module
computes the actual optimum — the partition of the pool minimizing mean
droop rate — by enumerating every partition (small pools only), so each
arena scorecard can report *regret*: how far the heuristic's droop
overhead sits above the best achievable placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.arena.schedule import Schedule, group_sizes
from repro.core.scheduler import Group, GroupOracle
from repro.errors import SchedulingError

#: Registry key reserved for the exhaustive baseline (not a policy).
ORACLE_KEY = "oracle-exhaustive"

#: Partitions examined before the search gives up and regret is reported
#: as unavailable.  945 covers 10 programs on 2 cores; 11!/… pools larger
#: than ~12 programs blow past any sensible budget.
DEFAULT_SEARCH_LIMIT = 50_000


@dataclass(frozen=True)
class OracleBaseline:
    """Outcome of one exhaustive partition search."""

    schedule: Schedule
    droops_per_1k: float
    partitions_searched: int


def iter_partitions(
    programs: Sequence[str], n_cores: int
) -> Iterator[Tuple[Group, ...]]:
    """Every partition of the pool into canonical group sizes.

    Each partition is emitted exactly once, groups sorted: the smallest
    unplaced program always leads the next group, so no permutation of
    groups or members is ever revisited.
    """
    pool = tuple(sorted(programs))
    if len(set(pool)) != len(pool):
        raise SchedulingError("partition pools must not repeat programs")
    sizes: Dict[int, int] = {}
    for size in group_sizes(len(pool), n_cores):
        sizes[size] = sizes.get(size, 0) + 1
    yield from _partitions(pool, sizes)


def _partitions(
    remaining: Tuple[str, ...], sizes: Dict[int, int]
) -> Iterator[Tuple[Group, ...]]:
    if not remaining:
        yield ()
        return
    leader, rest = remaining[0], remaining[1:]
    for size in sorted(sizes):
        if sizes[size] == 0:
            continue
        sizes[size] -= 1
        for members in combinations(range(len(rest)), size - 1):
            group = (leader,) + tuple(rest[i] for i in members)
            chosen = set(members)
            left = tuple(
                rest[i] for i in range(len(rest)) if i not in chosen
            )
            for tail in _partitions(left, sizes):
                yield (group,) + tail
        sizes[size] += 1


def exhaustive_baseline(
    programs: Sequence[str],
    n_cores: int,
    oracle: GroupOracle,
    limit: int = DEFAULT_SEARCH_LIMIT,
) -> Optional[OracleBaseline]:
    """The droop-minimal partition, or ``None`` past the search budget.

    Minimizes the mean droop rate over the partition's groups; ties keep
    the enumeration-order first (lexicographically smallest) partition,
    so the baseline is deterministic.  Distinct groups across partitions
    are few (sorted combinations), so the campaign memo makes the sweep
    cheap even though partitions number in the hundreds.
    """
    best_groups: Optional[Tuple[Group, ...]] = None
    best_droops = float("inf")
    searched = 0
    for partition in iter_partitions(programs, n_cores):
        searched += 1
        if searched > limit:
            return None
        droops: List[float] = [
            oracle.droop_metric(*group) for group in partition
        ]
        mean = float(np.mean(droops))
        if mean < best_droops:
            best_droops = mean
            best_groups = partition
    if best_groups is None:  # pragma: no cover - pools are validated
        raise SchedulingError("no partitions to search")
    schedule = Schedule(
        policy=ORACLE_KEY, n_cores=n_cores, groups=best_groups
    ).canonical()
    return OracleBaseline(
        schedule=schedule,
        droops_per_1k=best_droops,
        partitions_searched=searched,
    )
