"""Ablation: the IPC/Droop^n exponent across recovery costs.

Design choice under test: the paper proposes weighing droops more heavily
(larger n) on platforms with coarser recovery.  We score each exponent's
schedule by its modeled throughput including recovery overhead and check
that the best exponent shifts upward as recovery cost grows.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.policies import HybridPolicy
from repro.core.scheduler import BatchScheduler, PairOracle
from repro.experiments.context import QUICK_SPEC_SUBSET, get_campaign

EXPONENTS = (0.0, 0.5, 1.0, 2.0, 4.0)
FINE_COST = 10
COARSE_COST = 100_000
MARGIN = 0.023
N_PAIRS = 20


def schedule_value(scheduler, oracle, pairs, recovery_cost):
    """Mean modeled throughput of a schedule, net of recovery overhead."""
    values = []
    for a, b in pairs:
        run = oracle.run(a, b)
        rate = run.droops.event_rate(MARGIN)
        overhead = rate * recovery_cost
        values.append(run.throughput_ipc / (1.0 + overhead))
    return float(np.mean(values))


def test_ablation_hybrid_exponent(benchmark, quick):
    def experiment():
        campaign = get_campaign("Proc3", n_cycles=25_000)
        oracle = PairOracle(campaign)
        scheduler = BatchScheduler(oracle, programs=QUICK_SPEC_SUBSET)
        results = {}
        for cost in (FINE_COST, COARSE_COST):
            scores = []
            for n in EXPONENTS:
                pairs = scheduler.build_schedule(
                    HybridPolicy(n), n_pairs=N_PAIRS, seed=21
                )
                scores.append(schedule_value(scheduler, oracle, pairs, cost))
            results[cost] = scores
        return results

    results = run_once(benchmark, experiment)
    fine = np.array(results[FINE_COST])
    coarse = np.array(results[COARSE_COST])

    # With cheap recovery, droop-avoidance buys little: small exponents
    # are at least as good as the most aggressive one.
    assert fine[:3].max() >= fine[-1] * 0.995
    # With expensive recovery, droop-heavy exponents win clearly over
    # pure IPC (n = 0).
    assert coarse[2:].max() > coarse[0]
    # The optimal exponent does not decrease as recovery coarsens.
    assert int(np.argmax(coarse)) >= int(np.argmax(fine))

    # The builder honours n as a knob at all (schedules differ).
    assert not np.allclose(fine, fine[0])
