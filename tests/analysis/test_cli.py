"""CLI behavior: exit codes, formats, baseline flags, rule listing."""

from __future__ import annotations

import json

import pytest

from repro.analysis import baseline as baseline_mod
from repro.analysis.cli import main
from repro.analysis.registry import all_rules

from tests.analysis.conftest import CORPUS, FIXTURES, FLOW_FIXTURES

CLEAN = str(FIXTURES / "clean.py")
DIRTY = str(FIXTURES / "hyg_violations.py")
#: Line-rule-clean but dimensionally wrong: findings only under --flow.
FLOW_DIRTY = str(CORPUS / "bad_rc_sum.py")
#: Clean except for a TNT005 host-dependent cache key.
TAINT_DIRTY = str(CORPUS / "bad_env_cache_key.py")
#: Workers drawing underived streams (CON001 + TNT002 under --flow).
SEED_DIRTY = str(CORPUS / "bad_campaign_seed.py")
#: One violation of each PERF rule inside a hot `simulate` entry.
PERF_DIRTY = str(FLOW_FIXTURES / "perf_violations.py")


def test_clean_file_exits_zero(capsys):
    assert main([CLEAN]) == 0
    assert "simlint: clean" in capsys.readouterr().out


def test_dirty_file_exits_one(capsys):
    assert main([DIRTY]) == 1
    out = capsys.readouterr().out
    assert "HYG001" in out
    assert "error" in out


def test_fixture_directory_fails(capsys):
    assert main([str(FIXTURES)]) == 1


def test_json_format_is_parseable(capsys):
    assert main([DIRTY, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["total"] == len(payload["findings"])
    assert payload["summary"]["total"] > 0
    first = payload["findings"][0]
    assert {"code", "message", "path", "line", "column", "severity"} <= set(
        first
    )


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.code in out


def test_select_limits_rules(capsys):
    assert main([DIRTY, "--select", "DET001"]) == 0
    assert main([DIRTY, "--select", "HYG001"]) == 1


def test_select_unknown_code_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        main([DIRTY, "--select", "NOPE99"])
    assert excinfo.value.code == 2


def test_nonexistent_path_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        main(["does/not/exist.py"])
    assert excinfo.value.code == 2


def test_write_then_use_baseline(tmp_path, capsys):
    baseline = tmp_path / "base.json"
    assert main([DIRTY, "--write-baseline", "--baseline", str(baseline)]) == 0
    assert baseline.exists()
    capsys.readouterr()
    # With every finding grandfathered the same tree is green...
    assert main([DIRTY, "--baseline", str(baseline)]) == 0
    # ...and --no-baseline resurfaces everything.
    assert main([DIRTY, "--baseline", str(baseline), "--no-baseline"]) == 1


def test_missing_explicit_baseline_is_usage_error(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main([DIRTY, "--baseline", str(tmp_path / "absent.json")])
    assert excinfo.value.code == 2


def test_module_entry_point(tmp_path):
    import subprocess
    import sys
    from pathlib import Path

    repo_root = Path(__file__).resolve().parents[2]
    env_src = str(repo_root / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", CLEAN],
        capture_output=True,
        text=True,
        cwd=str(tmp_path),
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    assert "simlint: clean" in proc.stdout


class TestExitCodes:
    """The full matrix: 0 clean, 1 errors, 2 warnings-only under strict."""

    def test_clean_is_zero_even_strict(self, capsys):
        assert main([CLEAN, "--strict-warnings"]) == 0

    def test_errors_are_one(self, capsys):
        assert main([DIRTY]) == 1

    def test_errors_stay_one_under_strict(self, capsys):
        assert main([DIRTY, "--strict-warnings"]) == 1

    def test_warnings_only_is_zero_by_default(self, capsys):
        # HYG003 (overbroad except) is warning severity.
        assert main([DIRTY, "--select", "HYG003"]) == 0

    def test_warnings_only_is_two_under_strict(self, capsys):
        assert main([DIRTY, "--select", "HYG003", "--strict-warnings"]) == 2


class TestFlowFlag:
    def test_flow_findings_need_the_flag(self, capsys):
        assert main([FLOW_DIRTY, "--no-baseline"]) == 0
        assert main([FLOW_DIRTY, "--no-baseline", "--flow"]) == 1
        assert "DIM001" in capsys.readouterr().out

    def test_selecting_a_flow_code_implies_flow(self, capsys):
        assert main([FLOW_DIRTY, "--no-baseline", "--select", "DIM001"]) == 1

    def test_no_flow_is_accepted(self, capsys):
        assert main([FLOW_DIRTY, "--no-baseline", "--no-flow"]) == 0

    def test_family_prefix_expands_and_implies_flow(self, capsys):
        assert main([TAINT_DIRTY, "--no-baseline", "--select", "TNT"]) == 1
        assert "TNT005" in capsys.readouterr().out

    def test_family_selection_excludes_other_families(self, capsys):
        """--select TNT must not report the DIM bug in this file."""
        assert main([FLOW_DIRTY, "--no-baseline", "--select", "TNT"]) == 0

    def test_list_rules_marks_flow_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for line in out.splitlines():
            if line.startswith(("DIM", "CON", "TNT", "PERF")):
                assert "(flow)" in line


class TestProfiles:
    def test_tests_profile_relaxes_future_import(self, capsys):
        # HYG005 is a warning, so surface it via --strict-warnings.
        target = str(FIXTURES / "hyg_missing_future.py")
        base = [target, "--no-baseline", "--strict-warnings"]
        assert main(base) == 2
        assert main([*base, "--profile", "tests"]) == 0

    def test_default_profile_keeps_everything(self, capsys):
        assert main([DIRTY, "--no-baseline", "--profile", "default"]) == 1


class TestExclude:
    def test_exclude_skips_matching_paths(self, capsys):
        assert main([str(FIXTURES), "--no-baseline", "--exclude", "*"]) == 0
        assert "simlint: clean" in capsys.readouterr().out

    def test_exclude_is_selective(self, capsys):
        assert (
            main(
                [
                    str(FIXTURES),
                    "--no-baseline",
                    "--exclude",
                    "*/hyg_*.py",
                    "--select",
                    "HYG001,HYG002,HYG003,HYG004,HYG005",
                ]
            )
            == 0
        )


class TestSarif:
    def test_sarif_is_valid_and_complete(self, capsys):
        assert main([DIRTY, "--format", "sarif", "--no-baseline"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in payload["$schema"]
        (run,) = payload["runs"]
        assert run["tool"]["driver"]["name"] == "simlint"
        declared = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {rule.code for rule in all_rules()} <= declared
        assert run["results"], "dirty fixture must produce results"
        for result in run["results"]:
            assert result["ruleId"].startswith("HYG")
            assert result["level"] in ("error", "warning")
            location = result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"].endswith(
                "hyg_violations.py"
            )
            assert location["region"]["startLine"] >= 1
            assert location["region"]["startColumn"] >= 1
            assert result["partialFingerprints"]["simlintFingerprint"]

    def test_sarif_clean_run_has_no_results(self, capsys):
        assert main([CLEAN, "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"] == []


class TestEffectsSubcommand:
    def test_json_report_shape(self, capsys):
        assert main(["effects", SEED_DIRTY, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert any(
            name.endswith(".noisy_record") for name in payload["functions"]
        )
        assert payload["worker_closure"]["functions"]
        assert "rng-unseeded" in payload["worker_closure"]["effects"]

    def test_text_report(self, capsys):
        assert main(["effects", SEED_DIRTY]) == 0
        out = capsys.readouterr().out
        assert "worker closure:" in out
        assert "rng-unseeded" in out

    def test_closure_query(self, capsys):
        assert main(
            ["effects", SEED_DIRTY, "--json", "--closure", "noisy_record"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        named = payload["closures"]["noisy_record"]
        assert named["effects"] == ["rng-unseeded"]

    def test_unknown_closure_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["effects", SEED_DIRTY, "--closure", "not_a_function"])
        assert excinfo.value.code == 2

    def test_nonexistent_path_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["effects", "no/such/path.py"])
        assert excinfo.value.code == 2


class TestLintCacheFlag:
    def test_cold_then_warm_counters(self, tmp_path, capsys):
        cache_file = str(tmp_path / "cache.json")
        args = [CLEAN, "--flow", "--lint-cache", cache_file]
        assert main(args) == 0
        cold_err = capsys.readouterr().err
        assert "0 hit(s)" in cold_err

        assert main(args) == 0
        warm_err = capsys.readouterr().err
        assert "0 miss(es)" in warm_err
        assert "hit(s)" in warm_err

    def test_cache_preserves_findings_and_exit_code(self, tmp_path, capsys):
        cache_file = str(tmp_path / "cache.json")
        args = [DIRTY, "--no-baseline", "--lint-cache", cache_file]
        assert main(args) == 1
        cold_out = capsys.readouterr().out
        assert main(args) == 1
        warm_out = capsys.readouterr().out
        assert warm_out == cold_out


class TestPerfFamily:
    def test_perf_warnings_exit_zero_by_default(self, capsys):
        assert main([PERF_DIRTY, "--no-baseline", "--flow"]) == 0
        out = capsys.readouterr().out
        assert "PERF001" in out

    def test_perf_strict_warnings_exit_two(self, capsys):
        args = [PERF_DIRTY, "--no-baseline", "--flow", "--strict-warnings"]
        assert main(args) == 2
        out = capsys.readouterr().out
        for code in ("PERF001", "PERF002", "PERF003", "PERF004", "PERF005"):
            assert code in out

    def test_select_perf_family_implies_flow(self, capsys):
        args = [PERF_DIRTY, "--no-baseline", "--select", "PERF",
                "--strict-warnings"]
        assert main(args) == 2
        out = capsys.readouterr().out
        assert "PERF" in out
        assert "DIM" not in out


class TestPruneBaseline:
    def test_prune_drops_stale_and_keeps_live(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        assert main(
            [PERF_DIRTY, "--flow", "--write-baseline",
             "--baseline", str(baseline)]
        ) == 0
        payload = json.loads(baseline.read_text())
        stale = {
            "path": PERF_DIRTY,
            "code": "PERF001",
            "line": 999,
            "message": "a loop that was fixed long ago",
            "fingerprint": "0123456789abcdef",
            "justification": "kept to prove prune preserves the field",
        }
        payload["findings"].append(stale)
        baseline.write_text(json.dumps(payload))
        capsys.readouterr()

        assert main(
            [PERF_DIRTY, "--prune-baseline", "--baseline", str(baseline)]
        ) == 0
        out = capsys.readouterr().out
        assert "pruned 1 stale" in out
        assert "a loop that was fixed long ago" in out
        pruned = json.loads(baseline.read_text())
        prints = {item["fingerprint"] for item in pruned["findings"]}
        assert "0123456789abcdef" not in prints
        assert len(pruned["findings"]) == len(payload["findings"]) - 1

    def test_prune_runs_full_rule_set_despite_select(self, tmp_path, capsys):
        """--select must not make unselected families look stale."""
        baseline = tmp_path / "base.json"
        assert main(
            [PERF_DIRTY, "--flow", "--write-baseline",
             "--baseline", str(baseline)]
        ) == 0
        before = json.loads(baseline.read_text())
        capsys.readouterr()
        assert main(
            [PERF_DIRTY, "--prune-baseline", "--baseline", str(baseline),
             "--select", "DET001"]
        ) == 0
        assert "pruned 0 stale" in capsys.readouterr().out
        assert json.loads(baseline.read_text()) == before

    def test_prune_without_baseline_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [PERF_DIRTY, "--prune-baseline",
                 "--baseline", str(tmp_path / "absent.json")]
            )
        assert excinfo.value.code == 2


class TestRequireJustification:
    def test_unjustified_entries_fail(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        assert main(
            [DIRTY, "--write-baseline", "--baseline", str(baseline)]
        ) == 0
        capsys.readouterr()
        assert main(
            [DIRTY, "--baseline", str(baseline),
             "--require-justification"]
        ) == 1
        err = capsys.readouterr().err
        assert "without a justification" in err

    def test_justified_entries_pass(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        assert main(
            [DIRTY, "--write-baseline", "--baseline", str(baseline)]
        ) == 0
        base = baseline_mod.load(str(baseline))
        items = [dict(item) for item in base.items]
        for item in items:
            item["justification"] = "accepted for the test"
        baseline_mod.save_items(str(baseline), items)
        capsys.readouterr()
        assert main(
            [DIRTY, "--baseline", str(baseline),
             "--require-justification"]
        ) == 0


class TestHotspotsSubcommand:
    @staticmethod
    def _profile(tmp_path, stages):
        path = tmp_path / "stages.json"
        path.write_text(
            json.dumps(
                {
                    "schema": "repro-stage-profile",
                    "version": 1,
                    "stages": [
                        {
                            "name": name,
                            "count": count,
                            "total_seconds": 1.0,
                            "mean_seconds": 0.5,
                            "max_seconds": 0.7,
                        }
                        for name, count in stages
                    ],
                }
            )
        )
        return str(path)

    def test_unmeasured_without_profile(self, capsys):
        assert main(["hotspots", PERF_DIRTY, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["profile"] is None
        assert payload["total_findings"] == 5
        (stage,) = payload["stages"]
        assert stage["stage"] == "run.simulate"
        assert stage["bucket"] == "unmeasured"
        lines = [f["line"] for f in stage["findings"]]
        assert lines == sorted(lines)
        assert {f["code"] for f in stage["findings"]} == {
            "PERF001", "PERF002", "PERF003", "PERF004", "PERF005"
        }
        assert {f["hot_entry"] for f in stage["findings"]} == {
            "perf_violations.simulate"
        }

    def test_profile_join_buckets_by_span_count(self, tmp_path, capsys):
        profile = self._profile(
            tmp_path, [("run.simulate", 6), ("chip.run", 2)]
        )
        assert main(
            ["hotspots", PERF_DIRTY, "--profile", profile, "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        (stage,) = payload["stages"]
        # 6 of 8 recorded spans -> >= 50% -> dominant.
        assert stage["bucket"] == "dominant"
        assert stage["span_count"] == 6

    def test_text_output_is_byte_identical_across_runs(
        self, tmp_path, capsys
    ):
        profile = self._profile(tmp_path, [("run.simulate", 4)])
        args = ["hotspots", PERF_DIRTY, "--profile", profile]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "rank 1 · stage run.simulate" in first

    def test_output_ignores_wall_seconds(self, tmp_path, capsys):
        """Two profiles with identical structure but different timings
        produce byte-identical reports — the --jobs invariance contract."""
        fast = self._profile(tmp_path, [("run.simulate", 4)])
        slow_payload = json.loads(open(fast).read())
        for stage in slow_payload["stages"]:
            stage["total_seconds"] = 99.0
            stage["mean_seconds"] = 24.75
            stage["max_seconds"] = 50.0
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps(slow_payload))
        assert main(["hotspots", PERF_DIRTY, "--profile", fast]) == 0
        first = capsys.readouterr().out
        assert main(["hotspots", PERF_DIRTY, "--profile", str(slow)]) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_bad_profile_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "something-else"}')
        with pytest.raises(SystemExit) as excinfo:
            main(["hotspots", PERF_DIRTY, "--profile", str(bad)])
        assert excinfo.value.code == 2

    def test_unknown_span_names_are_usage_error(self, tmp_path, capsys):
        # A profile from a different build (spans this build never
        # emits) degrades to a clear usage error, not a KeyError.
        profile = self._profile(
            tmp_path, [("run.simulate", 4), ("warp.drive", 2)]
        )
        with pytest.raises(SystemExit) as excinfo:
            main(["hotspots", PERF_DIRTY, "--profile", profile])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "warp.drive" in err
        assert "catalog" in err

    def test_experiment_spans_are_in_catalog(self, tmp_path, capsys):
        # Dynamic experiment.* spans are legitimate catalog members.
        profile = self._profile(
            tmp_path, [("run.simulate", 4), ("experiment.fig02", 1)]
        )
        assert main(
            ["hotspots", PERF_DIRTY, "--profile", profile, "--json"]
        ) == 0

    def test_malformed_stage_entry_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(
            json.dumps({
                "schema": "repro-stage-profile",
                "version": 1,
                "stages": [{"count": 3}],
            })
        )
        with pytest.raises(SystemExit) as excinfo:
            main(["hotspots", PERF_DIRTY, "--profile", str(bad)])
        assert excinfo.value.code == 2

    def test_nonexistent_path_is_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["hotspots", "no/such/path.py"])
        assert excinfo.value.code == 2
