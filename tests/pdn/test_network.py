"""Unit tests for the PDN ladder and its state-space form."""

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigurationError
from repro.pdn.elements import Capacitor, Inductor
from repro.pdn.network import PDNStage, PowerDeliveryNetwork


def simple_network(n_stages: int = 3) -> PowerDeliveryNetwork:
    stages = []
    for i in range(n_stages):
        stages.append(
            PDNStage(
                name=f"stage{i}",
                interconnect=Inductor(1e-9 / (10**i), esr=1e-3),
                decap=Capacitor(1e-4 / (100**i), esr=2e-3),
            )
        )
    return PowerDeliveryNetwork(stages, nominal_voltage=1.2)


class TestConstruction:
    def test_requires_stages(self):
        with pytest.raises(ConfigurationError):
            PowerDeliveryNetwork([], 1.2)

    def test_requires_positive_voltage(self):
        with pytest.raises(ConfigurationError):
            PowerDeliveryNetwork(simple_network().stages, 0.0)

    def test_n_states(self):
        assert simple_network(3).n_states == 6
        assert simple_network(1).n_states == 2

    def test_dc_resistance_sums_series_esr(self):
        net = simple_network(3)
        assert net.dc_resistance == pytest.approx(3e-3)


class TestDecapScaling:
    def test_with_decap_fraction_scales_named_stage_only(self):
        net = simple_network(3)
        scaled = net.with_decap_fraction(0.25, stage_name="stage1")
        assert scaled.stages[1].decap.capacitance == pytest.approx(
            net.stages[1].decap.capacitance * 0.25
        )
        assert scaled.stages[0].decap.capacitance == net.stages[0].decap.capacitance
        assert scaled.stages[2].decap.capacitance == net.stages[2].decap.capacitance

    def test_unknown_stage_rejected(self):
        with pytest.raises(ConfigurationError):
            simple_network().with_decap_fraction(0.5, stage_name="nope")

    def test_less_decap_means_more_impedance_near_resonance(self):
        net = simple_network(3)
        depleted = net.with_decap_fraction(0.05, stage_name="stage1")
        # Probe a band around the stage-1 resonance.
        freqs = np.logspace(5, 8, 200)
        z_full = np.abs(net.impedance(freqs))
        z_depl = np.abs(depleted.impedance(freqs))
        assert z_depl.max() > z_full.max()


class TestImpedance:
    def test_dc_limit_approaches_series_resistance(self):
        net = simple_network(3)
        z_low = np.abs(net.impedance(1e-2))
        assert z_low == pytest.approx(net.dc_resistance, rel=0.05)

    def test_rejects_non_positive_frequency(self):
        with pytest.raises(ConfigurationError):
            simple_network().impedance(0.0)

    def test_impedance_matches_state_space_transfer_function(self):
        """The analytic ladder impedance and |C (jwI - A)^-1 B + D| agree."""
        net = simple_network(3)
        a, b, c, d = net.state_space()
        freqs = np.logspace(4, 9, 30)
        z_ladder = net.impedance(freqs)
        for f, z_expected in zip(freqs, z_ladder):
            jw = 2j * np.pi * f
            h = c @ np.linalg.solve(
                jw * np.eye(a.shape[0]) - a, b[:, [1]]
            ) + d[:, [1]]
            # The I->V transfer function is minus the impedance (current
            # draw lowers the voltage).
            assert abs(-h[0, 0] - z_expected) <= 1e-6 + 1e-3 * abs(z_expected)


class TestStateSpace:
    def test_shapes(self):
        a, b, c, d = simple_network(3).state_space()
        assert a.shape == (6, 6)
        assert b.shape == (6, 2)
        assert c.shape == (1, 6)
        assert d.shape == (1, 2)

    def test_system_is_stable(self):
        a, _, _, _ = simple_network(3).state_space()
        eigenvalues = np.linalg.eigvals(a)
        assert np.all(eigenvalues.real < 0)

    def test_dc_operating_point_is_equilibrium(self):
        net = simple_network(3)
        a, b, _, _ = net.state_space()
        load = 7.5
        x0 = net.dc_operating_point(load)
        u = np.array([net.nominal_voltage, load])
        dx = a @ x0 + b @ u
        assert np.allclose(dx, 0.0, atol=1e-6 * np.abs(a @ x0).max())

    def test_dc_output_matches_ir_drop(self):
        net = simple_network(3)
        _, _, c, d = net.state_space()
        load = 5.0
        x0 = net.dc_operating_point(load)
        u = np.array([net.nominal_voltage, load])
        v = (c @ x0 + d @ u).item()
        assert v == pytest.approx(net.die_voltage_dc(load), rel=1e-9)

    def test_single_stage_network(self):
        net = PowerDeliveryNetwork(
            [
                PDNStage(
                    "only",
                    Inductor(1 * units.NANO_HENRY, esr=1e-3),
                    Capacitor(1 * units.MICRO_FARAD, esr=1e-3),
                )
            ],
            1.0,
        )
        a, b, c, d = net.state_space()
        assert a.shape == (2, 2)
        assert np.all(np.linalg.eigvals(a).real < 0)
