"""Property tests for the effect lattice and its interprocedural fixpoint.

The termination and determinism arguments in
:mod:`repro.analysis.flow.effects` rest on algebraic facts — ``join``
is a semilattice operation, the fixpoint is monotone in its inputs,
and solving is a pure function of (intrinsic, edges, pins).  Hypothesis
pins each fact directly rather than trusting the prose.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis import flow_sources
from repro.analysis.flow.effects import (
    ALL_EFFECTS,
    PURE,
    join,
    solve_effects,
)

effect_sets = st.frozensets(st.sampled_from(sorted(ALL_EFFECTS)))

names = st.sampled_from([f"f{i}" for i in range(6)])

graphs = st.fixed_dictionaries(
    {},
    optional={
        name: st.sets(names, max_size=4) for name in [f"f{i}" for i in range(6)]
    },
)

intrinsics = st.dictionaries(names, effect_sets, max_size=6)


class TestJoinSemilattice:
    @settings(max_examples=60, deadline=None)
    @given(a=effect_sets, b=effect_sets)
    def test_commutative(self, a, b):
        assert join(a, b) == join(b, a)

    @settings(max_examples=60, deadline=None)
    @given(a=effect_sets, b=effect_sets, c=effect_sets)
    def test_associative(self, a, b, c):
        assert join(join(a, b), c) == join(a, join(b, c))

    @settings(max_examples=60, deadline=None)
    @given(a=effect_sets)
    def test_idempotent_with_bottom_identity(self, a):
        assert join(a, a) == a
        assert join(a, PURE) == a

    @settings(max_examples=60, deadline=None)
    @given(a=effect_sets, b=effect_sets)
    def test_upper_bound(self, a, b):
        assert a <= join(a, b)
        assert b <= join(a, b)


class TestFixpoint:
    @settings(max_examples=60, deadline=None)
    @given(intrinsic=intrinsics, edges=graphs)
    def test_solution_contains_intrinsic(self, intrinsic, edges):
        solved = solve_effects(intrinsic, edges)
        for name, effects in intrinsic.items():
            assert effects <= solved[name]

    @settings(max_examples=60, deadline=None)
    @given(intrinsic=intrinsics, edges=graphs)
    def test_solution_is_a_fixpoint(self, intrinsic, edges):
        """Re-applying one propagation step changes nothing."""
        solved = solve_effects(intrinsic, edges)
        for name in solved:
            summary = intrinsic.get(name, PURE)
            for callee in edges.get(name, ()):
                summary = join(summary, solved.get(callee, PURE))
            assert solved[name] == summary

    @settings(max_examples=60, deadline=None)
    @given(intrinsic=intrinsics, edges=graphs, extra=effect_sets,
           target=names)
    def test_monotone_in_intrinsic(self, intrinsic, edges, extra, target):
        """Growing one intrinsic summary never shrinks any solution."""
        grown = dict(intrinsic)
        grown[target] = join(grown.get(target, PURE), extra)
        before = solve_effects(intrinsic, edges)
        after = solve_effects(grown, edges)
        for name in before:
            assert before[name] <= after.get(name, before[name])

    @settings(max_examples=60, deadline=None)
    @given(intrinsic=intrinsics, edges=graphs)
    def test_deterministic(self, intrinsic, edges):
        assert solve_effects(intrinsic, edges) == solve_effects(
            intrinsic, edges
        )

    @settings(max_examples=60, deadline=None)
    @given(intrinsic=intrinsics, edges=graphs, pin=effect_sets,
           target=names)
    def test_pins_are_boundaries(self, intrinsic, edges, pin, target):
        """A pinned function keeps exactly its declared summary."""
        solved = solve_effects(intrinsic, edges, {target: pin})
        assert solved[target] == pin


class TestTaintDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(
        names=st.lists(
            st.sampled_from(["alpha", "beta", "gamma", "delta"]),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    def test_findings_independent_of_module_insertion_order(self, names):
        """The same project yields the same findings however it is fed."""
        template = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "import random\n"
            "def record_{n}(i):\n"
            "    return random.random() + i\n"
            "def run_{n}(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(record_{n}, items))\n"
        )
        forward = {
            f"proj/{n}.py": template.replace("{n}", n) for n in names
        }
        backward = {
            f"proj/{n}.py": template.replace("{n}", n)
            for n in reversed(names)
        }
        to_tuples = lambda fs: [  # noqa: E731
            (f.code, f.path, f.line, f.message) for f in fs
        ]
        assert to_tuples(flow_sources(forward)) == to_tuples(
            flow_sources(backward)
        )
        assert len(flow_sources(forward)) == len(names)
