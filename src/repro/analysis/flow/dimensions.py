"""The physical-dimension algebra underlying the ``DIM`` rules.

Every dimension this library cares about is expressible as a product of
integer powers of three base quantities: **volts**, **amperes**, and
**seconds**.  A :class:`Dim` is that exponent triple, so the derived
units fall out of plain integer arithmetic::

    OHM   = VOLT / AMPERE          # (1, -1, 0)
    FARAD = AMPERE * SECOND / VOLT # (-1, 1, 1)
    HENRY = VOLT * SECOND / AMPERE # (1, -1, 1)
    HERTZ = DIMENSIONLESS / SECOND # (0, 0, -1)
    WATT  = VOLT * AMPERE          # (1, 1, 0)

and the identities the PDN model leans on hold by construction:
``OHM * FARAD == SECOND`` (an RC time constant), ``HENRY / OHM ==
SECOND`` (an L/R time constant), ``SECOND ** -1 == HERTZ``.

The algebra is *total*: multiplying or dividing any two dims yields a
dim (closure), ``*`` commutes, and ``/`` is the inverse of ``*`` — the
hypothesis suite in ``tests/analysis/test_dimensions.py`` checks these
laws over the whole lattice, not just the named points.

``Dim`` deliberately models *dimension*, not *scale*: ``MILLI_VOLT`` and
``VOLT`` are both volts.  Scale correctness is the line-level ``UNI``
rules' job; this module powers the dataflow ``DIM`` rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "Dim",
    "DIMENSIONLESS",
    "VOLT",
    "AMPERE",
    "SECOND",
    "OHM",
    "FARAD",
    "HENRY",
    "HERTZ",
    "WATT",
    "NAMED_DIMS",
    "dim_for_name",
    "dim_for_unit_word",
    "parse_dim",
]


@dataclass(frozen=True)
class Dim:
    """A physical dimension as integer exponents over (volt, ampere, second)."""

    volt: int = 0
    ampere: int = 0
    second: int = 0

    def __mul__(self, other: "Dim") -> "Dim":
        if not isinstance(other, Dim):
            return NotImplemented
        return Dim(
            self.volt + other.volt,
            self.ampere + other.ampere,
            self.second + other.second,
        )

    def __truediv__(self, other: "Dim") -> "Dim":
        if not isinstance(other, Dim):
            return NotImplemented
        return Dim(
            self.volt - other.volt,
            self.ampere - other.ampere,
            self.second - other.second,
        )

    def __pow__(self, exponent: int) -> "Dim":
        if not isinstance(exponent, int):
            return NotImplemented
        return Dim(
            self.volt * exponent,
            self.ampere * exponent,
            self.second * exponent,
        )

    def inverse(self) -> "Dim":
        """The reciprocal dimension (``SECOND.inverse() == HERTZ``)."""
        return Dim(-self.volt, -self.ampere, -self.second)

    @property
    def is_dimensionless(self) -> bool:
        return self.volt == 0 and self.ampere == 0 and self.second == 0

    def name(self) -> str:
        """Human name: ``"Ω"`` for a known unit, exponents otherwise."""
        known = _NAME_BY_DIM.get(self._key())
        if known is not None:
            return known
        parts = []
        for symbol, exp in (("V", self.volt), ("A", self.ampere),
                            ("s", self.second)):
            if exp == 1:
                parts.append(symbol)
            elif exp != 0:
                parts.append(f"{symbol}^{exp}")
        return "·".join(parts) if parts else "1"

    def _key(self) -> Tuple[int, int, int]:
        return (self.volt, self.ampere, self.second)

    def __str__(self) -> str:
        return self.name()


DIMENSIONLESS = Dim(0, 0, 0)
VOLT = Dim(1, 0, 0)
AMPERE = Dim(0, 1, 0)
SECOND = Dim(0, 0, 1)
OHM = VOLT / AMPERE
FARAD = AMPERE * SECOND / VOLT
HENRY = VOLT * SECOND / AMPERE
HERTZ = DIMENSIONLESS / SECOND
WATT = VOLT * AMPERE

#: Canonical spellings accepted by :func:`parse_dim` (annotation comments)
#: and produced by :meth:`Dim.name`.
NAMED_DIMS: Dict[str, Dim] = {
    "1": DIMENSIONLESS,
    "dimensionless": DIMENSIONLESS,
    "ratio": DIMENSIONLESS,
    "V": VOLT,
    "volt": VOLT,
    "volts": VOLT,
    "A": AMPERE,
    "ampere": AMPERE,
    "amperes": AMPERE,
    "amp": AMPERE,
    "amps": AMPERE,
    "s": SECOND,
    "second": SECOND,
    "seconds": SECOND,
    "ohm": OHM,
    "ohms": OHM,
    "Ω": OHM,
    "F": FARAD,
    "farad": FARAD,
    "farads": FARAD,
    "H": HENRY,
    "henry": HENRY,
    "henries": HENRY,
    "Hz": HERTZ,
    "hz": HERTZ,
    "hertz": HERTZ,
    "W": WATT,
    "watt": WATT,
    "watts": WATT,
}

_NAME_BY_DIM: Dict[Tuple[int, int, int], str] = {
    DIMENSIONLESS._key(): "1",
    VOLT._key(): "V",
    AMPERE._key(): "A",
    SECOND._key(): "s",
    OHM._key(): "Ω",
    FARAD._key(): "F",
    HENRY._key(): "H",
    HERTZ._key(): "Hz",
    WATT._key(): "W",
}

#: Underscore segments of an identifier that *pin* its dimension.  This is
#: the same unit-word convention the ``UNI`` rules enforce, extended with
#: the dimension each word implies.
_UNIT_WORD_DIMS: Dict[str, Dim] = {
    "volt": VOLT,
    "volts": VOLT,
    "amp": AMPERE,
    "amps": AMPERE,
    "ampere": AMPERE,
    "amperes": AMPERE,
    "second": SECOND,
    "seconds": SECOND,
    "ohm": OHM,
    "ohms": OHM,
    "farad": FARAD,
    "farads": FARAD,
    "henry": HENRY,
    "henries": HENRY,
    "hz": HERTZ,
    "hertz": HERTZ,
    "watt": WATT,
    "watts": WATT,
}


def dim_for_unit_word(word: str) -> Optional[Dim]:
    """Dimension implied by one identifier segment, or ``None``."""
    return _UNIT_WORD_DIMS.get(word.lower())


def dim_for_name(name: str) -> Optional[Dim]:
    """Dimension pinned by a unit-suffixed identifier, else ``None``.

    The *last* unit word wins so that ``volts_per_second``-style names do
    not resolve (two unit words = a compound nobody should spell that
    way), while ``bulk_inductance_henries`` and ``dt_seconds`` do.
    """
    words = [dim_for_unit_word(seg) for seg in name.split("_")]
    hits = [d for d in words if d is not None]
    if len(hits) == 1:
        return hits[0]
    return None


def parse_dim(text: str) -> Optional[Dim]:
    """Parse an annotation-comment dimension spelling (``"ohm"``, ``"Hz"``)."""
    return NAMED_DIMS.get(text.strip())
