"""CLI behavior: exit codes, formats, baseline flags, rule listing."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cli import main
from repro.analysis.registry import all_rules

from tests.analysis.conftest import FIXTURES

CLEAN = str(FIXTURES / "clean.py")
DIRTY = str(FIXTURES / "hyg_violations.py")


def test_clean_file_exits_zero(capsys):
    assert main([CLEAN]) == 0
    assert "simlint: clean" in capsys.readouterr().out


def test_dirty_file_exits_one(capsys):
    assert main([DIRTY]) == 1
    out = capsys.readouterr().out
    assert "HYG001" in out
    assert "error" in out


def test_fixture_directory_fails(capsys):
    assert main([str(FIXTURES)]) == 1


def test_json_format_is_parseable(capsys):
    assert main([DIRTY, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["total"] == len(payload["findings"])
    assert payload["summary"]["total"] > 0
    first = payload["findings"][0]
    assert {"code", "message", "path", "line", "column", "severity"} <= set(
        first
    )


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.code in out


def test_select_limits_rules(capsys):
    assert main([DIRTY, "--select", "DET001"]) == 0
    assert main([DIRTY, "--select", "HYG001"]) == 1


def test_select_unknown_code_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        main([DIRTY, "--select", "NOPE99"])
    assert excinfo.value.code == 2


def test_nonexistent_path_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        main(["does/not/exist.py"])
    assert excinfo.value.code == 2


def test_write_then_use_baseline(tmp_path, capsys):
    baseline = tmp_path / "base.json"
    assert main([DIRTY, "--write-baseline", "--baseline", str(baseline)]) == 0
    assert baseline.exists()
    capsys.readouterr()
    # With every finding grandfathered the same tree is green...
    assert main([DIRTY, "--baseline", str(baseline)]) == 0
    # ...and --no-baseline resurfaces everything.
    assert main([DIRTY, "--baseline", str(baseline), "--no-baseline"]) == 1


def test_missing_explicit_baseline_is_usage_error(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main([DIRTY, "--baseline", str(tmp_path / "absent.json")])
    assert excinfo.value.code == 2


def test_module_entry_point(tmp_path):
    import subprocess
    import sys
    from pathlib import Path

    repo_root = Path(__file__).resolve().parents[2]
    env_src = str(repo_root / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", CLEAN],
        capture_output=True,
        text=True,
        cwd=str(tmp_path),
        env={"PYTHONPATH": env_src, "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    assert "simlint: clean" in proc.stdout
