"""Property tests for the dimension algebra (hypothesis-driven).

The ``DIM`` rules are only as sound as the algebra underneath them, so
the laws are checked over the whole exponent lattice, not just the named
unit points: closure, commutativity/associativity of ``*``, identity,
``/`` as the inverse of ``*``, and power/inverse consistency.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.flow.dimensions import (
    AMPERE,
    DIMENSIONLESS,
    FARAD,
    HENRY,
    HERTZ,
    NAMED_DIMS,
    OHM,
    SECOND,
    VOLT,
    WATT,
    Dim,
    dim_for_name,
    parse_dim,
)

dims = st.builds(
    Dim,
    st.integers(min_value=-4, max_value=4),
    st.integers(min_value=-4, max_value=4),
    st.integers(min_value=-4, max_value=4),
)


class TestAlgebraLaws:
    @given(dims, dims)
    def test_product_closure(self, a, b):
        assert isinstance(a * b, Dim)
        assert isinstance(a / b, Dim)

    @given(dims, dims)
    def test_product_commutes(self, a, b):
        assert a * b == b * a

    @given(dims, dims, dims)
    def test_product_associates(self, a, b, c):
        assert (a * b) * c == a * (b * c)

    @given(dims)
    def test_dimensionless_is_identity(self, a):
        assert a * DIMENSIONLESS == a
        assert a / DIMENSIONLESS == a

    @given(dims, dims)
    def test_division_inverts_multiplication(self, a, b):
        assert (a * b) / b == a
        assert (a / b) * b == a

    @given(dims)
    def test_inverse(self, a):
        assert a * a.inverse() == DIMENSIONLESS
        assert a.inverse() == DIMENSIONLESS / a

    @given(dims, st.integers(min_value=-3, max_value=3))
    def test_power_is_repeated_product(self, a, n):
        expected = DIMENSIONLESS
        base = a if n >= 0 else a.inverse()
        for _ in range(abs(n)):
            expected = expected * base
        assert a**n == expected

    @given(dims)
    def test_dimensionless_predicate(self, a):
        assert (a / a).is_dimensionless
        assert a.is_dimensionless == (a == DIMENSIONLESS)


class TestDerivedUnits:
    """The PDN identities the inference pass leans on."""

    def test_ohms_law(self):
        assert OHM == VOLT / AMPERE

    def test_rc_time_constant(self):
        assert OHM * FARAD == SECOND

    def test_lr_time_constant(self):
        assert HENRY / OHM == SECOND

    def test_lc_resonance(self):
        assert HENRY * FARAD == SECOND**2

    def test_hertz_is_inverse_second(self):
        assert HERTZ == SECOND.inverse()
        assert HERTZ * SECOND == DIMENSIONLESS

    def test_power(self):
        assert WATT == VOLT * AMPERE
        assert WATT == VOLT**2 / OHM

    @pytest.mark.parametrize(
        ("dim", "name"),
        [
            (DIMENSIONLESS, "1"),
            (VOLT, "V"),
            (OHM, "Ω"),
            (FARAD, "F"),
            (HERTZ, "Hz"),
            (HENRY * FARAD, "s^2"),
        ],
    )
    def test_names(self, dim, name):
        assert dim.name() == name


class TestNameInference:
    def test_spellings_round_trip(self):
        for spelling, dim in NAMED_DIMS.items():
            assert parse_dim(spelling) == dim

    def test_unknown_spelling(self):
        assert parse_dim("parsec") is None

    @pytest.mark.parametrize(
        ("identifier", "dim"),
        [
            ("dt_seconds", SECOND),
            ("bulk_inductance_henries", HENRY),
            ("f_max_hz", HERTZ),
            ("noise_volts_rms", VOLT),
            ("esr_ohms", OHM),
            ("total_capacitance_farads", FARAD),
        ],
    )
    def test_single_unit_word_pins(self, identifier, dim):
        assert dim_for_name(identifier) == dim

    @pytest.mark.parametrize(
        "identifier",
        ["samples", "droop_fraction", "volts_per_second", "ohm_farad_mix"],
    )
    def test_zero_or_two_unit_words_do_not(self, identifier):
        assert dim_for_name(identifier) is None
