"""Determinism rules (``DET0xx``).

Every simulation result in this repository must be bit-reproducible from
an explicit seed.  That dies the moment anything draws from the stdlib
``random`` module, numpy's *global* legacy RNG, or the wall clock.  The
sanctioned style is :mod:`repro.random_utils`: accept a ``SeedLike``,
normalize with ``as_generator``, fork child streams with
``derive_generator``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.engine import FileContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register

#: ``numpy.random`` attributes that are part of the *seeded* Generator
#: API and therefore fine to reference.
_NUMPY_RANDOM_OK: Set[str] = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: Wall-clock calls that leak real time into simulated results.
_WALL_CLOCK: Set[str] = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Parameter names that count as an injectable seed/stream.
_SEED_PARAM_NAMES: Set[str] = {"seed", "rng", "generator", "random_state"}

#: Annotation substrings that count as an injectable seed/stream.
_SEED_ANNOTATIONS = ("SeedLike", "Generator")

#: Callables that construct or derive a random stream.
_STREAM_FACTORIES: Set[str] = {
    "numpy.random.default_rng",
    "repro.random_utils.as_generator",
    "repro.random_utils.derive_generator",
}


@register
class StdlibRandomRule(Rule):
    """DET001: the stdlib ``random`` module is unseeded global state."""

    code = "DET001"
    name = "stdlib-random"
    severity = Severity.ERROR
    description = (
        "stdlib `random` is process-global and unseeded per component; "
        "use repro.random_utils (numpy Generator) instead"
    )
    node_types = (ast.Import, ast.ImportFrom)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield ctx.finding(
                        self,
                        node,
                        "import of stdlib `random`; use "
                        "repro.random_utils.as_generator instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module == "random":
                yield ctx.finding(
                    self,
                    node,
                    "import from stdlib `random`; use "
                    "repro.random_utils.as_generator instead",
                )


@register
class NumpyGlobalRngRule(Rule):
    """DET002: numpy's legacy global RNG defeats per-component seeding."""

    code = "DET002"
    name = "numpy-global-rng"
    severity = Severity.ERROR
    description = (
        "module-level numpy.random calls (seed/rand/RandomState/...) share "
        "one hidden global stream; construct a Generator via "
        "numpy.random.default_rng / repro.random_utils"
    )
    node_types = (ast.Attribute,)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Attribute)
        dotted = ctx.dotted_name(node)
        if dotted is None or not dotted.startswith("numpy.random."):
            return
        tail = dotted[len("numpy.random.") :]
        # Only flag direct attributes of the module (rng.integers resolves
        # to a variable, not to numpy.random.*).
        if "." in tail or tail in _NUMPY_RANDOM_OK:
            return
        yield ctx.finding(
            self,
            node,
            f"legacy global-RNG attribute `{dotted}`; use a seeded "
            "numpy.random.Generator (repro.random_utils.as_generator)",
        )


@register
class WallClockRule(Rule):
    """DET003: wall-clock reads make runs non-reproducible."""

    code = "DET003"
    name = "wall-clock"
    severity = Severity.ERROR
    description = (
        "time.time()/datetime.now() leak wall-clock state into results; "
        "simulated time must come from the simulation, and elapsed-time "
        "telemetry belongs in repro.observability (spans / "
        "monotonic_seconds)"
    )
    node_types = (ast.Call,)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        dotted = ctx.dotted_name(node.func)
        if dotted in _WALL_CLOCK:
            yield ctx.finding(
                self,
                node,
                f"wall-clock call `{dotted}()`; thread simulated time "
                "explicitly (or repro.observability for telemetry)",
            )


def _has_seed_parameter(init: ast.FunctionDef) -> bool:
    args = list(init.args.posonlyargs) + list(init.args.args)
    args += list(init.args.kwonlyargs)
    for arg in args:
        if arg.arg in _SEED_PARAM_NAMES:
            return True
        if arg.annotation is not None:
            try:
                text = ast.unparse(arg.annotation)
            except ValueError:  # pragma: no cover - malformed annotation
                continue
            if any(token in text for token in _SEED_ANNOTATIONS):
                return True
    return False


@register
class UnseededStochasticClassRule(Rule):
    """DET004: stochastic classes must accept a seed at construction."""

    code = "DET004"
    name = "unseeded-stochastic-class"
    severity = Severity.ERROR
    description = (
        "a class whose __init__ constructs a random Generator must accept "
        "a SeedLike/rng parameter so callers control the stream"
    )
    node_types = (ast.ClassDef,)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.ClassDef)
        for item in node.body:
            if isinstance(item, ast.FunctionDef) and item.name == "__init__":
                if _has_seed_parameter(item):
                    return
                for call in ast.walk(item):
                    if not isinstance(call, ast.Call):
                        continue
                    dotted = ctx.dotted_name(call.func)
                    if dotted in _STREAM_FACTORIES:
                        yield ctx.finding(
                            self,
                            call,
                            f"{node.name}.__init__ builds a random stream "
                            f"via `{dotted}` but has no seed/rng parameter",
                        )
                        return
                return
