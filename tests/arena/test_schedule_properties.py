"""Property battery for the arena scheduling contract.

Hypothesis-driven checks of the interface every arena policy must honor
(docs/arena.md):

* every ``propose()`` result is a **permutation-complete cover** — each
  program of the pool placed exactly once, no group beyond ``n_cores``;
* proposals are **bit-identical for equal seeds**, whether the instance
  is fresh or reused, and **independent of input iteration order**
  (lists, shuffles, even ``set`` views — the TNT003 contract, tested
  dynamically instead of statically);
* policy **scores are invariant under group-member reordering** wherever
  the policy claims ``symmetric``;
* the partition helpers (`group_sizes`, `iter_partitions`) emit exactly
  the canonical shapes the policies rely on.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.arena import (
    build_policies,
    group_sizes,
    iter_partitions,
    registered_keys,
    validate_cover,
)
from repro.arena.policies import MarginHeadroomPolicy
from repro.arena.schedule import Schedule
from repro.core.policies import (
    DroopPolicy,
    HybridPolicy,
    IPCPolicy,
    RandomPolicy,
    StallRatioPolicy,
)
from repro.errors import SchedulingError

from tests.arena.conftest import FakeOracle

#: Program-name universe for generated pools (names are opaque to the
#: fake oracle; real SPEC names keep failures readable).
UNIVERSE = (
    "astar", "bzip2", "gamess", "gcc", "lbm", "libquantum",
    "mcf", "milc", "namd", "povray", "sjeng", "sphinx",
)

pools = st.lists(
    st.sampled_from(UNIVERSE), min_size=2, max_size=8, unique=True
).map(tuple)
core_counts = st.integers(min_value=2, max_value=5)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
policy_keys = st.sampled_from(registered_keys())


class TestCoverContract:
    @settings(max_examples=60, deadline=None)
    @given(key=policy_keys, pool=pools, n_cores=core_counts, seed=seeds)
    def test_propose_is_permutation_complete_cover(
        self, key, pool, n_cores, seed
    ):
        policy = build_policies([key])[0]
        schedule = policy.propose(pool, n_cores, FakeOracle(), seed)
        validate_cover(schedule, pool)
        assert schedule.policy == key
        assert schedule.n_cores == n_cores
        # Same number of supplies as the canonical shape; sizes may be
        # balanced differently (IPC packing levels its bins) but never
        # beyond the core count — validate_cover enforces the rest.
        assert len(schedule.groups) == len(group_sizes(len(pool), n_cores))
        # Canonicalization must preserve the cover.
        validate_cover(schedule.canonical(), pool)

    @settings(max_examples=30, deadline=None)
    @given(key=policy_keys, n_cores=core_counts, seed=seeds)
    def test_degenerate_pools_rejected(self, key, n_cores, seed):
        policy = build_policies([key])[0]
        with pytest.raises(SchedulingError):
            policy.propose(("mcf",), n_cores, FakeOracle(), seed)
        with pytest.raises(SchedulingError):
            policy.propose(("mcf", "mcf"), n_cores, FakeOracle(), seed)


class TestDeterminism:
    @settings(max_examples=40, deadline=None)
    @given(key=policy_keys, pool=pools, n_cores=core_counts, seed=seeds)
    def test_propose_bit_identical_for_equal_seeds(
        self, key, pool, n_cores, seed
    ):
        """Same seed, same schedule — fresh or reused instance alike."""
        reused = build_policies([key])[0]
        fresh = build_policies([key])[0]
        first = reused.propose(pool, n_cores, FakeOracle(), seed)
        again = reused.propose(pool, n_cores, FakeOracle(), seed)
        other = fresh.propose(pool, n_cores, FakeOracle(), seed)
        assert first == again == other

    @settings(max_examples=40, deadline=None)
    @given(
        key=policy_keys,
        pool=pools,
        n_cores=core_counts,
        seed=seeds,
        data=st.data(),
    )
    def test_propose_independent_of_input_order(
        self, key, pool, n_cores, seed, data
    ):
        """The dynamic TNT003 check: iteration order never leaks in."""
        policy = build_policies([key])[0]
        baseline = policy.propose(pool, n_cores, FakeOracle(), seed)
        shuffled = data.draw(st.permutations(list(pool)))
        assert (
            policy.propose(tuple(shuffled), n_cores, FakeOracle(), seed)
            == baseline
        )
        # A set's iteration order varies with PYTHONHASHSEED; the
        # proposal must not.
        assert (
            policy.propose(set(pool), n_cores, FakeOracle(), seed)
            == baseline
        )


#: Core scorers claiming symmetry (RandomPolicy claims the opposite and
#: is exercised by tests/arena/test_random_seeds.py instead).
SYMMETRIC_SCORERS = (
    DroopPolicy(),
    IPCPolicy(),
    HybridPolicy(1.0),
    StallRatioPolicy(),
    MarginHeadroomPolicy(0.5),
)


class TestSymmetryClaims:
    def test_flags_match_registry(self):
        claims = {
            key: build_policies([key])[0].symmetric
            for key in registered_keys()
        }
        assert claims == {
            "droop": True,
            "dvfs-margin": True,
            "hybrid": True,
            "ipc": True,
            "ipc-packing": True,
            "random": False,
            "random-n": False,
            "stall": True,
        }
        assert not RandomPolicy().symmetric

    @settings(max_examples=40, deadline=None)
    @given(
        pool=st.lists(
            st.sampled_from(UNIVERSE), min_size=2, max_size=4, unique=True
        ),
        data=st.data(),
    )
    def test_symmetric_scores_invariant_under_reordering(self, pool, data):
        """Where a policy claims symmetry, member order must not move
        its score (given a symmetric oracle — the harness guarantees
        one by canonicalizing every query)."""
        oracle = FakeOracle()
        group = tuple(pool)
        permuted = tuple(data.draw(st.permutations(list(group))))
        for scorer in SYMMETRIC_SCORERS:
            assert scorer.symmetric
            assert scorer.score_group(permuted, oracle) == scorer.score_group(
                group, oracle
            )


class TestGroupSizes:
    @settings(max_examples=80, deadline=None)
    @given(
        n_programs=st.integers(min_value=1, max_value=48),
        n_cores=st.integers(min_value=2, max_value=6),
    )
    def test_shapes(self, n_programs, n_cores):
        sizes = group_sizes(n_programs, n_cores)
        assert sum(sizes) == n_programs
        assert all(1 <= size <= n_cores for size in sizes)
        assert sum(1 for size in sizes if size < n_cores) <= 1
        assert len(sizes) == math.ceil(n_programs / n_cores)

    def test_validation(self):
        with pytest.raises(SchedulingError):
            group_sizes(4, 1)
        with pytest.raises(SchedulingError):
            group_sizes(0, 2)


class TestPartitionEnumeration:
    @settings(max_examples=30, deadline=None)
    @given(
        pool=st.lists(
            st.sampled_from(UNIVERSE), min_size=2, max_size=7, unique=True
        ).map(tuple),
        n_cores=st.integers(min_value=2, max_value=4),
    )
    def test_partitions_are_unique_canonical_covers(self, pool, n_cores):
        partitions = list(iter_partitions(pool, n_cores))
        assert len(set(partitions)) == len(partitions)
        expected_sizes = sorted(group_sizes(len(pool), n_cores))
        for groups in partitions:
            schedule = Schedule(policy="x", n_cores=n_cores, groups=groups)
            validate_cover(schedule, pool)
            assert sorted(len(g) for g in groups) == expected_sizes
            # Emitted already canonical: no permutation is revisited.
            assert schedule.canonical() == schedule

    @pytest.mark.parametrize(
        "n_programs, expected",
        [(2, 1), (4, 3), (6, 15), (8, 105)],
    )
    def test_pair_partition_count_is_double_factorial(
        self, n_programs, expected
    ):
        """(n-1)!! perfect matchings of an even pool on 2 cores."""
        pool = UNIVERSE[:n_programs]
        assert sum(1 for _ in iter_partitions(pool, 2)) == expected

    def test_repeated_programs_rejected(self):
        with pytest.raises(SchedulingError):
            list(iter_partitions(("mcf", "mcf", "lbm", "lbm"), 2))


class TestCanonicalForm:
    @settings(max_examples=40, deadline=None)
    @given(
        key=policy_keys, pool=pools, n_cores=core_counts, seed=seeds
    )
    def test_canonical_is_idempotent_and_sorted(
        self, key, pool, n_cores, seed
    ):
        policy = build_policies([key])[0]
        schedule = policy.propose(pool, n_cores, FakeOracle(), seed)
        canonical = schedule.canonical()
        assert canonical.canonical() == canonical
        assert list(canonical.groups) == sorted(
            tuple(sorted(g)) for g in schedule.groups
        )
