"""Regenerate the golden regression fixtures.

Run from the repository root::

    PYTHONPATH=src python tests/measurement/golden/regenerate.py

Each fixture is one small-window run record (see
``repro.measurement.record``) plus the campaign inputs that produced it.
The fixtures pin the complete simulation pipeline — workload synthesis,
core model, PDN transient, droop detection, histogramming — for six
representative points of the paper's protocol:

* ``mcf`` / ``lbm`` — memory-bound (the suite's worst noise offenders),
* ``sjeng`` — branchy control-flow,
* ``tonto`` — strongly phased behavior (Fig. 14),
* ``canneal`` — multi-threaded PARSEC run,
* ``mcf+namd`` and ``sphinx+sphinx`` — the pairing sweep (the latter is
  a SPECrate diagonal point) on the noise-sensitive Proc3 chip.

**Only regenerate after an intentional simulation change**, and say why
in the commit message: the golden test exists to catch *unintentional*
drift.  Records are written with sorted keys and indentation so git
diffs of a regeneration are reviewable field by field.
"""

from __future__ import annotations

import json
import pathlib
import sys

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent

#: (filename stem, config, kind, workloads) — every fixture uses this
#: window and seed so the records stay small and the suite fast.
GOLDEN_N_CYCLES = 2000
GOLDEN_SEED = 0
GOLDEN_RUNS = (
    ("single-mcf-Proc100", "Proc100", "single", ("mcf",)),
    ("single-lbm-Proc100", "Proc100", "single", ("lbm",)),
    ("single-sjeng-Proc100", "Proc100", "single", ("sjeng",)),
    ("single-tonto-Proc100", "Proc100", "single", ("tonto",)),
    ("multithread-canneal-Proc100", "Proc100", "multithread", ("canneal",)),
    ("multiprogram-mcf-namd-Proc3", "Proc3", "multiprogram", ("mcf", "namd")),
    (
        "multiprogram-sphinx-sphinx-Proc3",
        "Proc3",
        "multiprogram",
        ("sphinx", "sphinx"),
    ),
)


def regenerate() -> None:
    from repro.measurement.campaign import MeasurementCampaign
    from repro.measurement.record import encode_measurement

    for stem, config, kind, workloads in GOLDEN_RUNS:
        campaign = MeasurementCampaign(
            config, n_cycles=GOLDEN_N_CYCLES, seed=GOLDEN_SEED, jobs=1
        )
        measurement = campaign.measure(*workloads, kind=kind)
        fixture = {
            "campaign": {
                "config": config,
                "n_cycles": GOLDEN_N_CYCLES,
                "seed": GOLDEN_SEED,
            },
            "record": encode_measurement(measurement),
        }
        path = GOLDEN_DIR / f"{stem}.json"
        path.write_text(
            json.dumps(fixture, sort_keys=True, indent=1) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {path.relative_to(GOLDEN_DIR.parent.parent.parent)}")


if __name__ == "__main__":
    sys.exit(regenerate())
