"""Fig. 7 — cumulative distribution of voltage samples across the suite.

Paper (Proc100, 881 runs): run-time droops reach 9.6 % — so the 14 %
worst-case margin is not gratuitous — but the overwhelming bulk of samples
sits within +/-4 % of nominal ("typical case"); only ~0.06 % of samples
fall beyond the -4 % line.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.context import (
    get_campaign,
    parsec_names,
    spec_names,
    window_cycles,
)

TYPICAL_MARGIN = 0.04


def run(quick: bool = False, config: str = "Proc100") -> ExperimentResult:
    campaign = get_campaign(config, n_cycles=window_cycles(quick))
    runs = campaign.all_runs(spec_names(quick), parsec_names(quick))
    merged = runs[0].histogram
    for measurement in runs[1:]:
        merged = merged.merge(measurement.histogram)

    max_droop = max(r.max_droop for r in runs)
    max_overshoot = max(r.max_overshoot for r in runs)
    beyond_typical = merged.fraction_below(-TYPICAL_MARGIN)

    result = ExperimentResult(
        experiment_id="Fig. 7",
        title=f"Voltage-sample distribution, {len(runs)} runs on {config}",
        columns=("quantity", "value"),
    )
    result.add_row("runs", len(runs))
    result.add_row("max droop (%)", 100 * max_droop)
    result.add_row("max overshoot (%)", 100 * max_overshoot)
    result.add_row("samples beyond -4% (%)", 100 * beyond_typical)
    result.add_row("1% quantile (%)", 100 * merged.quantile(0.01))
    result.add_row("99% quantile (%)", 100 * merged.quantile(0.99))
    deviations, cumulative = merged.cdf()
    result.series["cdf_deviations"] = deviations
    result.series["cdf_cumulative"] = cumulative
    result.series["histogram"] = merged
    result.series["max_droop"] = max_droop
    result.series["beyond_typical"] = beyond_typical
    result.notes.append(
        "paper: max droop 9.6%, bulk within +/-4%, 0.06% beyond -4% "
        "(finite simulated windows under-sample the deepest tail)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=True).format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
