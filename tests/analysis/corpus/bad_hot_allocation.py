"""Known bug: rebuilds the filter-tap mapping once per simulated cycle.

The taps never change inside a run; allocating a fresh dict per cycle
churns the allocator right on the hot path instead of hoisting the
container out of the loop.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def simulate(
    n_cycles: int, weights: Sequence[object]
) -> List[Dict[object, object]]:
    kernels = [dict(weights) for cycle in range(n_cycles)]  # expect: PERF004
    return kernels
