"""Known bug: runs the PDN's IIR filter once per stimulus in a loop.

``sosfilt`` amortizes beautifully over a stacked batch; calling it per
trace pays the call overhead and the filter warm-up once per iteration
instead of once per campaign.
"""

from __future__ import annotations

from typing import List, Sequence

from scipy import signal


def simulate(
    sos: Sequence[float],
    currents: Sequence[Sequence[float]],
    out: List[object],
) -> List[object]:
    for index, current in enumerate(currents):
        out[index] = signal.sosfilt(sos, current)  # expect: PERF003
    return out
