"""Fig. 17 — droop variance across single-core and dual-core schedules.

Paper (Proc3): for each benchmark, the box of droop counts when it is
co-scheduled with every other program spans a wide range; circles mark
single-core droops, triangles mark SPECrate (self-paired).  Destructive
interference exists — parts of most boxes fall at or below the single-core
level — and in over half the co-schedules there is room to do better than
the SPECrate baseline.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.experiments.context import get_campaign, spec_names, window_cycles


def run(quick: bool = False, config: str = "Proc3") -> ExperimentResult:
    campaign = get_campaign(config, n_cycles=window_cycles(quick))
    names = spec_names(quick)

    # One executor fan-out for the whole figure: all singles plus the
    # full pairing matrix (the diagonal doubles as the SPECrate runs).
    n = len(names)
    runs = campaign.measure_specs(
        [campaign.run_spec(a, kind="single") for a in names]
        + [
            campaign.run_spec(a, b, kind="multiprogram")
            for a in names
            for b in names
        ]
    )

    single: Dict[str, float] = {
        a: run.droop_samples_per_1k for a, run in zip(names, runs[:n])
    }
    specrate: Dict[str, float] = {}
    boxes: Dict[str, np.ndarray] = {}
    for i, a in enumerate(names):
        row = runs[n + i * n : n + (i + 1) * n]
        boxes[a] = np.array([r.droop_samples_per_1k for r in row])
        specrate[a] = row[i].droop_samples_per_1k

    result = ExperimentResult(
        experiment_id="Fig. 17",
        title=f"Droops/1K per benchmark across all co-schedules ({config})",
        columns=("benchmark", "single-core", "SPECrate", "box min",
                 "box median", "box max"),
    )
    for a in names:
        result.add_row(
            a,
            single[a],
            specrate[a],
            float(boxes[a].min()),
            float(np.median(boxes[a])),
            float(boxes[a].max()),
        )
    result.series["single"] = single
    result.series["specrate"] = specrate
    result.series["boxes"] = boxes

    below_single = sum(
        1 for a in names if boxes[a].min() <= single[a] * 1.05
    )
    below_specrate = float(np.mean([
        (boxes[a] < specrate[a]).mean() for a in names
    ]))
    result.series["benchmarks_with_destructive"] = below_single
    result.series["fraction_below_specrate"] = below_specrate
    result.notes.append(
        f"{below_single}/{len(names)} benchmarks have co-schedules at or "
        f"below their single-core droop level; {100 * below_specrate:.0f}% "
        "of co-schedules beat the SPECrate baseline (paper: over half)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=True).format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
