"""Impedance-profile construction and analysis (paper Fig. 4).

The paper validates its measurement setup by reconstructing the platform's
impedance profile with a current-modulating software loop and comparing it
against Intel VTT-tool data: the profile must peak in the 100–200 MHz
resonance band and, between 1 and 10 MHz, a capacitor-depleted package must
show roughly 5x the impedance of the stock one.

:class:`ImpedanceProfile` wraps a frequency sweep of a
:class:`~repro.pdn.network.PowerDeliveryNetwork` with the analysis used by
the figure: peak/resonance detection, band queries and normalization
(the paper plots impedance relative to its 1 MHz value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import units
from repro.errors import ConfigurationError, MeasurementError
from repro.pdn.network import PowerDeliveryNetwork


@dataclass(frozen=True)
class ResonancePeak:
    """A local maximum of the impedance magnitude."""

    frequency_hz: float
    impedance_ohm: float


class ImpedanceProfile:
    """Impedance magnitude versus frequency for one PDN configuration.

    Parameters
    ----------
    frequencies_hz:
        Strictly increasing, strictly positive sweep points.
    magnitudes_ohm:
        Impedance magnitude at each sweep point.
    label:
        Optional label for reports (e.g. ``"Proc100"``).
    """

    def __init__(
        self,
        frequencies_hz: np.ndarray,
        magnitudes_ohm: np.ndarray,
        label: str = "",
    ) -> None:
        frequencies = np.asarray(frequencies_hz, dtype=float)
        magnitudes = np.asarray(magnitudes_ohm, dtype=float)
        if frequencies.ndim != 1 or frequencies.size < 2:
            raise ConfigurationError("need a 1-D sweep of at least two points")
        if frequencies.shape != magnitudes.shape:
            raise ConfigurationError("frequency and magnitude shapes differ")
        if np.any(frequencies <= 0) or np.any(np.diff(frequencies) <= 0):
            raise ConfigurationError("frequencies must be positive and increasing")
        if np.any(magnitudes < 0):
            raise ConfigurationError("impedance magnitudes must be non-negative")
        self._frequencies = frequencies
        self._magnitudes = magnitudes
        self.label = label

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_network(
        cls,
        network: PowerDeliveryNetwork,
        f_min_hz: float = 10 * units.KILO_HERTZ,
        f_max_hz: float = 1.0 * units.GIGA_HERTZ,
        points_per_decade: int = 40,
        label: str = "",
    ) -> "ImpedanceProfile":
        """Sweep a network's driving-point impedance on a log grid."""
        if not 0 < f_min_hz < f_max_hz:
            raise ConfigurationError("need 0 < f_min < f_max")
        decades = np.log10(f_max_hz / f_min_hz)
        n_points = max(int(round(decades * points_per_decade)) + 1, 2)
        frequencies = np.logspace(
            np.log10(f_min_hz), np.log10(f_max_hz), n_points
        )
        magnitudes = np.abs(network.impedance(frequencies))
        return cls(frequencies, magnitudes, label=label)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def frequencies_hz(self) -> np.ndarray:
        return self._frequencies.copy()

    @property
    def magnitudes_ohm(self) -> np.ndarray:
        return self._magnitudes.copy()

    def at(self, frequency_hz: float) -> float:
        """Impedance magnitude at ``frequency_hz`` (log-log interpolation)."""
        if not self._frequencies[0] <= frequency_hz <= self._frequencies[-1]:
            raise MeasurementError(
                f"{frequency_hz:g} Hz is outside the swept range "
                f"[{self._frequencies[0]:g}, {self._frequencies[-1]:g}]"
            )
        log_mag = np.interp(
            np.log10(frequency_hz),
            np.log10(self._frequencies),
            np.log10(np.maximum(self._magnitudes, 1e-30)),
        )
        return float(10.0**log_mag)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def peak(
        self,
        f_min_hz: Optional[float] = None,
        f_max_hz: Optional[float] = None,
    ) -> ResonancePeak:
        """The global impedance maximum, optionally restricted to a band."""
        mask = np.ones_like(self._frequencies, dtype=bool)
        if f_min_hz is not None:
            mask &= self._frequencies >= f_min_hz
        if f_max_hz is not None:
            mask &= self._frequencies <= f_max_hz
        if not np.any(mask):
            raise MeasurementError("no sweep points inside the requested band")
        idx = int(np.argmax(np.where(mask, self._magnitudes, -np.inf)))
        return ResonancePeak(
            frequency_hz=float(self._frequencies[idx]),
            impedance_ohm=float(self._magnitudes[idx]),
        )

    def resonance_frequency_hz(self) -> float:
        """Frequency of the dominant (highest-impedance) resonance."""
        return self.peak().frequency_hz

    def normalized_to(self, frequency_hz: float) -> "ImpedanceProfile":
        """Profile divided by its value at ``frequency_hz``.

        The paper's Fig. 4a plots impedance "relative to 1 MHz"; this is
        that transformation.
        """
        reference = self.at(frequency_hz)
        if reference <= 0:
            raise MeasurementError("reference impedance is not positive")
        return ImpedanceProfile(
            self._frequencies,
            self._magnitudes / reference,
            label=self.label,
        )

    def ratio_to(self, other: "ImpedanceProfile", frequency_hz: float) -> float:
        """Impedance ratio ``self/other`` at one frequency.

        Used to check the Fig. 4b claim that a capacitor-depleted package
        shows ~5x the stock impedance around 1 MHz.
        """
        return self.at(frequency_hz) / other.at(frequency_hz)

    def __len__(self) -> int:
        return int(self._frequencies.size)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        peak = self.peak()
        return (
            f"ImpedanceProfile({self.label or 'unlabelled'}, "
            f"{len(self)} points, peak {peak.impedance_ohm / units.MILLI_OHM:.2f} mOhm "
            f"@ {peak.frequency_hz / units.MEGA_HERTZ:.1f} MHz)"
        )
