"""Named workload suites the arena benchmarks policies across.

Suites are fixed, sorted program tuples — part of every scorecard's
identity (and of the golden fixtures under ``tests/arena/golden/``), so
changing a suite's membership is a breaking change to recorded results.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ConfigurationError

#: Suite name -> job pool (sorted, no repeats).
SUITES: Dict[str, Tuple[str, ...]] = {
    # The CLI default: loud memory-bound programs (lbm, mcf) against
    # the phased Fig. 14 pair (gamess, sphinx) — small enough for
    # exhaustive regret, spread enough that placement matters.
    "micro": ("gamess", "lbm", "mcf", "sphinx"),
    # Eight programs across the noise spectrum: enough structure for
    # 4-core placements to differ, small enough for exhaustive regret.
    "noise": (
        "gamess", "lbm", "libquantum", "mcf",
        "namd", "povray", "sjeng", "sphinx",
    ),
    # The quick-experiment subset (10 programs; see experiments.context).
    "quick": (
        "astar", "gamess", "lbm", "libquantum", "mcf",
        "namd", "povray", "sjeng", "sphinx", "tonto",
    ),
}


def suite_names() -> Tuple[str, ...]:
    """Registered suite names, sorted."""
    return tuple(sorted(SUITES))


def suite_programs(name: str) -> Tuple[str, ...]:
    """The job pool of one named suite."""
    try:
        return SUITES[name]
    except KeyError:
        known = ", ".join(suite_names())
        raise ConfigurationError(
            f"unknown suite {name!r}; choose from: {known}"
        ) from None
