"""The simulated performance-counter interface.

The paper reads hardware counters through VTune: total cycles, retired
instructions, and a "stall ratio" event — the fraction of cycles the
pipeline is waiting (reservation-station / reorder-buffer drain due to long
latency operations, L2 misses, branch mispredictions...).  Stall ratio is
the paper's key software-visible proxy for voltage noise (Fig. 15 finds a
0.97 linear correlation with droop counts), and IPC is the throughput
metric its scheduling baseline optimizes.

:class:`PerformanceCounters` is that counter file; the core model populates
it from realized activity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.errors import ConfigurationError
from repro.uarch.events import StallEvent

#: Activity threshold below which a cycle is counted as stalled.  The
#: hardware event the paper uses counts cycles where the back end makes no
#: progress; with activity normalized to [0, 1] this is a natural cut.
STALL_ACTIVITY_THRESHOLD = 0.5


@dataclass(frozen=True)
class PerformanceCounters:
    """A snapshot of one core's counters over one measured interval."""

    cycles: int
    instructions: float
    stall_cycles: int
    event_counts: Mapping[StallEvent, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ConfigurationError("cycles must be positive")
        if self.instructions < 0:
            raise ConfigurationError("instructions must be non-negative")
        if not 0 <= self.stall_cycles <= self.cycles:
            raise ConfigurationError(
                "stall_cycles must lie within [0, cycles]"
            )

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        return self.instructions / self.cycles

    @property
    def stall_ratio(self) -> float:
        """Fraction of cycles the pipeline was stalled (the Fig. 15 metric)."""
        return self.stall_cycles / self.cycles

    def event_count(self, event: StallEvent) -> int:
        return int(self.event_counts.get(event, 0))

    def merged_with(self, other: "PerformanceCounters") -> "PerformanceCounters":
        """Aggregate two intervals (e.g. consecutive windows)."""
        counts: Dict[StallEvent, int] = {}
        for ev in StallEvent:
            total = self.event_count(ev) + other.event_count(ev)
            if total:
                counts[ev] = total
        return PerformanceCounters(
            cycles=self.cycles + other.cycles,
            instructions=self.instructions + other.instructions,
            stall_cycles=self.stall_cycles + other.stall_cycles,
            event_counts=counts,
        )
