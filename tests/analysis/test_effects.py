"""Effect-inference tests: intrinsic atoms, fixpoint, pinned contract.

The last class is the repository's reproducibility contract stated as
an effect query: the closure of ``run.simulate``
(:meth:`MeasurementCampaign.simulate`, the function every pool worker
ultimately calls) must be wall-clock-free and construct random streams
only by derivation — the static counterpart of the bit-identical
campaign tests in tests/measurement/.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.flow.effects import (
    GLOBAL_WRITE,
    IO,
    PURE,
    READS_CLOCK,
    READS_ENV,
    RNG_DERIVED,
    RNG_UNSEEDED,
    UNORDERED_ITERATION,
    effects_for_sources,
    effects_report,
)

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def table_for(source: str):
    return effects_for_sources({"proj/mod.py": source})


class TestIntrinsicAtoms:
    def test_wall_clock(self):
        table = table_for(
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        )
        assert table.function_effects("mod.stamp") == {READS_CLOCK}

    def test_monotonic_is_not_the_clock_effect(self):
        """Interval timing is sanctioned; only wall-clock is the effect."""
        table = table_for(
            "import time\n"
            "def span():\n"
            "    return time.perf_counter()\n"
        )
        assert table.function_effects("mod.span") == PURE

    def test_rng_unseeded_vs_derived(self):
        table = table_for(
            "import numpy as np\n"
            "def fresh():\n"
            "    return np.random.default_rng()\n"
            "def seeded(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        assert table.function_effects("mod.fresh") == {RNG_UNSEEDED}
        assert table.function_effects("mod.seeded") == {RNG_DERIVED}

    def test_seed_sequence_is_derivation_not_entropy(self):
        """``SeedSequence(material)`` spreads seeds; it draws nothing."""
        table = table_for(
            "import numpy as np\n"
            "def spawn(seed):\n"
            "    seq = np.random.SeedSequence(seed)\n"
            "    return np.random.default_rng(seq)\n"
        )
        assert table.function_effects("mod.spawn") == {RNG_DERIVED}

    def test_env_and_io(self):
        table = table_for(
            "import os\n"
            "def who():\n"
            "    return os.environ.get('USER')\n"
            "def log(msg):\n"
            "    print(msg)\n"
        )
        assert table.function_effects("mod.who") == {READS_ENV}
        assert table.function_effects("mod.log") == {IO}

    def test_global_write(self):
        table = table_for(
            "COUNT = 0\n"
            "def bump():\n"
            "    global COUNT\n"
            "    COUNT = COUNT + 1\n"
        )
        assert table.function_effects("mod.bump") == {GLOBAL_WRITE}

    def test_unordered_iteration(self):
        table = table_for(
            "def spread(hi):\n"
            "    vals = {hi, hi * 0.5}\n"
            "    return [v for v in vals]\n"
        )
        assert table.function_effects("mod.spread") == {
            UNORDERED_ITERATION
        }


class TestFixpoint:
    def test_effects_propagate_through_call_chain(self):
        table = table_for(
            "import time\n"
            "def leaf():\n"
            "    return time.time()\n"
            "def mid():\n"
            "    return leaf()\n"
            "def top():\n"
            "    return mid()\n"
        )
        assert READS_CLOCK in table.function_effects("mod.top")

    def test_declared_effects_are_a_trusted_boundary(self):
        """Callee effects do not flow through a pinned function."""
        table = table_for(
            "def noisy():\n"
            "    print('hi')\n"
            "def quiet():  # simlint: effects(pure)\n"
            "    noisy()\n"
            "def caller():\n"
            "    return quiet()\n"
        )
        assert table.function_effects("mod.quiet") == PURE
        assert table.function_effects("mod.caller") == PURE
        assert table.declared == {"mod.quiet": PURE}

    def test_declared_unknown_atom_degrades_not_crashes(self):
        table = table_for(
            "def f():  # simlint: effects(io, not-an-atom)\n"
            "    pass\n"
        )
        assert table.function_effects("mod.f") == {IO}

    def test_recursion_terminates(self):
        table = table_for(
            "import time\n"
            "def ping(n):\n"
            "    time.time()\n"
            "    return pong(n - 1)\n"
            "def pong(n):\n"
            "    return ping(n) if n else 0\n"
        )
        assert table.function_effects("mod.pong") == {READS_CLOCK}


class TestResolveAndClosures:
    SOURCE = (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "import time\n"
        "class Runner:\n"
        "    def simulate(self, spec):\n"
        "        return helper(spec)\n"
        "def helper(spec):\n"
        "    return spec\n"
        "def stamped(spec):\n"
        "    return time.time()\n"
        "def dispatch(specs):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return list(pool.map(stamped, specs))\n"
    )

    def test_resolve_suffix_and_bare(self):
        table = table_for(self.SOURCE)
        assert table.resolve("mod.Runner.simulate") == "mod.Runner.simulate"
        assert table.resolve("Runner.simulate") == "mod.Runner.simulate"
        assert table.resolve("helper") == "mod.helper"

    def test_resolve_unknown_and_ambiguous_raise(self):
        table = table_for(self.SOURCE)
        with pytest.raises(KeyError):
            table.resolve("nonexistent")
        two = effects_for_sources(
            {
                "proj/a.py": "def dup():\n    pass\n",
                "proj/b.py": "def dup():\n    pass\n",
            }
        )
        with pytest.raises(KeyError):
            two.resolve("dup")

    def test_named_closure_joins_members(self):
        table = table_for(self.SOURCE)
        functions, joined = table.closure("Runner.simulate")
        assert functions == ["mod.Runner.simulate", "mod.helper"]
        assert joined == PURE

    def test_worker_closure_covers_dispatch_payloads(self):
        table = table_for(self.SOURCE)
        functions, joined = table.worker_closure()
        assert functions == ["mod.stamped"]
        assert joined == {READS_CLOCK}

    def test_report_shape(self):
        table = table_for(self.SOURCE)
        report = effects_report(table, closures=("Runner.simulate",))
        assert report["version"] == 1
        assert report["worker_entries"] == ["mod.stamped"]
        assert report["worker_closure"]["effects"] == [READS_CLOCK]
        named = report["closures"]["Runner.simulate"]
        assert named["entry"] == "mod.Runner.simulate"
        assert named["effects"] == []


@pytest.fixture(scope="module")
def src_table():
    sources = {
        str(path): path.read_text(encoding="utf-8")
        for path in sorted(SRC.rglob("*.py"))
    }
    return effects_for_sources(sources)


class TestReproducibilityContract:
    """The bit-identical contract, proven over the real source tree."""

    def test_run_simulate_closure_is_clock_free_derived_rng_only(
        self, src_table
    ):
        functions, joined = src_table.closure("MeasurementCampaign.simulate")
        assert len(functions) > 1, "closure unexpectedly trivial"
        assert READS_CLOCK not in joined
        assert RNG_UNSEEDED not in joined
        assert READS_ENV not in joined
        assert IO not in joined
        assert RNG_DERIVED in joined

    def test_worker_closure_never_reads_the_wall_clock(self, src_table):
        functions, joined = src_table.worker_closure()
        assert functions, "no pool dispatch found in src/repro"
        assert READS_CLOCK not in joined
        assert RNG_UNSEEDED not in joined
        assert GLOBAL_WRITE not in joined

    def test_worker_entry_is_the_executor_payload(self, src_table):
        report = effects_report(src_table)
        assert report["worker_entries"] == [
            "repro.measurement.executor._simulate_record"
        ]
