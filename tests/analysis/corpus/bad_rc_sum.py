"""Known bug: totals a decap bank by summing R with C.

The effective series resistance and the capacitance of a decap stage
live in different dimensions; adding them is the classic transcription
slip when porting board-level spreadsheets into the PDN model.
"""

from __future__ import annotations

from repro import units

STAGE_ESR_OHMS = 1.2 * units.MILLI_OHM
STAGE_CAPACITANCE_FARADS = 100.0 * units.MICRO_FARAD


def stage_budget(n_stages: int) -> float:
    per_stage = STAGE_ESR_OHMS + STAGE_CAPACITANCE_FARADS  # expect: DIM001
    return n_stages * per_stage
