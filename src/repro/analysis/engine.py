"""The simlint engine: file walking, AST dispatch, suppressions.

The engine parses each file once, builds a :class:`FileContext` (source
lines, an import-alias table so rules can resolve ``np.random.seed`` to
``numpy.random.seed``), runs every rule's module hook, then walks the
tree dispatching each node to the rules that registered interest in its
type.  Findings on lines carrying a matching ``# simlint: disable=CODE``
comment are dropped before reporting.
"""

from __future__ import annotations

import ast
import fnmatch
import os
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.flow.cache import LintCache

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, all_rules

#: ``# simlint: disable`` (everything) or ``# simlint: disable=A,B``.
_DISABLE_RE = re.compile(
    r"#\s*simlint\s*:\s*disable(?:-file)?\s*(?:=\s*([A-Z0-9_,\s]+))?"
)
_DISABLE_FILE_RE = re.compile(
    r"#\s*simlint\s*:\s*disable-file\s*(?:=\s*([A-Z0-9_,\s]+))?"
)

#: Rule code used for unparseable files.
PARSE_ERROR_CODE = "SIM000"


@dataclass
class FileContext:
    """Everything rules may need about the file under analysis."""

    path: str
    source: str
    lines: List[str]
    tree: ast.Module
    #: Local name -> fully dotted origin, e.g. ``{"np": "numpy"}`` or
    #: ``{"default_rng": "numpy.random.default_rng"}``.
    imports: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, path: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        ctx = cls(
            path=path,
            source=source,
            lines=source.splitlines(),
            tree=tree,
        )
        ctx._collect_imports()
        return ctx

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else local
                    self.imports[local] = origin
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports stay unresolved
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.imports[local] = f"{node.module}.{alias.name}"

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """``np.random.seed`` -> ``"numpy.random.seed"`` (via aliases)."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.imports.get(node.id, node.id))
        return ".".join(reversed(parts))

    def source_line(self, lineno: int) -> str:
        """Stripped text of a 1-based source line ('' out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(
        self,
        rule: Rule,
        node: ast.AST,
        message: str,
        line: Optional[int] = None,
        column: Optional[int] = None,
    ) -> Finding:
        """Build a finding for ``node`` on behalf of ``rule``."""
        lineno = line if line is not None else getattr(node, "lineno", 1)
        col = column if column is not None else getattr(node, "col_offset", 0)
        return Finding(
            code=rule.code,
            message=message,
            path=self.path,
            line=lineno,
            column=col,
            severity=rule.severity,
            source_line=self.source_line(lineno),
        )

    # -- suppressions ---------------------------------------------------------

    def _disabled_codes(self, text: str, pattern: re.Pattern) -> Optional[set]:
        match = pattern.search(text)
        if match is None:
            return None
        if match.group(1) is None:
            return set()  # blanket disable
        return {c.strip() for c in match.group(1).split(",") if c.strip()}

    def is_suppressed(self, finding: Finding) -> bool:
        """True if an inline or file-level comment disables the code."""
        codes = self._disabled_codes(
            self.source_line(finding.line), _DISABLE_RE
        )
        if codes is not None and (not codes or finding.code in codes):
            return True
        for text in self.lines:
            codes = self._disabled_codes(text, _DISABLE_FILE_RE)
            if codes is not None and (not codes or finding.code in codes):
                return True
        return False


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one module's source text; returns sorted, unsuppressed findings."""
    active = list(rules) if rules is not None else all_rules()
    try:
        ctx = FileContext.from_source(source, path)
    except SyntaxError as exc:
        return [
            Finding(
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                column=(exc.offset or 1) - 1,
                severity=Severity.ERROR,
            )
        ]

    dispatch: Dict[type, List[Rule]] = {}
    for rule in active:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)

    findings: List[Finding] = []
    for rule in active:
        findings.extend(rule.check_module(ctx.tree, ctx))
    for node in ast.walk(ctx.tree):
        for rule in dispatch.get(type(node), ()):
            findings.extend(rule.check(node, ctx))

    findings = [f for f in findings if not ctx.is_suppressed(f)]
    findings.sort(key=lambda f: (f.line, f.column, f.code))
    return findings


def _is_excluded(path: str, exclude: Sequence[str]) -> bool:
    normalized = path.replace(os.sep, "/")
    return any(fnmatch.fnmatch(normalized, pattern) for pattern in exclude)


def iter_python_files(
    paths: Iterable[str], exclude: Sequence[str] = ()
) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths.

    ``exclude`` patterns are fnmatch globs matched against the full
    slash-normalized path (``"*/fixtures/*"`` skips fixture trees).
    """
    for path in paths:
        if os.path.isfile(path):
            if not _is_excluded(path, exclude):
                yield path
            continue
        for root, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    full = os.path.join(root, filename)
                    if not _is_excluded(full, exclude):
                        yield full


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    cache: Optional["LintCache"] = None,
    exclude: Sequence[str] = (),
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    With a ``cache``, per-file results key on the file's content digest
    plus the active rule signature, so unchanged files are never
    re-parsed on warm runs.
    """
    active = list(rules) if rules is not None else all_rules()
    signature = None
    if cache is not None:
        from repro.analysis.flow.cache import rules_signature, source_digest

        signature = rules_signature(
            rule.code for rule in active if not rule.flow
        )
    findings: List[Finding] = []
    for filename in iter_python_files(paths, exclude=exclude):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        if cache is not None:
            key = f"ast:{source_digest(source)}:{filename}:{signature}"
            cached = cache.get(key)
            if cached is None:
                cached = lint_source(source, path=filename, rules=active)
                cache.put(key, cached)
            findings.extend(cached)
        else:
            findings.extend(lint_source(source, path=filename, rules=active))
    return findings
