"""Extension bench: open-loop vs closed-loop emergency throttling."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import ext_throttle


def test_ext_throttle(benchmark, quick):
    result = run_once(benchmark, lambda: ext_throttle.run(quick=quick))
    raw = np.mean(result.series["raw_events"])
    open_events = np.mean(result.series["open_events"])
    closed_events = np.mean(result.series["closed_events"])
    open_loss = np.mean(result.series["open_loss"])
    closed_loss = np.mean(result.series["closed_loss"])

    # Both schemes reduce droop events.
    assert open_events < raw
    assert closed_events <= raw
    # Open-loop ramping is ruinously expensive (the burst cadence sits on
    # the package resonance); closed-loop costs a fraction of it.
    assert open_loss > 0.2
    assert closed_loss < 0.5 * open_loss
    assert closed_loss < 0.18
    # Per unit of throughput sacrificed, the voltage-guided throttle is
    # the better deal.
    open_efficiency = (raw - open_events) / raw / max(open_loss, 1e-9)
    closed_efficiency = (raw - closed_events) / raw / max(closed_loss, 1e-9)
    assert closed_efficiency > open_efficiency
    print("\n" + result.format_table())
