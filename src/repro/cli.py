"""Command-line interface for the experiment harnesses.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig08
    python -m repro.cli run tab1 --full
    python -m repro.cli run all

Each experiment prints the reproduced figure/table rows plus its
paper-vs-measured notes.  ``--full`` switches from the quick subsets to
the paper's full protocol sizes (slower).
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from typing import Dict

#: Short alias -> experiment module name.
EXPERIMENTS: Dict[str, str] = {
    "fig01": "fig01_scaling_trends",
    "fig02": "fig02_margin_frequency",
    "fig04": "fig04_impedance",
    "sec2c": "sec2c_margin_discovery",
    "fig05": "fig05_reset_droops",
    "fig06": "fig06_decap_swings",
    "fig07": "fig07_typical_case_cdf",
    "fig08": "fig08_margin_sweep",
    "fig09": "fig09_future_cdf",
    "fig10": "fig10_heatmaps",
    "fig11": "fig11_tlb_trace",
    "fig12": "fig12_event_swings",
    "fig13": "fig13_event_interference",
    "fig14": "fig14_noise_phases",
    "fig15": "fig15_stall_correlation",
    "fig16": "fig16_sliding_window",
    "fig17": "fig17_droop_variance",
    "tab1": "tab1_specrate_pass",
    "fig18": "fig18_policy_scatter",
    "fig19": "fig19_pass_increase",
    "ext-split": "ext_split_supply",
    "ext-online": "ext_online_scheduler",
    "ext-throttle": "ext_throttle",
    "ext-cores": "ext_core_count",
}

#: One-line description per experiment, shown by ``list``.
DESCRIPTIONS: Dict[str, str] = {
    "fig01": "projected voltage swings across technology nodes",
    "fig02": "peak frequency vs operating margin per node",
    "fig04": "platform impedance profiles (stock vs reduced caps)",
    "sec2c": "worst-case margin discovery by undervolting",
    "fig05": "reset droop response across Proc100..Proc0",
    "fig06": "normalized pk-pk swings vs package capacitance",
    "fig07": "typical-case voltage-sample distribution (Proc100)",
    "fig08": "improvement vs margin per recovery cost (Proc100)",
    "fig09": "sample distributions on future nodes (Proc25/Proc3)",
    "fig10": "improvement heat maps per decap configuration",
    "fig11": "TLB-miss overshoot spikes on the VRM ripple",
    "fig12": "single-core stall-event swings",
    "fig13": "cross-core event interference matrix",
    "fig14": "voltage-noise phases (sphinx/gamess/tonto)",
    "fig15": "droops vs stall ratio across CPU2006",
    "fig16": "sliding-window co-schedule of astar",
    "fig17": "droop variance across co-schedules",
    "tab1": "SPECrate typical-case analysis at optimal margins",
    "fig18": "scheduling-policy scatter vs SPECrate",
    "fig19": "increase in passing schedules from scheduling",
    "ext-split": "extension: split vs connected core supplies",
    "ext-online": "extension: online learned noise-aware scheduling",
    "ext-throttle": "extension: open- vs closed-loop emergency throttling",
    "ext-cores": "extension: noise vs number of active cores",
}


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for campaign simulation (default: "
        "$REPRO_JOBS or 1; parallel runs are bit-identical to serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persistent result-cache directory (default: $REPRO_CACHE_DIR "
        "or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache (always re-simulate)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the figures/tables of the Voltage Smoothing "
        "paper (MICRO 2010).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    report = sub.add_parser(
        "report", help="run everything and write a markdown report"
    )
    report.add_argument(
        "--output", default="REPORT.md", help="report file path"
    )
    report.add_argument(
        "--full", action="store_true",
        help="use the full protocol sizes instead of quick subsets",
    )
    _add_execution_arguments(report)
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help="experiment alias (see 'list'), or 'all'",
    )
    run.add_argument(
        "--full",
        action="store_true",
        help="use the full 881-run protocol sizes instead of quick subsets",
    )
    _add_execution_arguments(run)
    return parser


def _configure_execution(args: argparse.Namespace) -> None:
    from repro.experiments.context import configure_execution
    from repro.measurement.executor import reset_global_stats

    configure_execution(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        no_cache=True if args.no_cache else None,
    )
    # Each CLI invocation reports its own campaign traffic.
    reset_global_stats()


def _print_execution_stats() -> None:
    from repro.experiments.context import shared_cache
    from repro.measurement.executor import format_stats, global_stats

    stats = global_stats()
    if stats.simulated or stats.cache.lookups or stats.memory_hits:
        print(format_stats(stats, shared_cache()))


def _run_one(alias: str, quick: bool) -> None:
    module = importlib.import_module(
        f"repro.experiments.{EXPERIMENTS[alias]}"
    )
    started = time.perf_counter()
    result = module.run(quick=quick)
    elapsed = time.perf_counter() - started
    print(result.format_table())
    print(f"({alias} finished in {elapsed:.1f} s)")
    print()


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(alias) for alias in EXPERIMENTS)
        for alias in EXPERIMENTS:
            print(f"{alias.ljust(width)}  {DESCRIPTIONS[alias]}")
        return 0
    if args.command == "report":
        from repro.reporting import generate_report

        _configure_execution(args)
        generate_report(path=args.output, quick=not args.full)
        print(f"wrote {args.output}")
        return 0
    # command == "run"
    _configure_execution(args)
    target = args.experiment.lower()
    quick = not args.full
    if target == "all":
        for alias in EXPERIMENTS:
            _run_one(alias, quick)
        _print_execution_stats()
        return 0
    if target not in EXPERIMENTS:
        print(
            f"unknown experiment {target!r}; run 'list' to see choices",
            file=sys.stderr,
        )
        return 2
    _run_one(target, quick)
    _print_execution_stats()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
