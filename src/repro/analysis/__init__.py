"""simlint — AST-based invariant checking for the repro codebase.

The reproduction's numbers are only as trustworthy as its invariants:
every stochastic draw must flow from an explicit seed, every physical
constant must be written in SI base units via :mod:`repro.units`, and
simulation code must avoid the classic numerical foot-guns.  This
package enforces those conventions mechanically:

* :mod:`repro.analysis.engine` — single-pass AST visitor engine with
  ``# simlint: disable=CODE`` inline suppressions;
* :mod:`repro.analysis.rules` — the line-rule families (``DET*``
  determinism, ``UNI*`` unit-safety, ``HYG*`` hygiene);
* :mod:`repro.analysis.flow` — the project-wide dataflow engine
  (``DIM*`` interprocedural dimensional analysis, ``CON*``
  concurrency-safety, ``TNT*`` determinism taint, and ``PERF*``
  performance smells from the interprocedural loop-cost model), run
  under ``--flow``;
* :mod:`repro.analysis.hotspots` — the ``simlint hotspots`` join of
  PERF findings against a measured stage profile;
* :mod:`repro.analysis.baseline` — committed grandfather lists, one
  justification string per entry;
* :mod:`repro.analysis.reporters` — text, JSON, and SARIF output;
* :mod:`repro.analysis.cli` — ``python -m repro.analysis`` /
  ``repro-lint``.

Programmatic use::

    from repro.analysis import flow_paths, lint_paths, lint_source
    findings = lint_paths(["src/repro"]) + flow_paths(["src/repro"])
"""

from __future__ import annotations

from repro.analysis.engine import (
    FileContext,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.flow.engine import flow_paths, flow_sources
from repro.analysis.registry import Rule, all_rules, get_rule, register

__all__ = [
    "FileContext",
    "Finding",
    "Rule",
    "Severity",
    "all_rules",
    "flow_paths",
    "flow_sources",
    "get_rule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "register",
]
