"""Unit tests for noise-phase measurement and detection."""

import numpy as np
import pytest

from repro.core.phases import (
    count_phase_changes,
    measure_noise_timeline,
    oscillation_period_intervals,
)
from repro.errors import ConfigurationError
from repro.uarch.chip import Chip
from repro.workloads.spec import spec_benchmark


class TestCountPhaseChanges:
    def test_flat_series_no_changes(self):
        assert count_phase_changes(np.full(50, 100.0), min_shift=20) == 0

    def test_step_series_counts_transitions(self):
        series = np.concatenate([
            np.full(10, 100.0), np.full(10, 60.0),
            np.full(10, 100.0), np.full(10, 60.0),
        ])
        assert count_phase_changes(series, min_shift=20, smooth=1) == 3

    def test_small_wiggles_ignored(self):
        rng = np.random.default_rng(0)
        series = 100 + rng.normal(0, 2, 100)
        assert count_phase_changes(series, min_shift=30) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            count_phase_changes(np.array([]), min_shift=1)
        with pytest.raises(ConfigurationError):
            count_phase_changes(np.array([1.0]), min_shift=0)


class TestOscillationPeriod:
    def test_periodic_series_detected(self):
        t = np.arange(60)
        series = 80 + 20 * np.sign(np.sin(2 * np.pi * t / 10))
        period = oscillation_period_intervals(series)
        assert period is not None
        assert period == pytest.approx(10, abs=2)

    def test_flat_series_none(self):
        assert oscillation_period_intervals(np.full(60, 5.0)) is None

    def test_short_series_none(self):
        assert oscillation_period_intervals(np.arange(5.0)) is None


class TestMeasureNoiseTimeline:
    @pytest.fixture(scope="class")
    def chip(self):
        return Chip("Proc3", with_ripple=True)

    def test_interval_count(self, chip):
        timeline = measure_noise_timeline(
            spec_benchmark("gamess"), chip,
            interval_seconds=60.0, window_cycles=8_000, max_intervals=5,
        )
        assert timeline.times_s.size == 5
        assert timeline.droops_per_1k.size == 5
        assert np.all(timeline.droops_per_1k >= 0)

    def test_phased_workload_varies_more_than_flat(self, chip):
        flat = measure_noise_timeline(
            spec_benchmark("sphinx"), chip,
            interval_seconds=160.0, window_cycles=12_000, max_intervals=10,
        )
        phased = measure_noise_timeline(
            spec_benchmark("gamess"), chip,
            interval_seconds=55.0, window_cycles=12_000, max_intervals=10,
        )
        assert phased.span() > flat.span()

    def test_validation(self, chip):
        with pytest.raises(ConfigurationError):
            measure_noise_timeline(
                spec_benchmark("mcf"), chip, interval_seconds=0
            )
