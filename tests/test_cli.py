"""Unit tests for the experiment CLI."""

import pytest

from repro.cli import DESCRIPTIONS, EXPERIMENTS, main


class TestCli:
    def test_every_experiment_described(self):
        assert set(EXPERIMENTS) == set(DESCRIPTIONS)

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for alias in EXPERIMENTS:
            assert alias in out

    def test_run_one(self, capsys):
        assert main(["run", "fig01"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert "finished in" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_aliases_resolve_to_modules(self):
        import importlib

        for name in EXPERIMENTS.values():
            importlib.import_module(f"repro.experiments.{name}")


class TestExecutionFlags:
    def test_jobs_and_cache_dir_configure_context(self, tmp_path, capsys):
        from repro.experiments import context

        assert main([
            "run", "fig01",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cli-cache"),
        ]) == 0
        assert context.execution_jobs() == 2
        cache = context.shared_cache()
        assert cache is not None
        assert cache.directory == tmp_path / "cli-cache"

    def test_no_cache_flag(self, capsys):
        from repro.experiments import context

        assert main(["run", "fig01", "--no-cache"]) == 0
        assert context.shared_cache() is None

    def test_stats_line_printed_after_campaign_run(self, tmp_path, capsys):
        # fig15 runs a real campaign (fig01 is analytic), so the executor
        # summary line must appear.
        assert main([
            "run", "fig15", "--cache-dir", str(tmp_path / "c"),
        ]) == 0
        out = capsys.readouterr().out
        assert "[executor]" in out
        assert "cache:" in out

    def test_warm_cache_rerun_skips_simulation(self, tmp_path, capsys):
        args = ["run", "fig15", "--cache-dir", str(tmp_path / "c")]
        assert main(args) == 0
        cold = capsys.readouterr().out

        from repro.experiments import context
        context.reset_campaigns()  # simulate a fresh process

        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "0 hits" in cold
        assert " 0 runs simulated" in warm
