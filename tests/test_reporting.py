"""Unit tests for report generation."""

import pytest

from repro.reporting import generate_report, render_report, run_experiments


@pytest.fixture(scope="module")
def small_results():
    return run_experiments(["fig01", "fig02"], quick=True)


class TestRunExperiments:
    def test_selected_subset(self, small_results):
        assert set(small_results) == {"fig01", "fig02"}
        assert small_results["fig01"].experiment_id == "Fig. 1"


class TestRenderReport:
    def test_contains_everything(self, small_results):
        text = render_report(small_results, quick=True, elapsed_seconds=1.5)
        assert "# Voltage Smoothing reproduction report" in text
        assert "quick" in text
        assert "Fig. 1" in text
        assert "Fig. 2" in text
        assert "note:" in text

    def test_full_flag_reflected(self, small_results):
        text = render_report(small_results, quick=False)
        assert "full" in text


class TestGenerateReport:
    def test_writes_file(self, tmp_path):
        path = tmp_path / "report.md"
        text = generate_report(
            path=str(path), aliases=["fig02"], quick=True
        )
        assert path.read_text(encoding="utf-8") == text
        assert "Fig. 2" in text

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        # Patch the experiment table down to a fast subset via reporting's
        # alias list is not exposed on the CLI; use a tiny direct call
        # instead and just exercise the command surface with fig aliases.
        path = tmp_path / "r.md"
        text = generate_report(path=str(path), aliases=["fig01"], quick=True)
        assert "Fig. 1" in text
