"""Tab. I — SPECrate typical-case design analysis at optimal margins (Proc3).

Paper: for each recovery cost the suite-wide optimal margin grows
(5.3 % → 8.6 %) while the expected improvement shrinks (15.7 % → 9.7 %),
and the number of SPECrate schedules actually meeting the expected
improvement collapses from 28/29 (1-cycle recovery) to 9/29 (100 k):
growing voltage swings make coarse recovery miss its targets.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.resilience import (
    RECOVERY_COSTS,
    ResilientDesignModel,
    performance_improvement,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.context import (
    get_campaign,
    parsec_names,
    spec_names,
    window_cycles,
)

#: Slack applied to the pass criterion: a schedule passes when it achieves
#: at least this fraction of the suite-wide expected improvement.
PASS_FRACTION = 0.95


def specrate_pass_analysis(
    quick: bool = False,
    config: str = "Proc3",
) -> Tuple[ExperimentResult, Dict[int, List[str]]]:
    campaign = get_campaign(config, n_cycles=window_cycles(quick))
    names = spec_names(quick)
    all_runs = campaign.all_runs(names, parsec_names(quick))
    model = ResilientDesignModel([r.tail_model() for r in all_runs])

    specrate_runs = campaign.specrate_runs(names)

    result = ExperimentResult(
        experiment_id="Tab. I",
        title=f"SPECrate typical-case analysis at optimal margins ({config})",
        columns=("recovery cost (cycles)", "optimal margin (%)",
                 "expected improvement (%)",
                 f"schedules passing (of {len(names)})"),
    )
    passing_by_cost: Dict[int, List[str]] = {}
    optima = {}
    for cost in RECOVERY_COSTS:
        optimum = model.optimal_margin(cost)
        optima[cost] = optimum
        passing = []
        for run in specrate_runs:
            improvement = performance_improvement(
                optimum.margin,
                cost,
                run.tail_model().rate(optimum.margin),
                model.parameters,
            )
            if improvement >= PASS_FRACTION * optimum.improvement:
                passing.append(run.spec.workloads[0])
        passing_by_cost[cost] = passing
        result.add_row(
            cost,
            100 * optimum.margin,
            100 * optimum.improvement,
            len(passing),
        )
    result.series["optima"] = optima
    result.series["passing_by_cost"] = passing_by_cost
    result.notes.append(
        "paper: margins 5.3->8.6%, improvements 15.7->9.7%, passing "
        "schedules 28,28,15,12,9,9 of 29 — the monotone trends are the "
        "reproduction target"
    )
    return result, passing_by_cost


def run(quick: bool = False, config: str = "Proc3") -> ExperimentResult:
    result, _ = specrate_pass_analysis(quick, config)
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=True).format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
