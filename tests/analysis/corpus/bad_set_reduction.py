"""Known bug: the droop summary sums a set of floats.

Set iteration order is unspecified and float addition is not
associative, so the summed droop can vary run-to-run even with a fixed
seed.  The reduction must iterate in sorted order.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List


def droop_summary(index: int) -> float:
    droops = {0.05 * index, 0.03 * index, 0.01 * index}
    return sum(droops)  # expect: TNT003


def run_summary_suite(indices: List[int]) -> List[float]:
    with ProcessPoolExecutor() as pool:
        return list(pool.map(droop_summary, indices))
