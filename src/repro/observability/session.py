"""Session lifecycle: the process-wide pipeline and worker propagation.

One :class:`ObservabilitySession` couples a :class:`~repro.observability.spans.Tracer`
and a :class:`~repro.observability.metrics.MetricsRegistry` for the
duration of a command, a report, or a test block.  The module-level
accessors (:func:`span`, :func:`increment`, …) are what instrumented
code calls; while no session is installed they cost a single attribute
read and allocate nothing, which is the off-by-default contract.

**Worker propagation.**  ``ProcessPoolExecutor`` workers cannot share
the parent's session, so the executor's worker entry point opens a
fresh session around each run (:func:`capture`), ships its
:meth:`ObservabilitySession.worker_payload` back with the result, and
the parent folds it in with :meth:`ObservabilitySession.absorb_worker`
— in spec order, so the merged trace and counters are independent of
process placement.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Mapping, Optional

from repro.observability.metrics import MetricsRegistry
from repro.observability.spans import NULL_SPAN, ActiveSpan, NullSpan, Tracer


class ObservabilitySession:
    """One enabled instrumentation scope: a tracer plus a registry."""

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()

    # -- worker round trip ---------------------------------------------
    def worker_payload(self) -> Dict[str, Any]:
        """Picklable snapshot a pool worker returns to its parent."""
        return {
            "spans": [root.to_payload() for root in self.tracer.roots],
            "metrics": self.metrics.snapshot(),
        }

    def absorb_worker(self, payload: Mapping[str, Any]) -> None:
        """Merge one worker's snapshot: spans graft under the current
        span, metric samples add into the registry."""
        self.tracer.graft(payload.get("spans", ()))
        self.metrics.merge(payload.get("metrics", {}))

    # -- export ---------------------------------------------------------
    def trace_payload(self) -> Dict[str, Any]:
        return self.tracer.to_payload()

    def metrics_payload(self) -> Dict[str, Any]:
        return self.metrics.json_payload()


class _State:
    """Holder for the installed session (None = instrumentation off).

    An attribute on a class rather than a bare module global: the
    session is installed/uninstalled from worker-reachable code
    (:func:`capture` in the executor's worker entry), and the write is
    explicitly handed back to the parent via the worker payload — the
    lost-update hazard simlint's CON003 exists to catch does not apply.
    """

    session: Optional[ObservabilitySession] = None


def active_session() -> Optional[ObservabilitySession]:
    """The installed session, or ``None`` while instrumentation is off."""
    return _State.session


def enabled() -> bool:
    return _State.session is not None


def start() -> ObservabilitySession:
    """Install a fresh session (replacing any current one)."""
    session = ObservabilitySession()
    _State.session = session
    return session


def stop() -> Optional[ObservabilitySession]:
    """Uninstall and return the current session (idempotent)."""
    session = _State.session
    _State.session = None
    return session


@contextmanager
def capture() -> Iterator[ObservabilitySession]:
    """Enable instrumentation for a block, restoring the previous state.

    The workhorse for tests, examples and the worker entry point::

        with observability.capture() as session:
            campaign.measure_specs(specs)
        print(session.metrics_payload()["counters"])
    """
    previous = _State.session
    session = ObservabilitySession()
    _State.session = session
    try:
        yield session
    finally:
        _State.session = previous


# -- instrumentation call sites ----------------------------------------
def span(name: str, **metadata: Any) -> "ActiveSpan | NullSpan":
    """A timed span under the current one (shared no-op when disabled)."""
    session = _State.session
    if session is None:
        return NULL_SPAN
    return session.tracer.span(name, metadata)


def increment(name: str, value: float = 1.0, **labels: Any) -> None:
    """Add to a counter (no-op when disabled)."""
    session = _State.session
    if session is not None:
        session.metrics.increment(name, value, **labels)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    """Set a gauge sample (no-op when disabled)."""
    session = _State.session
    if session is not None:
        session.metrics.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    """Record a histogram observation (no-op when disabled)."""
    session = _State.session
    if session is not None:
        session.metrics.observe(name, value, **labels)
