"""Stall events and their current-envelope profiles.

Sec. III-C of the paper stimulates one core with microbenchmarks that each
trigger a single kind of stall event — L1-only misses, L2 misses, TLB
misses, branch mispredictions and exceptions — and measures the resulting
voltage swing.  Two event properties drive the swing:

* **edge steepness** — a branch misprediction flushes the pipeline in a
  cycle, producing the sharpest dI/dt and the strongest excitation of the
  ~140 MHz die resonance (the paper's Fig. 12 finds BR swings 1.7x idle,
  the largest single-core effect);
* **depth × duration** — an exception drains the machine completely for
  hundreds of cycles, so when two cores align their exceptions the whole
  chip's current collapses and refills together, which is why EXCP+EXCP is
  the worst pair in Fig. 13 (2.42x idle).

Each :class:`EventProfile` describes the activity envelope an event
imprints: a drain ramp, a stalled plateau, a refill ramp with surge
overshoot, and the surge decay.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError


class StallEvent(enum.Enum):
    """The five microarchitectural stall events studied in the paper."""

    L1_MISS = "L1"
    L2_MISS = "L2"
    TLB_MISS = "TLB"
    BRANCH_MISPREDICT = "BR"
    EXCEPTION = "EXCP"

    @property
    def label(self) -> str:
        """The short label used in the paper's figures."""
        return self.value


@dataclass(frozen=True)
class EventProfile:
    """The activity envelope one stall event imprints on a core.

    Parameters
    ----------
    stall_cycles:
        How long execution stays (partially) stalled.
    drain_cycles:
        Cycles over which activity ramps down into the stall; 1 models an
        abrupt pipeline flush.
    refill_cycles:
        Cycles over which activity ramps back up after the stall resolves.
    drop_fraction:
        Fraction of the pre-event activity lost during the stall (1.0
        drains the core completely; out-of-order slack hides part of
        shorter misses).
    surge_factor:
        Post-refill activity overshoot relative to the baseline: queued
        work drains in a burst once data arrives.  >= 1.
    surge_decay_cycles:
        Time constant of the surge's decay back to baseline.
    """

    stall_cycles: int
    drain_cycles: int
    refill_cycles: int
    drop_fraction: float
    surge_factor: float
    surge_decay_cycles: float

    def __post_init__(self) -> None:
        if self.stall_cycles < 1:
            raise ConfigurationError("stall_cycles must be >= 1")
        if self.drain_cycles < 1 or self.refill_cycles < 1:
            raise ConfigurationError("drain/refill cycles must be >= 1")
        if not 0 < self.drop_fraction <= 1:
            raise ConfigurationError("drop_fraction must be in (0, 1]")
        if self.surge_factor < 1:
            raise ConfigurationError("surge_factor must be >= 1")
        if self.surge_decay_cycles <= 0:
            raise ConfigurationError("surge_decay_cycles must be positive")

    @property
    def footprint_cycles(self) -> int:
        """Total cycles over which the envelope differs from baseline."""
        return (
            self.drain_cycles
            + self.stall_cycles
            + self.refill_cycles
            + int(4 * self.surge_decay_cycles)
        )


#: Calibrated envelopes for the Core 2-class machine.  Latencies follow the
#: microarchitecture (L1 miss that hits L2 ~10 cycles, memory access ~250,
#: hardware page walk ~40, branch flush ~12, exception handling hundreds);
#: drain steepness and surge factors are calibrated so the microbenchmark
#: swing ordering matches Figs. 12 and 13.
EVENT_PROFILES: Mapping[StallEvent, EventProfile] = {
    StallEvent.L1_MISS: EventProfile(
        stall_cycles=10,
        drain_cycles=3,
        refill_cycles=3,
        drop_fraction=0.55,
        surge_factor=1.22,
        surge_decay_cycles=5.0,
    ),
    StallEvent.L2_MISS: EventProfile(
        stall_cycles=250,
        drain_cycles=8,
        refill_cycles=6,
        drop_fraction=0.90,
        surge_factor=1.45,
        surge_decay_cycles=25.0,
    ),
    StallEvent.TLB_MISS: EventProfile(
        stall_cycles=40,
        drain_cycles=4,
        refill_cycles=4,
        drop_fraction=0.85,
        surge_factor=1.35,
        surge_decay_cycles=10.0,
    ),
    StallEvent.BRANCH_MISPREDICT: EventProfile(
        stall_cycles=12,
        drain_cycles=1,  # pipeline flush: the sharpest dI/dt in the table
        refill_cycles=2,
        drop_fraction=1.00,
        surge_factor=1.50,
        surge_decay_cycles=8.0,
    ),
    StallEvent.EXCEPTION: EventProfile(
        stall_cycles=330,
        drain_cycles=1,  # exceptions also flush abruptly
        refill_cycles=5,
        drop_fraction=1.00,
        surge_factor=1.45,
        surge_decay_cycles=26.0,
    ),
}


def profile_for(event: StallEvent) -> EventProfile:
    """Look up the calibrated envelope for ``event``."""
    return EVENT_PROFILES[event]


#: Canonical event ordering: the integer code of each kind in an
#: :class:`EventTrace` is its index here.
EVENT_ORDER: Tuple[StallEvent, ...] = tuple(StallEvent)

_EVENT_CODES: Mapping[StallEvent, int] = {
    event: code for code, event in enumerate(EVENT_ORDER)
}


def event_code(event: StallEvent) -> int:
    """The integer code of ``event`` in :data:`EVENT_ORDER`."""
    return _EVENT_CODES[event]


class EventTrace:
    """An array-backed sequence of ``(cycle, StallEvent)`` occurrences.

    The uarch layer synthesizes activity from stall events with numpy
    scatter operations, so event traces are stored as two parallel
    arrays — ``cycles`` (``intp``) and ``codes`` (``uint8`` indices into
    :data:`EVENT_ORDER`) — instead of a Python list of tuples.  The
    class still iterates and compares like the list of pairs it
    replaced, so workload code and tests that treat ``window.events``
    as a sequence keep working unchanged.
    """

    __slots__ = ("cycles", "codes")

    def __init__(
        self, cycles: np.ndarray, codes: np.ndarray
    ) -> None:
        self.cycles = np.asarray(cycles, dtype=np.intp)
        self.codes = np.asarray(codes, dtype=np.uint8)
        if (
            self.cycles.ndim != 1
            or self.cycles.shape != self.codes.shape
        ):
            raise ConfigurationError(
                "cycles and codes must be matching 1-D arrays"
            )

    @classmethod
    def coerce(
        cls,
        events: Union["EventTrace", Iterable[Tuple[int, StallEvent]]],
    ) -> "EventTrace":
        """Build a trace from ``(cycle, event)`` pairs (or pass through)."""
        if isinstance(events, cls):
            return events
        pairs = list(events)
        if not pairs:
            return cls(
                np.empty(0, dtype=np.intp), np.empty(0, dtype=np.uint8)
            )
        cycles = np.fromiter(
            (pair[0] for pair in pairs), dtype=np.intp, count=len(pairs)
        )
        try:
            codes = np.fromiter(
                (_EVENT_CODES[pair[1]] for pair in pairs),
                dtype=np.uint8,
                count=len(pairs),
            )
        except (KeyError, TypeError):
            bad = next(
                pair[1] for pair in pairs
                if not isinstance(pair[1], StallEvent)
            )
            raise ConfigurationError(f"not a StallEvent: {bad!r}") from None
        return cls(cycles, codes)

    def __len__(self) -> int:
        return int(self.cycles.size)

    def __iter__(self) -> Iterator[Tuple[int, StallEvent]]:
        pairs = [
            (cycle, EVENT_ORDER[code])
            for cycle, code in zip(self.cycles.tolist(), self.codes.tolist())
        ]
        return iter(pairs)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return EventTrace(self.cycles[index], self.codes[index])
        return (int(self.cycles[index]), EVENT_ORDER[int(self.codes[index])])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EventTrace):
            return bool(
                np.array_equal(self.cycles, other.cycles)
                and np.array_equal(self.codes, other.codes)
            )
        if isinstance(other, (list, tuple)):
            try:
                return self == EventTrace.coerce(other)
            except (ConfigurationError, IndexError, ValueError):
                return NotImplemented
        return NotImplemented

    def __repr__(self) -> str:
        return f"EventTrace(<{len(self)} events>)"

    def count(self, event: StallEvent) -> int:
        """Number of occurrences of one event kind."""
        return int(np.count_nonzero(self.codes == _EVENT_CODES[event]))

    def counts(self) -> Mapping[StallEvent, int]:
        """Occurrences per kind, in :data:`EVENT_ORDER` order."""
        totals = np.bincount(self.codes, minlength=len(EVENT_ORDER))
        return {
            event: int(totals[code])
            for code, event in enumerate(EVENT_ORDER)
        }

    def sorted_by_cycle(self) -> "EventTrace":
        """A copy stably sorted by cycle (ties keep insertion order)."""
        order = np.argsort(self.cycles, kind="stable")
        return EventTrace(self.cycles[order], self.codes[order])
