"""Flow-engine tests: fixture markers plus targeted inference behavior."""

from __future__ import annotations

import pytest

from repro.analysis import flow_paths, flow_sources, lint_source
from repro.analysis.findings import Severity
from repro.analysis.flow.engine import flow_rules
from repro.analysis.registry import family_of

from tests.analysis.conftest import FLOW_FIXTURES, expected_findings


def flow_fixture(name: str):
    return flow_paths([str(FLOW_FIXTURES / name)])


class TestFixtureMarkers:
    """Each flow fixture's ``# expect`` markers match the engine exactly."""

    @pytest.mark.parametrize(
        "fixture",
        [
            "dim_violations.py",
            "con_violations.py",
            "tnt_violations.py",
            "perf_violations.py",
        ],
    )
    def test_markers_match_exactly(self, fixture):
        expected = expected_findings(FLOW_FIXTURES / fixture)
        assert expected, f"{fixture} declares no expectations"
        actual = {(f.code, f.line) for f in flow_fixture(fixture)}
        assert actual == expected

    def test_clean_fixture_is_clean(self):
        assert flow_fixture("flow_clean.py") == []

    def test_every_flow_rule_has_fixture_coverage(self):
        covered = set()
        for fixture in FLOW_FIXTURES.glob("*.py"):
            covered |= {code for code, _ in expected_findings(fixture)}
        assert {rule.code for rule in flow_rules()} <= covered

    def test_flow_rules_never_fire_through_the_line_engine(self):
        for fixture in FLOW_FIXTURES.glob("*.py"):
            findings = lint_source(
                fixture.read_text(encoding="utf-8"), path=str(fixture)
            )
            assert not [
                f for f in findings
                if family_of(f.code) in ("DIM", "CON", "TNT", "PERF")
            ]


class TestInterprocedural:
    def test_cross_module_return_dim(self):
        """A dim declared in one file is enforced at a call in another."""
        findings = flow_sources(
            {
                "proj/network.py": (
                    "def loop_resistance_ohms(r1_ohms, r2_ohms):\n"
                    "    return r1_ohms + r2_ohms\n"
                ),
                "proj/margin.py": (
                    "from network import loop_resistance_ohms\n"
                    "RAIL_VOLTS = 1.0\n"
                    "def bad_margin():\n"
                    "    return RAIL_VOLTS - loop_resistance_ohms(1.0, 2.0)\n"
                ),
            }
        )
        assert [(f.code, f.path, f.line) for f in findings] == [
            ("DIM001", "proj/margin.py", 4)
        ]

    def test_fixpoint_propagates_through_unannotated_chain(self):
        """Return dims iterate through helpers with no declared dims."""
        findings = flow_sources(
            {
                "chain.py": (
                    "RAIL_VOLTS = 1.0\n"
                    "def leaf():\n"
                    "    return RAIL_VOLTS\n"
                    "def mid():\n"
                    "    return leaf()\n"
                    "def total_ohms():\n"
                    "    return mid()\n"
                ),
            }
        )
        assert [(f.code, f.line) for f in findings] == [("DIM004", 7)]

    def test_annotation_beats_name(self):
        """A ``dim(...) ->`` comment overrides the name-implied dims."""
        findings = flow_sources(
            {
                "annotated.py": (
                    "def scale_volts(x, y):  # simlint: dim(x=V, y=V) -> 1\n"
                    "    return x / y\n"
                ),
            }
        )
        assert findings == []

    def test_keyword_dim_checked_even_unresolved(self):
        """Unit-suffixed keywords are audited without a resolved callee."""
        findings = flow_sources(
            {
                "caller.py": (
                    "RAIL_VOLTS = 1.0\n"
                    "def setup(scope):\n"
                    "    scope.configure(bandwidth_hz=RAIL_VOLTS)\n"
                ),
            }
        )
        assert [(f.code, f.line) for f in findings] == [("DIM002", 3)]


class TestQuietness:
    """The pass must stay silent when dims are unknown or consistent."""

    def test_unknown_absorbs(self):
        findings = flow_sources(
            {
                "quiet.py": (
                    "bulk_capacitance_farads = 22.0 * 1e-6\n"
                    "esr_ohms = 0.4 * 1e-3\n"
                    "tau_seconds = esr_ohms * bulk_capacitance_farads\n"
                    "corner_hz = 1.0 / tau_seconds\n"
                ),
            }
        )
        assert findings == []

    def test_one_conflict_does_not_cascade(self):
        """After a report the declared dim wins; no follow-on findings."""
        findings = flow_sources(
            {
                "cascade.py": (
                    "RAIL_VOLTS = 1.0\n"
                    "def f(depth_volts):\n"
                    "    sag_volts = depth_volts / RAIL_VOLTS\n"
                    "    twice_volts = sag_volts + RAIL_VOLTS\n"
                    "    return twice_volts\n"
                ),
            }
        )
        assert [(f.code, f.line) for f in findings] == [("DIM003", 3)]

    def test_suppression_comment_silences_flow_findings(self):
        findings = flow_sources(
            {
                "supp.py": (
                    "RAIL_OHMS = 1.0\n"
                    "RAIL_VOLTS = 1.0\n"
                    "bad = RAIL_OHMS + RAIL_VOLTS"
                    "  # simlint: disable=DIM001 (intentional)\n"
                ),
            }
        )
        assert findings == []

    def test_severities(self):
        by_code = {rule.code: rule.severity for rule in flow_rules()}
        assert by_code["DIM001"] is Severity.ERROR
        assert by_code["DIM002"] is Severity.ERROR
        assert by_code["DIM003"] is Severity.WARNING
        assert by_code["DIM004"] is Severity.ERROR
        assert by_code["CON001"] is Severity.ERROR
        assert by_code["CON002"] is Severity.ERROR
        assert by_code["CON003"] is Severity.WARNING
        assert by_code["TNT001"] is Severity.ERROR
        assert by_code["TNT002"] is Severity.ERROR
        assert by_code["TNT003"] is Severity.WARNING
        assert by_code["TNT004"] is Severity.ERROR
        assert by_code["TNT005"] is Severity.ERROR
        # PERF findings are worklist items, not bugs: always warnings,
        # gated only via --strict-warnings plus the justified baseline.
        for code in ("PERF001", "PERF002", "PERF003", "PERF004", "PERF005"):
            assert by_code[code] is Severity.WARNING
