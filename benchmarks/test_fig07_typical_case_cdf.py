"""Bench: Fig. 7 — typical-case voltage-sample distribution (Proc100)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig07_typical_case_cdf


def test_fig07_typical_case_cdf(benchmark, quick):
    result = run_once(
        benchmark, lambda: fig07_typical_case_cdf.run(quick=quick)
    )
    # The worst-case margin is necessary: some droop clearly exceeds the
    # typical-case band...
    assert result.series["max_droop"] > 0.04
    # ...but almost all samples stay within +/-4 % of nominal
    # (paper: 0.06 % beyond; we accept anything comfortably below 1 %).
    assert result.series["beyond_typical"] < 0.01
    # And the CDF is a proper distribution.
    cumulative = result.series["cdf_cumulative"]
    assert np.all(np.diff(cumulative) >= 0)
    assert cumulative[-1] == 1.0  # simlint: disable=HYG001 (exact by construction)
    print("\n" + result.format_table())
