"""Concurrency-safety dataflow: seed provenance and payload picklability.

The parallel campaign executor's bit-identical-to-serial guarantee rests
on three conventions that nothing in the type system enforces:

1. every random stream drawn inside a worker is *derived from the run's
   seed material* (a parameter threaded from the spec), never fresh
   entropy or a constant (``CON001``);
2. everything shipped to a :class:`ProcessPoolExecutor` is picklable —
   module-level functions, not lambdas or closures (``CON002``);
3. workers do not write module globals, because those writes die with
   the worker process and silently diverge from serial runs (``CON003``).

This pass finds the pool dispatch sites, resolves their payload
callables through the project symbol table, computes the
*worker-reachable* function set as a breadth-first closure over the call
graph (constructor edges, ``self.method()``, attribute calls through
locally- and attribute-typed receivers, and a unique-method-name
fallback), then audits that set with a flow-insensitive taint analysis:
a name is *seed-derived* when it is a parameter or was ever assigned an
expression mentioning a seed-derived name.

Run :func:`repro.analysis.flow.inference.run_dimension_pass` first — it
populates the class attribute-type tables this pass's call-graph
resolution reuses.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.analysis.findings import Finding
from repro.analysis.flow.symbols import (
    PROCESS_POOLS,
    STREAM_FACTORIES,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
)
from repro.analysis.registry import get_rule

#: Method names that mutate their receiver in place (CON003).
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)

#: Pool methods that take a payload callable as their first argument.
_DISPATCH_METHODS = frozenset({"map", "submit", "apply", "apply_async",
                               "imap", "imap_unordered", "starmap"})


def _local_types(
    project: Project, fn: FunctionInfo
) -> Tuple[Dict[str, str], Optional[str]]:
    """Class types of locals constructed in ``fn`` (+ its ``self`` name)."""
    self_name = fn.params[0] if (fn.is_method and fn.params) else None
    types: Dict[str, str] = {}
    for node in ast.walk(fn.node):
        target: Optional[str] = None
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name):
            target, value = node.targets[0].id, node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            target, value = node.target.id, node.value
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name) and isinstance(
                    item.context_expr, ast.Call
                ):
                    resolved = project.resolve_callee(
                        fn.module, item.context_expr.func, types,
                        fn.class_name, self_name,
                    )
                    if isinstance(resolved, ClassInfo):
                        types[item.optional_vars.id] = resolved.qualname
            continue
        if target is None or not isinstance(value, ast.Call):
            continue
        resolved = project.resolve_callee(
            fn.module, value.func, types, fn.class_name, self_name
        )
        if isinstance(resolved, ClassInfo):
            types[target] = resolved.qualname
    return types, self_name


def _callees(project: Project, fn: FunctionInfo) -> Set[str]:
    """Qualnames of functions ``fn`` may call (call-graph edges)."""
    types, self_name = _local_types(project, fn)
    edges: Set[str] = set()
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        resolved = project.resolve_callee(
            fn.module, node.func, types, fn.class_name, self_name
        )
        if isinstance(resolved, FunctionInfo):
            edges.add(resolved.qualname)
        elif isinstance(resolved, ClassInfo):
            for ctor in ("__init__", "__post_init__"):
                if ctor in resolved.methods:
                    edges.add(resolved.methods[ctor].qualname)
        elif isinstance(node.func, ast.Attribute):
            # Unique-method-name fallback: keeps the worker closure sound
            # when the receiver's type could not be inferred.
            candidates = project.methods_by_name.get(node.func.attr, [])
            if len(candidates) == 1:
                edges.add(candidates[0].qualname)
    return edges


class ConcurrencyPass:
    """CON001–CON003 over one analyzed project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.findings: List[Finding] = []

    def _report(
        self, code: str, module: ModuleInfo, node: ast.AST, message: str
    ) -> None:
        self.findings.append(
            module.ctx.finding(get_rule(code), node, message)
        )

    # ------------------------------------------------------------------
    # Dispatch sites (CON002) and worker entry points
    # ------------------------------------------------------------------
    def _pool_locals(
        self, fn: FunctionInfo
    ) -> Set[str]:
        """Names bound to a process pool inside ``fn``."""
        pools: Set[str] = set()
        ctx = fn.module.ctx
        for node in ast.walk(fn.node):
            name: Optional[str] = None
            value: Optional[ast.AST] = None
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.optional_vars, ast.Name):
                        self._maybe_pool(
                            ctx, item.context_expr,
                            item.optional_vars.id, pools,
                        )
                continue
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Name):
                name, value = node.targets[0].id, node.value
            if name is not None and value is not None:
                self._maybe_pool(ctx, value, name, pools)
        return pools

    @staticmethod
    def _maybe_pool(ctx, value: ast.AST, name: str, pools: Set[str]) -> None:
        if isinstance(value, ast.Call):
            dotted = ctx.dotted_name(value.func)
            if dotted in PROCESS_POOLS:
                pools.add(name)

    def _scan_dispatches(
        self, fn: FunctionInfo
    ) -> List[FunctionInfo]:
        """CON002 checks; returns the resolved worker entry functions."""
        entries: List[FunctionInfo] = []
        pools = self._pool_locals(fn)
        if not pools:
            return entries
        local_defs = {
            child.name
            for child in ast.walk(fn.node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not fn.node
        }
        lambda_names = {
            node.targets[0].id
            for node in ast.walk(fn.node)
            if isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Lambda)
        }
        for node in ast.walk(fn.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in pools
                and node.func.attr in _DISPATCH_METHODS
            ):
                continue
            for arg in node.args:
                payload = arg
                if isinstance(payload, ast.Call):
                    dotted = fn.module.ctx.dotted_name(payload.func)
                    if dotted in ("functools.partial", "partial"):
                        payload = payload.args[0] if payload.args else payload
                if isinstance(payload, ast.Lambda):
                    self._report(
                        "CON002", fn.module, payload,
                        "lambda shipped to a process pool; pool payloads "
                        "are pickled by name and must be module-level "
                        "functions",
                    )
                elif isinstance(payload, ast.Name) and (
                    payload.id in local_defs or payload.id in lambda_names
                ):
                    self._report(
                        "CON002", fn.module, payload,
                        f"`{payload.id}` is a closure-captured local; "
                        "process-pool payloads must be module-level "
                        "functions",
                    )
                elif isinstance(payload, ast.Name):
                    resolved = self.project.resolve_callee(
                        fn.module, payload, None, fn.class_name,
                        fn.params[0] if fn.is_method and fn.params else None,
                    )
                    if isinstance(resolved, FunctionInfo):
                        entries.append(resolved)
        return entries

    # ------------------------------------------------------------------
    # Worker-reachable closure
    # ------------------------------------------------------------------
    def _reachable(
        self, entries: Iterable[FunctionInfo]
    ) -> List[FunctionInfo]:
        seen: Set[str] = set()
        order: List[FunctionInfo] = []
        queue = list(entries)
        while queue:
            fn = queue.pop(0)
            if fn.qualname in seen:
                continue
            seen.add(fn.qualname)
            order.append(fn)
            for callee in sorted(_callees(self.project, fn)):
                target = self.project.functions.get(callee)
                if target is not None and target.qualname not in seen:
                    queue.append(target)
        return order

    # ------------------------------------------------------------------
    # Worker-side audits (CON001, CON003)
    # ------------------------------------------------------------------
    @staticmethod
    def _tainted_names(fn: FunctionInfo) -> Set[str]:
        """Flow-insensitive seed-derivation closure over local names."""
        tainted: Set[str] = set(fn.params)
        tainted.update(a.arg for a in fn.node.args.kwonlyargs)
        changed = True
        while changed:
            changed = False
            for node in ast.walk(fn.node):
                targets: List[str] = []
                value: Optional[ast.AST] = None
                if isinstance(node, ast.Assign):
                    targets = [
                        t.id for t in node.targets if isinstance(t, ast.Name)
                    ]
                    value = node.value
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    targets, value = [node.target.id], node.value
                elif isinstance(node, ast.AugAssign) and isinstance(
                    node.target, ast.Name
                ):
                    targets, value = [node.target.id], node.value
                elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
                    node.target, ast.Name
                ):
                    targets, value = [node.target.id], node.iter
                if not targets or value is None:
                    continue
                if any(
                    isinstance(sub, ast.Name) and sub.id in tainted
                    for sub in ast.walk(value)
                ):
                    for name in targets:
                        if name not in tainted:
                            tainted.add(name)
                            changed = True
        return tainted

    def _audit_worker(self, fn: FunctionInfo) -> None:
        module = fn.module
        tainted = self._tainted_names(fn)
        global_decls: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                global_decls.update(node.names)

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                self._audit_factory_call(fn, module, node, tainted)
                self._audit_mutation_call(fn, module, node, tainted)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                self._audit_global_store(fn, module, node, global_decls,
                                         tainted)

    def _audit_factory_call(
        self,
        fn: FunctionInfo,
        module: ModuleInfo,
        node: ast.Call,
        tainted: Set[str],
    ) -> None:
        dotted = module.ctx.dotted_name(node.func)
        if dotted not in STREAM_FACTORIES:
            return
        seed_args = list(node.args) + [kw.value for kw in node.keywords]
        if not seed_args:
            self._report(
                "CON001", module, node,
                f"`{dotted}()` inside worker-reachable "
                f"{fn.qualname} draws fresh entropy; derive the stream "
                "from the run's seed parameter",
            )
            return
        derived = any(
            isinstance(sub, ast.Name) and sub.id in tainted
            for arg in seed_args
            for sub in ast.walk(arg)
        )
        if not derived:
            self._report(
                "CON001", module, node,
                f"seed material for `{dotted}` in worker-reachable "
                f"{fn.qualname} is not derived from its parameters; "
                "parallel runs would share or randomize the stream",
            )

    def _audit_mutation_call(
        self,
        fn: FunctionInfo,
        module: ModuleInfo,
        node: ast.Call,
        tainted: Set[str],
    ) -> None:
        if not (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.attr in _MUTATORS
        ):
            return
        name = node.func.value.id
        if name in tainted or name not in module.mutable_globals:
            return
        self._report(
            "CON003", module, node,
            f"module global `{name}` mutated via .{node.func.attr}() in "
            f"worker-reachable {fn.qualname}; worker writes never reach "
            "the parent process",
        )

    def _audit_global_store(
        self,
        fn: FunctionInfo,
        module: ModuleInfo,
        node: Union[ast.Assign, ast.AugAssign],
        global_decls: Set[str],
        tainted: Set[str],
    ) -> None:
        targets = node.targets if isinstance(node, ast.Assign) else [
            node.target
        ]
        for target in targets:
            if isinstance(target, ast.Name) and target.id in global_decls:
                self._report(
                    "CON003", module, node,
                    f"module global `{target.id}` rebound in "
                    f"worker-reachable {fn.qualname}; the write dies with "
                    "the worker process",
                )
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in module.mutable_globals
                and target.value.id not in tainted
            ):
                self._report(
                    "CON003", module, node,
                    f"module global `{target.value.id}` written by "
                    f"subscript in worker-reachable {fn.qualname}; the "
                    "write dies with the worker process",
                )

    # ------------------------------------------------------------------
    def run(self) -> List[Finding]:
        entries: List[FunctionInfo] = []
        for fn in self.project.functions.values():
            entries.extend(self._scan_dispatches(fn))
        for fn in self._reachable(entries):
            self._audit_worker(fn)
        return self.findings


def run_concurrency_pass(project: Project) -> List[Finding]:
    """All CON findings for an analyzed project."""
    return ConcurrencyPass(project).run()
