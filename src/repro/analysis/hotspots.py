"""``simlint hotspots``: static PERF findings × measured stage shares.

The loop-cost model (:mod:`repro.analysis.flow.cost`) attributes every
PERF finding to a hot entry point, and every hot entry to the
observability span its time is recorded under (``run.simulate``,
``chip.run``, ``pdn.simulate``).  This module joins those findings
against a measured stage profile — the schema-versioned JSON written by
``repro ... --profile-stages FILE`` — and emits a ranked worklist: the
top group is literally the next vectorization target (ROADMAP item 2).

Determinism contract: the report is **byte-identical across reruns and
across profiles measured under different ``--jobs``**.  Raw wall
seconds vary run to run (and parallel dispatch shifts stage time
shares across the bucket boundaries), so they never appear in the
output and never influence ranking.  The profile contributes only its
jobs-invariant structure: which stages were measured and their span
*counts*.  A stage's share of all recorded spans coarsens into a
stable bucket (``dominant`` ≥ 50%, ``major`` ≥ 20%, ``minor`` ≥ 5%,
``trace`` below; ``unmeasured`` when the profile lacks the stage), and
groups rank by (bucket, span count, name).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.flow.cost import CostPass, stage_for_entry
from repro.analysis.flow.inference import run_dimension_pass
from repro.analysis.flow.symbols import Project
from repro.observability.profiling import (
    StageRow,
    load_stage_profile,
    unknown_stages,
)

#: Span-count-share thresholds, checked in order.
_BUCKETS: Tuple[Tuple[str, float], ...] = (
    ("dominant", 0.50),
    ("major", 0.20),
    ("minor", 0.05),
)

#: Bucket rank for sorting (reports lead with the hottest stages).
_BUCKET_ORDER = {"dominant": 0, "major": 1, "minor": 2, "trace": 3,
                 "unmeasured": 4}


def share_bucket(span_count: int, total_spans: int) -> str:
    """Coarse, rerun-stable label for a stage's share of recorded spans.

    Span counts are the jobs-invariant half of a stage profile (the
    observability CI gate pins them), so buckets built from them keep
    the hotspots report byte-identical across ``--jobs`` settings —
    wall-second shares would flip buckets run to run.
    """
    if total_spans <= 0 or span_count <= 0:
        return "trace"
    share = span_count / total_spans
    for label, threshold in _BUCKETS:
        if share >= threshold:
            return label
    return "trace"


def _attributed_findings(
    sources: Dict[str, str],
) -> List[Tuple[Finding, str, str]]:
    """``(finding, function_qualname, entry_qualname)`` for PERF findings.

    The dimension pass runs first (and is discarded) because it fills
    the class attribute-type tables the cost pass's call-graph
    resolution reuses — the same ordering the flow engine guarantees.
    """
    project = Project.build(sources)
    run_dimension_pass(project)
    cost = CostPass(project)
    cost.run()
    attributed: List[Tuple[Finding, str, str]] = []
    seen: Set[Tuple[str, int, int, str, str]] = set()
    for finding, qualname, entry in cost.attributions:
        module = next(
            (m for m in project.modules.values() if m.path == finding.path),
            None,
        )
        if module is not None and module.ctx.is_suppressed(finding):
            continue
        identity = (finding.path, finding.line, finding.column,
                    finding.code, finding.message)
        if identity in seen:
            continue
        seen.add(identity)
        attributed.append((finding, qualname, entry))
    attributed.sort(
        key=lambda item: (item[0].path, item[0].line, item[0].column,
                          item[0].code)
    )
    return attributed


def hotspots_report(
    sources: Dict[str, str],
    profile_rows: Optional[Sequence[StageRow]] = None,
    profile_path: Optional[str] = None,
) -> Dict[str, Any]:
    """The joined, deterministic hotspots payload (JSON-ready)."""
    rows_by_name: Dict[str, StageRow] = {
        row.name: row for row in (profile_rows or [])
    }
    total_spans = sum(row.count for row in rows_by_name.values())

    groups: Dict[str, List[Dict[str, Any]]] = {}
    for finding, qualname, entry in _attributed_findings(sources):
        stage = stage_for_entry(entry)
        groups.setdefault(stage, []).append(
            {
                "path": finding.path,
                "line": finding.line,
                "column": finding.column,
                "code": finding.code,
                "message": finding.message,
                "function": qualname,
                "hot_entry": entry,
                "fingerprint": finding.fingerprint,
            }
        )

    stages: List[Dict[str, Any]] = []
    for stage, findings in groups.items():
        row = rows_by_name.get(stage)
        if row is None:
            bucket = "unmeasured"
            count = 0
        else:
            bucket = share_bucket(row.count, total_spans)
            count = row.count
        stages.append(
            {
                "stage": stage,
                "bucket": bucket,
                "span_count": count,
                "findings": findings,
            }
        )
    stages.sort(
        key=lambda s: (_BUCKET_ORDER[s["bucket"]], -s["span_count"],
                       s["stage"])
    )
    return {
        "version": 1,
        "profile": profile_path,
        "total_findings": sum(len(s["findings"]) for s in stages),
        "stages": stages,
    }


def hotspots_from_paths(
    sources: Dict[str, str], profile_path: Optional[str]
) -> Dict[str, Any]:
    """Convenience wrapper resolving the profile file, if given.

    Raises ``ValueError`` (surfaced as a usage error by the CLI) when
    the profile names spans the current build never emits — a profile
    written by a different build would otherwise silently mis-join.
    """
    rows = load_stage_profile(profile_path) if profile_path else None
    if rows:
        unknown = unknown_stages(rows)
        if unknown:
            raise ValueError(
                f"stage profile {profile_path} references span name(s) "
                f"absent from the current catalog: {', '.join(unknown)}; "
                "re-record it with this build (repro ... --profile-stages)"
            )
    return hotspots_report(
        sources, profile_rows=rows, profile_path=profile_path
    )


def format_hotspots(report: Dict[str, Any]) -> str:
    """Fixed text rendering of :func:`hotspots_report` (no wall times)."""
    lines: List[str] = [
        f"simlint hotspots: {report['total_findings']} PERF finding(s) "
        f"in {len(report['stages'])} stage group(s)"
    ]
    if report["profile"] is None:
        lines.append("(no stage profile given; groups are unmeasured)")
    for rank, stage in enumerate(report["stages"], start=1):
        lines.append("")
        lines.append(
            f"rank {rank} · stage {stage['stage']} "
            f"[{stage['bucket']}, {stage['span_count']} span(s)]"
        )
        for finding in stage["findings"]:
            lines.append(
                f"  {finding['path']}:{finding['line']} "
                f"{finding['code']} {finding['message']}"
            )
    return "\n".join(lines)
