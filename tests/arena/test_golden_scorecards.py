"""Golden scorecard regression: pinned arena reports, byte-for-byte.

The fixtures in ``tests/arena/golden/`` are complete
:func:`repro.arena.report.json_report` outputs for the ``micro`` suite
at the arena defaults on 2 and 4 cores.  A failure here means some part
of the arena pipeline — simulation, a policy's proposal, the oracle
search, scoring, or the report encoding — *changed its numbers*.  If
the change is intentional, regenerate with::

    PYTHONPATH=src python tests/arena/golden/regenerate.py

and justify the drift in the commit message.

The same runs double as the acceptance check for the paper's Fig. 18
ordering: on the dual-core micro suite the droop-aware policy must
strictly beat the random controls and pure IPC on droop overhead.
"""

import json

import pytest

from repro.arena import registered_keys

from tests.arena.golden.regenerate import (
    CORE_COUNTS,
    fixture_path,
    golden_arena,
)


@pytest.fixture(scope="module")
def results():
    return {n_cores: golden_arena(n_cores) for n_cores in CORE_COUNTS}


class TestGoldenScorecards:
    @pytest.mark.parametrize("n_cores", CORE_COUNTS)
    def test_report_matches_fixture_byte_for_byte(self, results, n_cores):
        from repro.arena.report import json_report

        expected = fixture_path(n_cores).read_text(encoding="utf-8")
        assert json_report(results[n_cores]) == expected

    @pytest.mark.parametrize("n_cores", CORE_COUNTS)
    def test_every_registered_policy_scored(self, results, n_cores):
        arena = results[n_cores]
        assert tuple(
            sorted(card.policy for card in arena.scorecards)
        ) == registered_keys()
        assert arena.oracle is not None
        for card in arena.scorecards:
            assert card.oracle_regret is not None
            assert card.oracle_regret >= 0.0

    @pytest.mark.parametrize("n_cores", CORE_COUNTS)
    def test_ranking_is_droop_sorted(self, results, n_cores):
        cards = results[n_cores].scorecards
        droops = [card.droops_per_1k for card in cards]
        assert droops == sorted(droops)

    def test_fixture_payloads_are_versioned(self):
        for n_cores in CORE_COUNTS:
            payload = json.loads(
                fixture_path(n_cores).read_text(encoding="utf-8")
            )
            assert payload["schema_version"] == 1
            assert payload["suite"] == "micro"
            assert payload["n_cores"] == n_cores


class TestFig18Ordering:
    def test_droop_policy_beats_random_and_pure_ipc(self, results):
        """The paper's headline (Fig. 18): noise-aware placement pays
        less droop overhead than random or contention-only placement."""
        arena = results[2]
        droop = arena.scorecard("droop")
        for rival in ("random", "random-n", "ipc"):
            assert (
                droop.droops_per_1k
                < arena.scorecard(rival).droops_per_1k
            ), rival

    def test_droop_policy_has_zero_regret_on_micro(self, results):
        droop = results[2].scorecard("droop")
        assert droop.oracle_regret == 0.0  # simlint: disable=HYG001 (clamped exact zero)
