"""Smoke + structure tests for every experiment harness (quick mode).

The benchmarks assert the paper's quantitative shape; these tests assert
the harness *contract*: each module runs in quick mode, returns a
populated :class:`ExperimentResult` with the documented series keys, and
formats cleanly.  Campaigns are shared through the experiments' own
context cache, so the whole file stays fast.
"""

import importlib

import pytest

from repro.experiments.common import ExperimentResult

MODULES = {
    "fig01_scaling_trends": ("Fig. 1", {"swings"}),
    "fig02_margin_frequency": ("Fig. 2", {"margins", "curves"}),
    "fig04_impedance": ("Fig. 4", {"stock", "depleted", "resonance_hz",
                                   "ratio_1mhz"}),
    "fig05_reset_droops": ("Fig. 5(m-r)", {"traces"}),
    "fig06_decap_swings": ("Fig. 6", {"relative_swings"}),
    "fig07_typical_case_cdf": ("Fig. 7", {"cdf_deviations", "cdf_cumulative",
                                          "histogram", "max_droop",
                                          "beyond_typical"}),
    "fig08_margin_sweep": ("Fig. 8", {"sweeps", "model"}),
    "fig09_future_cdf": ("Fig. 9", {"beyond_typical"}),
    "fig10_heatmaps": ("Fig. 10", {"heatmaps"}),
    "fig11_tlb_trace": ("Fig. 11", {"trace", "idle_trace", "overshoots"}),
    "fig12_event_swings": ("Fig. 12", {"swings"}),
    "fig13_event_interference": ("Fig. 13", {"matrix", "events",
                                             "single_core", "max_pair"}),
    "fig14_noise_phases": ("Fig. 14", {"timelines"}),
    "fig15_stall_correlation": ("Fig. 15", {"correlation", "pearson_r"}),
    "fig16_sliding_window": ("Fig. 16", {"experiment", "max_amplification",
                                         "min_amplification"}),
    "fig17_droop_variance": ("Fig. 17", {"single", "specrate", "boxes"}),
    "tab1_specrate_pass": ("Tab. I", {"optima", "passing_by_cost"}),
    "fig18_policy_scatter": ("Fig. 18", {"points", "random_points",
                                         "random_mean"}),
    "fig19_pass_increase": ("Fig. 19", {"passing", "recovery_costs"}),
}


@pytest.fixture(scope="module")
def results():
    """Run every harness once (quick mode) and cache the outcomes."""
    out = {}
    for name in MODULES:
        module = importlib.import_module(f"repro.experiments.{name}")
        out[name] = module.run(quick=True)
    return out


@pytest.mark.parametrize("name", sorted(MODULES))
def test_experiment_contract(results, name):
    expected_id, expected_series = MODULES[name]
    result = results[name]
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == expected_id
    assert result.rows, f"{name} produced no rows"
    assert expected_series <= set(result.series), (
        f"{name} missing series: {expected_series - set(result.series)}"
    )
    assert result.notes, f"{name} should carry paper-vs-measured notes"
    # The table renders and mentions the experiment id.
    text = result.format_table()
    assert expected_id in text


@pytest.mark.parametrize("name", sorted(MODULES))
def test_experiment_rows_match_columns(results, name):
    result = results[name]
    if result.columns:
        for row in result.rows:
            assert len(row) == len(result.columns)


def test_every_paper_figure_has_a_harness():
    """The evaluation section's full figure/table list is covered."""
    covered = {MODULES[m][0] for m in MODULES}
    required = {
        "Fig. 1", "Fig. 2", "Fig. 4", "Fig. 5(m-r)", "Fig. 6", "Fig. 7",
        "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12", "Fig. 13",
        "Fig. 14", "Fig. 15", "Fig. 16", "Fig. 17", "Tab. I", "Fig. 18",
        "Fig. 19",
    }
    assert required <= covered
