"""Regenerate the arena golden scorecard fixtures.

Run from the repository root::

    PYTHONPATH=src python tests/arena/golden/regenerate.py

Each fixture is the byte-exact :func:`repro.arena.report.json_report`
of one full arena run — every registered policy plus the exhaustive
oracle baseline — on the ``micro`` suite at the arena defaults (Proc3,
12 000-cycle windows, seed 0), for dual- and quad-core supplies.  The
fixtures pin the complete arena pipeline: the generalized N-core
scheduler, every policy's proposal, the oracle search, scoring and the
report encoding.

**Only regenerate after an intentional change** to the simulation, a
policy, or the report schema, and say why in the commit message: the
golden test exists to catch *unintentional* drift.  Reports are written
with sorted keys and indentation so git diffs of a regeneration are
reviewable scorecard by scorecard.
"""

from __future__ import annotations

import pathlib
import sys

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent

#: The fixture battery: default-seed micro-suite runs per core count.
GOLDEN_CONFIG = "Proc3"
GOLDEN_CYCLES = 12_000
GOLDEN_SEED = 0
GOLDEN_SUITE = "micro"
CORE_COUNTS = (2, 4)


def fixture_path(n_cores: int) -> pathlib.Path:
    return GOLDEN_DIR / f"{GOLDEN_SUITE}-{n_cores}core.json"


def golden_arena(n_cores: int):
    """One golden arena run on a hermetic (cache-free, serial) campaign."""
    from repro.arena import run_arena
    from repro.measurement.campaign import MeasurementCampaign

    campaign = MeasurementCampaign(
        GOLDEN_CONFIG,
        n_cycles=GOLDEN_CYCLES,
        seed=GOLDEN_SEED,
        jobs=1,
        n_cores=n_cores,
    )
    return run_arena(
        suite=GOLDEN_SUITE,
        n_cores=n_cores,
        seed=GOLDEN_SEED,
        campaign=campaign,
    )


def regenerate() -> None:
    from repro.arena.report import json_report

    for n_cores in CORE_COUNTS:
        path = fixture_path(n_cores)
        path.write_text(
            json_report(golden_arena(n_cores)), encoding="utf-8"
        )
        print(f"wrote {path.relative_to(GOLDEN_DIR.parent.parent.parent)}")


if __name__ == "__main__":
    sys.exit(regenerate())
