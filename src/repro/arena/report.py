"""Arena comparison reports: deterministic JSON and markdown.

The JSON payload is the arena's machine-readable contract (and the
format of the golden fixtures under ``tests/arena/golden/``): keys
sorted, floats rendered by :func:`json.dumps`'s shortest-repr, rows in
ranking order — so equal-seed runs are byte-identical, whatever the
executor's job count.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.arena.harness import ArenaResult, PolicyScorecard

#: Schema version of the JSON payload; bump on breaking shape changes.
SCHEMA_VERSION = 1


def _scorecard_payload(card: PolicyScorecard) -> Dict[str, Any]:
    return {
        "policy": card.policy,
        "name": card.name,
        "groups": [list(group) for group in card.schedule.groups],
        "mean_ipc": card.mean_ipc,
        "droops_per_1k": card.droops_per_1k,
        "recovery_overhead": card.recovery_overhead,
        "energy_proxy": card.energy_proxy,
        "oracle_regret": card.oracle_regret,
    }


def json_payload(result: ArenaResult) -> Dict[str, Any]:
    """The scorecard comparison as one JSON-serializable dict."""
    oracle: Optional[Dict[str, Any]] = None
    if result.oracle is not None:
        oracle = {
            "droops_per_1k": result.oracle.droops_per_1k,
            "groups": [
                list(group) for group in result.oracle.schedule.groups
            ],
            "partitions_searched": result.oracle.partitions_searched,
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": result.suite,
        "programs": list(result.programs),
        "n_cores": result.n_cores,
        "config": result.config,
        "n_cycles": result.n_cycles,
        "seed": result.seed,
        "recovery_cost": result.recovery_cost,
        "oracle": oracle,
        "scorecards": [
            _scorecard_payload(card) for card in result.scorecards
        ],
    }


def json_report(result: ArenaResult) -> str:
    """Byte-stable JSON rendering (sorted keys, trailing newline)."""
    return json.dumps(json_payload(result), indent=2, sort_keys=True) + "\n"


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "n/a"
    return f"{value:.4f}"


def markdown_report(result: ArenaResult) -> str:
    """The ranked comparison as a markdown table with context header."""
    lines: List[str] = [
        f"# Policy arena: suite `{result.suite}` on "
        f"{result.n_cores} cores ({result.config})",
        "",
        f"Pool: {', '.join(result.programs)} — "
        f"{result.n_cycles} cycles/run, seed {result.seed}, "
        f"recovery cost {result.recovery_cost:g} cycles.",
        "",
        "| rank | policy | droops/1k | recovery overhead | mean IPC "
        "| energy proxy | oracle regret |",
        "|---:|---|---:|---:|---:|---:|---:|",
    ]
    for position, card in enumerate(result.scorecards, start=1):
        lines.append(
            f"| {position} | {card.name} | {card.droops_per_1k:.4f} "
            f"| {card.recovery_overhead:.4f} | {card.mean_ipc:.4f} "
            f"| {card.energy_proxy:.4f} | {_fmt(card.oracle_regret)} |"
        )
    if result.oracle is not None:
        groups = "; ".join(
            "+".join(group) for group in result.oracle.schedule.groups
        )
        lines += [
            "",
            f"Oracle optimum: {result.oracle.droops_per_1k:.4f} "
            f"droops/1k over {result.oracle.partitions_searched} "
            f"partitions ({groups}).",
        ]
    return "\n".join(lines) + "\n"
