"""Unit tests for the PARSEC catalog and thread correlation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.uarch.events import StallEvent
from repro.workloads.parsec import PARSEC, ParsecWorkload, parsec_benchmark
from repro.workloads.base import StatProfile


class TestCatalog:
    def test_exactly_11_benchmarks(self):
        assert len(PARSEC) == 11

    def test_names(self):
        expected = {
            "blackscholes", "bodytrack", "canneal", "dedup", "facesim",
            "ferret", "fluidanimate", "streamcluster", "swaptions", "vips",
            "x264",
        }
        assert set(PARSEC) == expected

    def test_lookup(self):
        assert parsec_benchmark("canneal").name == "canneal"
        with pytest.raises(WorkloadError):
            parsec_benchmark("quake")


class TestThreadWindows:
    def test_pairs_have_aligned_barriers(self):
        workload = ParsecWorkload(
            "sync-heavy",
            StatProfile(mean_activity=0.7, event_rates={}),
            barrier_rate_per_cycle=1e-3,
            barrier_skew_cycles=5.0,
        )
        w0, w1 = workload.sample_thread_windows(2, 50_000, rng=1)
        t0 = np.array([c for c, e in w0.events if e is StallEvent.EXCEPTION])
        t1 = np.array([c for c, e in w1.events if e is StallEvent.EXCEPTION])
        assert t0.size == t1.size
        assert t0.size == pytest.approx(50, rel=0.4)
        # Matching barriers land within a few skew deviations of each other.
        assert np.abs(np.sort(t0) - np.sort(t1)).mean() < 40

    def test_thread_count_respected(self):
        workload = parsec_benchmark("ferret")
        windows = workload.sample_thread_windows(2, 10_000, rng=2)
        assert len(windows) == 2
        assert all(w.n_cycles == 10_000 for w in windows)

    def test_threads_differ_in_noise(self):
        windows = parsec_benchmark("vips").sample_thread_windows(2, 10_000, rng=3)
        assert not np.array_equal(
            windows[0].baseline_activity, windows[1].baseline_activity
        )

    def test_single_window_api_works(self):
        window = parsec_benchmark("x264").sample_window(5000, rng=4)
        assert window.n_cycles == 5000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParsecWorkload(
                "bad", StatProfile(mean_activity=0.5), barrier_rate_per_cycle=-1
            )
        with pytest.raises(ConfigurationError):
            parsec_benchmark("dedup").sample_thread_windows(0, 100)
