"""Power virus and impedance-characterization loops.

Two special workloads from the paper's methodology sections:

* :class:`PowerVirus` — a CPUBurn-like kernel that keeps the execution
  units saturated while toggling activity at the PDN's resonance, producing
  the worst-case voltage swings used to (a) stress-test decap-removed
  processors and (b) find the worst-case operating margin by undervolting.
* :class:`SteppedCurrentLoop` — the Sec. II-A software loop alternating
  high- and low-current instruction paths at a controllable frequency,
  used to reconstruct the platform impedance profile (Fig. 4a).
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.random_utils import SeedLike
from repro.uarch.window import ExecutionWindow
from repro.workloads.base import Workload


class PowerVirus(Workload):
    """Worst-case activity: saturated units with resonant toggling.

    Parameters
    ----------
    toggle_period_cycles:
        Full period of the fast activity square wave.  The default (13
        cycles at 1.86 GHz ≈ 143 MHz) sits on the stock die resonance;
        power viruses are tuned to do exactly this.
    slow_period_cycles:
        Period of a second, slower toggle that parks the kernel at low
        activity for long stretches — long enough for domain-level gating
        to follow, so the *full* dynamic current swings through the
        package-band resonance as well.  Set to 0 to disable.
    high_activity / low_activity:
        The two activity levels the kernel alternates between.

    Virus copies are phase-locked (no random phase), matching how multiple
    CPUBurn copies of the same deterministic kernel line up in the paper's
    undervolting stress test.
    """

    def __init__(
        self,
        toggle_period_cycles: int = 13,
        slow_period_cycles: int = 6000,
        high_activity: float = 1.0,
        low_activity: float = 0.05,
    ) -> None:
        if toggle_period_cycles < 2:
            raise ConfigurationError("toggle_period_cycles must be >= 2")
        if slow_period_cycles < 0:
            raise ConfigurationError("slow_period_cycles must be >= 0")
        if not 0 <= low_activity < high_activity <= 1:
            raise ConfigurationError(
                "need 0 <= low_activity < high_activity <= 1"
            )
        self.toggle_period_cycles = int(toggle_period_cycles)
        self.slow_period_cycles = int(slow_period_cycles)
        self.high_activity = float(high_activity)
        self.low_activity = float(low_activity)
        self.name = "power-virus"
        self.duration_seconds = 60.0

    def sample_window(
        self,
        n_cycles: int,
        rng: SeedLike = None,
        at_time_s: float = 0.0,
    ) -> ExecutionWindow:
        if n_cycles <= 0:
            raise ConfigurationError("n_cycles must be positive")
        cycles = np.arange(n_cycles)
        fast_phase = cycles % self.toggle_period_cycles
        baseline = np.where(
            fast_phase < self.toggle_period_cycles / 2.0,
            self.high_activity,
            self.low_activity,
        )
        if self.slow_period_cycles:
            slow_phase = cycles % self.slow_period_cycles
            baseline = np.where(
                slow_phase < self.slow_period_cycles / 2.0,
                baseline,
                self.low_activity,
            )
        return ExecutionWindow(
            baseline_activity=baseline, events=[], base_ipc=2.2, label=self.name
        )


class SteppedCurrentLoop(Workload):
    """The impedance-characterization loop (Sec. II-A).

    Alternates between a high-current and a low-current instruction
    sequence; :attr:`frequency_hz` sets how fast the loop switches paths.
    Sweeping the frequency while measuring the voltage response amplitude
    reconstructs |Z(f)| without Intel's VTT tooling.
    """

    def __init__(
        self,
        frequency_hz: float,
        clock_hz: float,
        high_activity: float = 0.95,
        low_activity: float = 0.15,
    ) -> None:
        if frequency_hz <= 0 or clock_hz <= 0:
            raise ConfigurationError("frequencies must be positive")
        period = int(round(clock_hz / frequency_hz))
        if period < 2:
            raise ConfigurationError(
                "frequency too high: a loop iteration needs >= 2 cycles"
            )
        if not 0 <= low_activity < high_activity <= 1:
            raise ConfigurationError(
                "need 0 <= low_activity < high_activity <= 1"
            )
        self.frequency_hz = float(frequency_hz)
        self.period_cycles = period
        self.high_activity = float(high_activity)
        self.low_activity = float(low_activity)
        self.name = f"current-loop-{frequency_hz / units.MEGA_HERTZ:.3g}MHz"
        self.duration_seconds = 60.0

    def sample_window(
        self,
        n_cycles: int,
        rng: SeedLike = None,
        at_time_s: float = 0.0,
    ) -> ExecutionWindow:
        if n_cycles <= 0:
            raise ConfigurationError("n_cycles must be positive")
        phase = np.arange(n_cycles) % self.period_cycles
        half = self.period_cycles / 2.0
        baseline = np.where(phase < half, self.high_activity, self.low_activity)
        return ExecutionWindow(
            baseline_activity=baseline, events=[], base_ipc=1.5, label=self.name
        )
