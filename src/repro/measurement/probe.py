"""The probe/scope front-end (Sec. II-A's measurement chain).

The paper's chain is: ``VCCsense``/``VSSsense`` pins → InfiniiMax 1130A
differential probe (1.5 GHz, ultra-low loading) → Infiniium DSA91304A
scope → histogram memory → remote collection every 60 s.  For the
simulator the chain adds a little probe noise, optionally band-limits the
signal, and accumulates scope histograms per collection interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from scipy import signal

from repro import units
from repro.errors import ConfigurationError
from repro.measurement.histogram import CompressedHistogram
from repro.pdn.simulate import VoltageTrace
from repro.random_utils import SeedLike, as_generator


@dataclass(frozen=True)
class DifferentialProbe:
    """A high-impedance differential probe.

    Parameters
    ----------
    noise_volts_rms:
        Additive front-end noise.
    bandwidth_hz:
        -3 dB bandwidth; the trace is low-passed with a first-order
        filter.  ``None`` disables band-limiting (the 1130A's 1.5 GHz is
        well above the simulated content anyway).
    """

    noise_volts_rms: float = 0.4 * units.MILLI_VOLT
    bandwidth_hz: float | None = 1.5 * units.GIGA_HERTZ

    def __post_init__(self) -> None:
        if self.noise_volts_rms < 0:
            raise ConfigurationError("noise_volts_rms must be non-negative")
        if self.bandwidth_hz is not None and self.bandwidth_hz <= 0:
            raise ConfigurationError("bandwidth_hz must be positive")

    def sense(self, trace: VoltageTrace, seed: SeedLike = None) -> VoltageTrace:
        """Return the probed waveform (noise + optional band-limiting)."""
        samples = trace.samples
        nyquist = 0.5 / trace.dt_seconds
        if self.bandwidth_hz is not None and self.bandwidth_hz < nyquist:
            normalized = self.bandwidth_hz / nyquist
            b, a = signal.butter(1, normalized)
            samples = signal.filtfilt(b, a, samples)
        if self.noise_volts_rms > 0:
            rng = as_generator(seed)
            samples = samples + rng.normal(
                0.0, self.noise_volts_rms, size=samples.size
            )
        return VoltageTrace(samples, trace.dt_seconds, trace.nominal_voltage)


class Oscilloscope:
    """Histogram-accumulating scope with periodic collection intervals.

    Parameters
    ----------
    probe:
        Front-end used to sense each trace.
    interval_cycles:
        Collection interval; each interval yields one histogram, the way
        the paper's remote collector drains the scope every 60 seconds.
    """

    def __init__(
        self,
        probe: DifferentialProbe | None = None,
        interval_cycles: int = 1_000_000,
    ) -> None:
        if interval_cycles <= 0:
            raise ConfigurationError("interval_cycles must be positive")
        self._probe = probe or DifferentialProbe()
        self._interval = int(interval_cycles)
        self._intervals: List[CompressedHistogram] = []

    @property
    def intervals(self) -> List[CompressedHistogram]:
        """Histograms collected so far, one per interval."""
        return list(self._intervals)

    def capture(self, trace: VoltageTrace, seed: SeedLike = None) -> None:
        """Sense a trace and accumulate it into interval histograms."""
        sensed = self._probe.sense(trace, seed=seed)
        deviations = sensed.deviations_fraction()
        for start in range(0, deviations.size, self._interval):
            chunk = deviations[start : start + self._interval]
            if not self._intervals or self._intervals[-1].total >= self._interval:
                self._intervals.append(CompressedHistogram())
            self._intervals[-1].add(chunk)

    def combined_histogram(self) -> CompressedHistogram:
        """All collected intervals merged into one distribution."""
        if not self._intervals:
            raise ConfigurationError("nothing captured yet")
        merged = self._intervals[0]
        for histogram in self._intervals[1:]:
            merged = merged.merge(histogram)
        return merged
