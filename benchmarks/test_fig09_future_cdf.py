"""Bench: Fig. 9 — typical-case distributions widen on future nodes."""

from benchmarks.conftest import run_once
from repro.experiments import fig09_future_cdf


def test_fig09_future_cdf(benchmark, quick):
    result = run_once(benchmark, lambda: fig09_future_cdf.run(quick=quick))
    beyond = result.series["beyond_typical"]
    # Violations of the -4 % line grow monotonically with decap removal
    # (paper: 0.06 % -> 0.2 % -> 2.2 %).
    assert beyond["Proc100"] <= beyond["Proc25"] <= beyond["Proc3"]
    # Proc3 violates at least several times more often than Proc100.
    floor = max(beyond["Proc100"], 1e-6)
    assert beyond["Proc3"] / floor >= 3.0
    print("\n" + result.format_table())
