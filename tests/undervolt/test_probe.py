"""Below-Vmin probes: voltage-driven fault injection must recover."""

import pytest

from repro.errors import ConfigurationError
from repro.undervolt import probe_below_vmin

#: Deep enough that biterror:1 fires several times for seed 0 while the
#: retry budget still converges — the same depth the bench gate probes.
PROBE_DEPTH_VOLT = 0.04


@pytest.fixture(scope="module")
def probe(vmin_map):
    return probe_below_vmin(vmin_map, PROBE_DEPTH_VOLT)


class TestProbeRecovery:
    def test_bit_errors_injected(self, probe):
        assert probe.injected_bit_errors > 0
        assert probe.retries >= probe.injected_bit_errors

    def test_recovers_bit_identical(self, probe):
        assert probe.converged
        assert probe.differences == ()

    def test_operating_point_geometry(self, vmin_map, probe):
        worst = vmin_map.worst_point()
        assert probe.vmin_volt == worst.vmin_volt
        assert probe.n_cores == worst.n_cores
        assert probe.depth_volt == PROBE_DEPTH_VOLT
        assert probe.set_point_volt == pytest.approx(
            worst.vmin_volt - PROBE_DEPTH_VOLT
        )
        assert 0.0 < probe.bit_error_rate < 1.0

    def test_summary_reports_recovery(self, probe):
        text = probe.summary()
        assert "bit error(s) injected" in text
        assert "recovered bit-identical" in text

    def test_probe_is_deterministic(self, vmin_map, probe):
        again = probe_below_vmin(vmin_map, PROBE_DEPTH_VOLT)
        assert again == probe


class TestProbeEdges:
    def test_zero_depth_injects_nothing(self, vmin_map):
        clean = probe_below_vmin(vmin_map, 0.0)
        assert clean.injected_bit_errors == 0
        assert clean.retries == 0
        assert clean.bit_error_rate == 0.0  # simlint: disable=HYG001 (exact by construction)
        assert clean.converged

    def test_negative_depth_rejected(self, vmin_map):
        with pytest.raises(ConfigurationError):
            probe_below_vmin(vmin_map, -0.01)
