"""Known bug: L and C swapped at a resonance helper's call site.

The helper's parameters are unit-suffixed, so passing the package
inductance where the capacitance belongs (and vice versa) is visible
interprocedurally even though both arguments are plain floats.
"""

from __future__ import annotations

import numpy as np

from repro import units

PACKAGE_INDUCTANCE_HENRIES = 32.0 * units.PICO_HENRY
DIE_CAPACITANCE_FARADS = 335.0 * units.NANO_FARAD


def resonance_hz(inductance_henries: float, capacitance_farads: float) -> float:
    return 1.0 / (
        2.0 * np.pi * np.sqrt(inductance_henries * capacitance_farads)
    )


def package_resonance() -> float:
    return resonance_hz(
        DIE_CAPACITANCE_FARADS,  # expect: DIM002
        PACKAGE_INDUCTANCE_HENRIES,  # expect: DIM002
    )
