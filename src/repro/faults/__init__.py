"""Deterministic, seeded fault injection for the measurement pipeline.

The paper's central argument is that resilience mechanisms — not
worst-case margins — should absorb rare events (PAPER.md §4).  This
package applies the same philosophy to the reproduction's own execution
layer: instead of hoping that worker crashes, hung processes, transient
exceptions and corrupt cache records never happen, we *inject* them on
demand and require the campaign executor to recover to bit-identical
results (Soyturk et al., arXiv:1912.00154, show software injection is a
faithful stand-in for the real faults).

Two pieces:

* :class:`~repro.faults.plan.FaultPlan` — a parsed, canonical fault
  plan: per-site firing rates, a base seed, and the hang duration.
  Plans are written as compact strings (``"crash:0.1,corrupt:0.2,
  seed=7"``; see :func:`~repro.faults.plan.parse_plan`) so they travel
  through CLI flags, environment variables (``$REPRO_INJECT_FAULTS``)
  and pickled worker arguments unchanged.
* :class:`~repro.faults.injector.FaultInjector` — decides, at each
  named hook point, whether a fault fires.  Every decision is drawn
  from a generator *derived* from ``(plan seed, site, key,
  occurrence)``, never from shared state, so a chaos run's fault
  pattern is reproducible bit-for-bit and independent of worker
  scheduling.

Hook points live in :mod:`repro.measurement.executor` (worker crash,
worker hang, transient simulation exception) and
:mod:`repro.measurement.cache` (record corruption on store, transient
corruption on load); ``docs/robustness.md`` documents the full fault
model and the recovery contract.
"""

from __future__ import annotations

from repro.faults.injector import (
    BitErrorFault,
    FaultInjector,
    InjectedFault,
    garble_file,
)
from repro.faults.plan import (
    DEFAULT_PLAN_SPEC,
    FAULT_SITES,
    INJECT_FAULTS_ENV,
    FaultPlan,
    parse_plan,
    plan_from_env,
)

__all__ = [
    "BitErrorFault",
    "DEFAULT_PLAN_SPEC",
    "FAULT_SITES",
    "INJECT_FAULTS_ENV",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "garble_file",
    "parse_plan",
    "plan_from_env",
]
