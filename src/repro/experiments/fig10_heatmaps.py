"""Fig. 10 — improvement heat maps (margin x recovery cost) per node.

Paper: the large pocket of improvement between -6 % and -2 % margins on
Proc100 shrinks on Proc25 and nearly vanishes on Proc3; holding a 15 %
improvement requires a ~1000-cycle recovery on Proc100, ~100 cycles on
Proc25 and ~10 cycles on Proc3 — a ten-fold tightening per step.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.resilience import RECOVERY_COSTS
from repro.experiments.common import ExperimentResult
from repro.experiments.fig08_margin_sweep import build_model

CONFIGS = ("Proc100", "Proc25", "Proc3")

#: The retention target the paper discusses.
TARGET_IMPROVEMENT = 0.15


def coarsest_cost_for_target(
    margins: np.ndarray,
    costs: np.ndarray,
    grid: np.ndarray,
    target: float = TARGET_IMPROVEMENT,
) -> float:
    """The largest recovery cost whose best margin still hits the target."""
    feasible = [
        float(cost)
        for i, cost in enumerate(costs)
        if grid[i].max() >= target
    ]
    return max(feasible) if feasible else 0.0


def run(quick: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="Fig. 10",
        title="Typical-case improvement heat maps per decap configuration",
        columns=("config", "best improvement (%)",
                 f"coarsest cost for {TARGET_IMPROVEMENT:.0%}",
                 "pocket area (margin x cost cells > 10%)"),
    )
    heatmaps: Dict[str, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    for config in CONFIGS:
        model = build_model(quick, config)
        margins, costs, grid = model.heatmap(RECOVERY_COSTS)
        heatmaps[config] = (margins, costs, grid)
        pocket = int((grid > 0.10).sum())
        result.add_row(
            config,
            100 * float(grid.max()),
            coarsest_cost_for_target(margins, costs, grid),
            pocket,
        )
    result.series["heatmaps"] = heatmaps
    result.notes.append(
        "paper: the improvement pocket shrinks Proc100 -> Proc25 -> Proc3; "
        "the recovery cost sustaining 15% tightens about 10x per step"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=True).format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
