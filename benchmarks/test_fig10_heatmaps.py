"""Bench: Fig. 10 — the improvement pocket shrinks on future nodes."""

from benchmarks.conftest import run_once
from repro.experiments import fig10_heatmaps


def test_fig10_heatmaps(benchmark, quick):
    result = run_once(benchmark, lambda: fig10_heatmaps.run(quick=quick))
    rows = {row[0]: row for row in result.rows}
    # Best achievable improvement decays Proc100 -> Proc25 -> Proc3.
    assert rows["Proc100"][1] >= rows["Proc25"][1] >= rows["Proc3"][1]
    # The pocket of >10 % improvement cells shrinks the same way.
    assert rows["Proc100"][3] >= rows["Proc25"][3] >= rows["Proc3"][3]
    # Holding a 15 % improvement needs ever finer-grained recovery
    # (paper: 1000 -> 100 -> ~10 cycles).
    assert rows["Proc100"][2] >= rows["Proc25"][2] >= rows["Proc3"][2]
    print("\n" + result.format_table())
