"""The sanctioned wall-time source for the whole library.

Telemetry timing is easy to scatter: a ``perf_counter()`` pair here, a
wall-seconds field there, each with its own notion of what is being
timed.  This module is the single place allowed to read the monotonic
clock (simlint rule ``OBS001`` flags ``time.perf_counter()`` anywhere
outside ``repro.observability``); everything else imports
:func:`monotonic_seconds` or, better, wraps the work in a span
(:func:`repro.observability.span`).

Monotonic time never feeds simulation results — only telemetry.  The
determinism rules (``DET003``) still forbid wall-clock reads
(``time.time``/``datetime.now``) everywhere, including here.
"""

from __future__ import annotations

import time


def monotonic_seconds() -> float:
    """Monotonic timestamp in seconds, for elapsed-time telemetry.

    Differences between two readings are wall durations; the absolute
    value is meaningless (and differs between processes — worker spans
    therefore export durations only, never start times).
    """
    return time.perf_counter()
