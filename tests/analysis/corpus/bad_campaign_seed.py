"""Known bug: campaign workers ignore the run-spec seed material.

One worker draws fresh OS entropy (irreproducible), the other hard-codes
a constant seed (every parallel record sees the *same* stream).  Both
break the executor's bit-identical-to-serial guarantee.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List

import numpy as np

from repro.random_utils import as_generator


def noisy_record(index: int) -> float:
    rng = np.random.default_rng()  # expect: CON001
    return float(rng.normal()) + index  # expect: TNT002


def cloned_record(index: int) -> float:
    rng = as_generator(2024)  # expect: CON001
    return float(rng.normal()) + index  # expect: TNT002


def run(indices: List[int]) -> List[float]:
    with ProcessPoolExecutor() as pool:
        noisy = list(pool.map(noisy_record, indices))
        cloned = list(pool.map(cloned_record, indices))
    return noisy + cloned
