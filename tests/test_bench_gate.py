"""The benchmark-regression gate's comparison logic and baseline file."""

import json
from pathlib import Path

from benchmarks.gate import (
    DEFAULT_TOLERANCE,
    MIN_GATED_SCORE,
    SPEEDUP_REFERENCES,
    UNITS,
    compare,
    normalize,
)

BASELINE = Path(__file__).parent.parent / "benchmarks" / "baseline.json"


class TestCompare:
    def test_within_tolerance_passes(self):
        assert compare({"a": 1.2}, {"a": 1.0}, 0.25) == []

    def test_regression_fails(self):
        failures = compare({"a": 1.3}, {"a": 1.0}, 0.25)
        assert len(failures) == 1
        assert "a" in failures[0]

    def test_improvement_passes(self):
        assert compare({"a": 0.1}, {"a": 1.0}, 0.25) == []

    def test_missing_unit_fails(self):
        failures = compare({}, {"a": 1.0}, 0.25)
        assert failures == ["a: present in baseline but not timed"]

    def test_unknown_unit_fails(self):
        failures = compare({"a": 1.0, "new": 1.0}, {"a": 1.0}, 0.25)
        assert len(failures) == 1
        assert "new" in failures[0]

    def test_noise_floor_not_gated(self):
        # Both sides under the floor: too fast to time, never a failure.
        tiny = MIN_GATED_SCORE / 4
        assert compare({"a": tiny * 2}, {"a": tiny}, 0.25) == []

    def test_normalize(self):
        assert normalize({"a": 1.0, "b": 0.5}, 2.0) == {"a": 0.5, "b": 0.25}


class TestSpeedupPin:
    """The absolute speed-up pins on top of the regression baseline."""

    def test_pinned_unit_over_ceiling_fails(self):
        reference, min_speedup = SPEEDUP_REFERENCES["campaign_throughput"]
        over = reference / min_speedup * 1.01
        failures = compare(
            {"campaign_throughput": over}, {"campaign_throughput": over}, 0.25
        )
        assert len(failures) == 1
        assert f"{min_speedup:g}x" in failures[0]

    def test_pinned_unit_under_ceiling_passes(self):
        reference, min_speedup = SPEEDUP_REFERENCES["campaign_throughput"]
        under = reference / min_speedup * 0.9
        assert compare(
            {"campaign_throughput": under},
            {"campaign_throughput": under},
            0.25,
        ) == []

    def test_baseline_satisfies_every_pin(self):
        # The committed baseline itself must honor the speed-up pins:
        # an accepted slow score would otherwise mask the regression.
        payload = json.loads(BASELINE.read_text(encoding="utf-8"))
        failures = compare(payload["units"], payload["units"], 0.25)
        assert failures == []

    def test_pins_cover_only_pinned_units(self):
        pinned = set(SPEEDUP_REFERENCES)
        assert pinned <= {name for name, _ in UNITS}


class TestBaselineFile:
    def test_committed_baseline_matches_pinned_units(self):
        payload = json.loads(BASELINE.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert set(payload["units"]) == {name for name, _ in UNITS}
        assert 0 < payload["tolerance"] <= 1
        assert payload["tolerance"] == DEFAULT_TOLERANCE

    def test_baseline_scores_are_gateable(self):
        payload = json.loads(BASELINE.read_text(encoding="utf-8"))
        for name, score in payload["units"].items():
            assert score >= MIN_GATED_SCORE, (
                f"unit {name!r} is too fast to gate reliably; make it "
                "heavier or drop it from the pinned set"
            )
