"""Unit tests for impedance profiles (Fig. 4 machinery)."""

import numpy as np
import pytest

from repro import units
from repro.errors import ConfigurationError, MeasurementError
from repro.pdn.impedance import ImpedanceProfile
from repro.pdn.platform import build_network


@pytest.fixture(scope="module")
def stock_profile():
    return ImpedanceProfile.from_network(build_network("Proc100"), label="Proc100")


class TestConstruction:
    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ConfigurationError):
            ImpedanceProfile(np.array([1.0, 2.0]), np.array([1.0]))

    def test_rejects_unsorted_frequencies(self):
        with pytest.raises(ConfigurationError):
            ImpedanceProfile(np.array([2.0, 1.0]), np.array([1.0, 1.0]))

    def test_rejects_negative_magnitudes(self):
        with pytest.raises(ConfigurationError):
            ImpedanceProfile(np.array([1.0, 2.0]), np.array([1.0, -1.0]))

    def test_from_network_point_count(self):
        prof = ImpedanceProfile.from_network(
            build_network("Proc100"), f_min_hz=100 * units.KILO_HERTZ, f_max_hz=100 * units.MEGA_HERTZ,
            points_per_decade=10,
        )
        assert len(prof) == 31  # 3 decades * 10 + 1


class TestAnalysis:
    def test_at_interpolates(self, stock_profile):
        direct = np.abs(build_network("Proc100").impedance(3.3e6))
        assert stock_profile.at(3.3e6) == pytest.approx(direct, rel=0.05)

    def test_at_out_of_range_rejected(self, stock_profile):
        with pytest.raises(MeasurementError):
            stock_profile.at(1e12)

    def test_peak_in_band(self, stock_profile):
        peak = stock_profile.peak(f_min_hz=50 * units.MEGA_HERTZ, f_max_hz=500 * units.MEGA_HERTZ)
        assert 5e7 <= peak.frequency_hz <= 5e8

    def test_peak_empty_band_rejected(self, stock_profile):
        with pytest.raises(MeasurementError):
            stock_profile.peak(f_min_hz=1000 * units.GIGA_HERTZ, f_max_hz=2000 * units.GIGA_HERTZ)

    def test_normalized_reference_is_unity(self, stock_profile):
        norm = stock_profile.normalized_to(1e6)
        assert norm.at(1e6) == pytest.approx(1.0, rel=1e-6)

    def test_ratio_to_self_is_one(self, stock_profile):
        assert stock_profile.ratio_to(stock_profile, 2e6) == pytest.approx(1.0)


class TestPaperCalibration:
    """Pin the Fig. 4 observables of the calibrated platform."""

    def test_stock_resonance_in_100_200_mhz_band(self, stock_profile):
        peak = stock_profile.peak()
        assert 1.0e8 <= peak.frequency_hz <= 2.0e8

    def test_depleted_package_several_times_stock_at_1mhz(self, stock_profile):
        depleted = ImpedanceProfile.from_network(build_network("Proc3"))
        ratio = depleted.ratio_to(stock_profile, 1e6)
        # Paper quotes ~5x between 1 and 10 MHz; accept the right ballpark.
        assert 3.0 <= ratio <= 12.0

    def test_impedance_grows_monotonically_with_decap_removal(self):
        """Mid-band peak impedance must grow as capacitance shrinks."""
        peaks = []
        for name in ("Proc100", "Proc75", "Proc50", "Proc25", "Proc3", "Proc0"):
            prof = ImpedanceProfile.from_network(build_network(name))
            peaks.append(prof.peak(f_min_hz=200 * units.KILO_HERTZ, f_max_hz=30 * units.MEGA_HERTZ).impedance_ohm)
        assert all(a <= b * 1.001 for a, b in zip(peaks, peaks[1:]))
