"""Seed-plumbing regression for the random arena policies.

The old pair-only :class:`~repro.core.policies.RandomPolicy` defaulted
to ``seed=None`` — the library-wide default stream — so a reused policy
instance advanced shared state between builds and two "independent"
random controls could correlate.  The arena registry must never hit
that default: every random draw derives from the campaign seed through
:meth:`~repro.arena.policies.ArenaPolicy.rng`
(``derive_generator(seed, "arena", "policy", <key>)``).
"""

import numpy as np
import pytest

from repro.arena import build_policies
from repro.arena.policies import RandomArenaPolicy, RandomNPolicy
from repro.random_utils import derive_generator

from tests.arena.conftest import FakeOracle

POOL = (
    "gamess", "lbm", "libquantum", "mcf",
    "namd", "povray", "sjeng", "sphinx",
)


class TestRandomArenaPolicy:
    def test_reuse_is_stateless(self):
        """A reused instance must not drift — the historical bug: the
        default-stream RandomPolicy advanced shared state per call."""
        policy = RandomArenaPolicy()
        first = policy.propose(POOL, 2, FakeOracle(), seed=5)
        again = policy.propose(POOL, 2, FakeOracle(), seed=5)
        assert first == again

    def test_instances_agree_for_equal_seeds(self):
        a = RandomArenaPolicy().propose(POOL, 2, FakeOracle(), seed=5)
        b = RandomArenaPolicy().propose(POOL, 2, FakeOracle(), seed=5)
        assert a == b

    def test_seed_changes_schedule(self):
        policy = RandomArenaPolicy()
        schedules = {
            policy.propose(POOL, 2, FakeOracle(), seed=s).canonical().groups
            for s in range(8)
        }
        assert len(schedules) > 1

    def test_scorer_stream_derives_from_campaign_seed(self):
        """The registry fix itself: the wrapped RandomPolicy draws from
        the arena-derived stream, not RandomPolicy's default."""
        expected = derive_generator(7, "arena", "policy", "random")
        scorer = RandomArenaPolicy().scorer(7)
        drawn = scorer.score_group(("lbm", "mcf"), FakeOracle())
        assert drawn == expected.random()

    def test_registry_instances_are_fresh_and_reproducible(self):
        first = build_policies(["random"])[0]
        second = build_policies(["random"])[0]
        assert first is not second
        assert first.propose(POOL, 2, FakeOracle(), seed=3) == second.propose(
            POOL, 2, FakeOracle(), seed=3
        )


class TestRandomNPolicy:
    def test_permutation_derives_from_campaign_seed(self):
        rng = derive_generator(11, "arena", "policy", "random-n")
        order = [POOL[int(i)] for i in rng.permutation(len(POOL))]
        expected = tuple(
            tuple(sorted(order[start:start + 2]))
            for start in range(0, len(POOL), 2)
        )
        schedule = RandomNPolicy().propose(POOL, 2, FakeOracle(), seed=11)
        assert schedule.groups == expected

    def test_decorrelated_from_random_arena_policy(self):
        """Distinct keys, distinct streams: the two random controls in
        one arena run must not mirror each other."""
        a = derive_generator(0, "arena", "policy", "random")
        b = derive_generator(0, "arena", "policy", "random-n")
        assert not np.array_equal(a.random(16), b.random(16))

    @pytest.mark.parametrize("seed", [0, 1])
    def test_reuse_is_stateless(self, seed):
        policy = RandomNPolicy()
        assert policy.propose(POOL, 4, FakeOracle(), seed) == policy.propose(
            POOL, 4, FakeOracle(), seed
        )
