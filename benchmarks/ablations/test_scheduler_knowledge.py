"""Ablation: oracle droop knowledge vs counter-proxy vs none.

Design choice under test: the paper's limit study assumes oracle droop
counts.  The stall-ratio proxy (deployable from commodity counters, per
the Fig. 15 correlation) should recover much of the oracle's droop
reduction; random pairing recovers none.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.policies import DroopPolicy, RandomPolicy, StallRatioPolicy
from repro.core.scheduler import BatchScheduler, PairOracle
from repro.experiments.context import QUICK_SPEC_SUBSET, get_campaign

N_PAIRS = 20


def test_ablation_scheduler_knowledge(benchmark, quick):
    def experiment():
        campaign = get_campaign("Proc3", n_cycles=25_000)
        oracle = PairOracle(campaign)
        scheduler = BatchScheduler(oracle, programs=QUICK_SPEC_SUBSET)
        droops = {}
        droops["oracle"] = scheduler.run_policy(
            DroopPolicy(), n_pairs=N_PAIRS, seed=31
        ).mean_droops
        droops["stall-proxy"] = scheduler.run_policy(
            StallRatioPolicy(), n_pairs=N_PAIRS, seed=31
        ).mean_droops
        random_values = [
            scheduler.run_policy(
                RandomPolicy(seed=400 + i), n_pairs=N_PAIRS, seed=400 + i
            ).mean_droops
            for i in range(8)
        ]
        droops["random"] = float(np.mean(random_values))
        return droops

    droops = run_once(benchmark, experiment)
    # Full oracle knowledge gives the fewest droops by a clear margin.
    assert droops["oracle"] < 0.95 * droops["random"]
    assert droops["oracle"] <= droops["stall-proxy"]
    # The counter proxy does no worse than noise-oblivious scheduling —
    # but (ablation finding) in this simulator it recovers only a small
    # part of the oracle's benefit: most of the droop reduction comes
    # from pair-level interaction that solo counters cannot see.
    assert droops["stall-proxy"] <= droops["random"] * 1.03
