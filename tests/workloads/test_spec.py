"""Unit tests for the SPEC CPU2006 catalog."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.base import PhasedWorkload
from repro.workloads.spec import SPEC_CPU2006, SPEC_NAMES, spec_benchmark


class TestCatalog:
    def test_exactly_29_benchmarks(self):
        assert len(SPEC_CPU2006) == 29

    def test_names_match_paper_fig15(self):
        expected = {
            "astar", "bwaves", "bzip2", "cactusadm", "calculix", "dealii",
            "gamess", "gcc", "gemsfdtd", "gobmk", "gromacs", "h264ref",
            "hmmer", "lbm", "leslie3d", "libquantum", "mcf", "milc", "namd",
            "omnetpp", "perlbench", "povray", "sjeng", "soplex", "sphinx",
            "tonto", "wrf", "xalan", "zeusmp",
        }
        assert set(SPEC_CPU2006) == expected

    def test_lookup(self):
        assert spec_benchmark("mcf").name == "mcf"
        with pytest.raises(WorkloadError):
            spec_benchmark("doom")

    def test_names_tuple_sorted(self):
        assert list(SPEC_NAMES) == sorted(SPEC_NAMES)

    def test_all_durations_plausible(self):
        for workload in SPEC_CPU2006.values():
            assert 100 <= workload.duration_seconds <= 3600


class TestPhaseExemplars:
    """Fig. 14's three phase archetypes."""

    def test_sphinx_has_no_phases(self):
        assert not isinstance(spec_benchmark("sphinx"), PhasedWorkload)

    def test_gamess_has_four_phases(self):
        gamess = spec_benchmark("gamess")
        assert isinstance(gamess, PhasedWorkload)
        assert len(gamess.segments) == 4

    def test_tonto_oscillates(self):
        tonto = spec_benchmark("tonto")
        assert isinstance(tonto, PhasedWorkload)
        # Repeats every few tens of seconds over a long run.
        assert 20 <= tonto.cycle_seconds <= 120
        assert tonto.duration_seconds > 10 * tonto.cycle_seconds
        # The two regimes differ substantially in activity.
        p_a = tonto.profile_at(0.0)
        p_b = tonto.profile_at(tonto.segments[0].duration_seconds + 1.0)
        assert abs(p_a.mean_activity - p_b.mean_activity) > 0.1

    def test_gamess_phases_alternate(self):
        gamess = spec_benchmark("gamess")
        activities = [seg.profile.mean_activity for seg in gamess.segments]
        assert activities[0] > activities[1]
        assert activities[2] > activities[3]


class TestHeterogeneity:
    def test_stall_weight_spans_a_wide_range(self):
        from repro.workloads.spec import _stall_weight

        weights = sorted(
            _stall_weight(
                w.profile.event_rates
                if not isinstance(w, PhasedWorkload)
                else w.segments[0].profile.event_rates
            )
            for w in SPEC_CPU2006.values()
        )
        assert weights[0] < 0.2
        assert weights[-1] > 0.5

    def test_memory_bound_have_low_ipc(self):
        for name in ("mcf", "lbm", "libquantum"):
            w = spec_benchmark(name)
            assert w.profile.base_ipc < 1.0

    def test_compute_bound_have_high_ipc(self):
        for name in ("namd", "povray", "hmmer"):
            w = spec_benchmark(name)
            assert w.profile.base_ipc > 1.5

    def test_windows_sample_without_error(self):
        for name in SPEC_NAMES:
            window = spec_benchmark(name).sample_window(5000, rng=1)
            assert window.n_cycles == 5000
