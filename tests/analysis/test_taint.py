"""Taint-pass tests: sources to sinks, summaries, and the quiet cases."""

from __future__ import annotations

from repro.analysis import flow_sources


def codes(findings):
    return [(f.code, f.path, f.line) for f in findings]


POOL = "from concurrent.futures import ProcessPoolExecutor\n"


class TestClockTaint:
    def test_wall_clock_reaching_worker_return(self):
        findings = flow_sources(
            {
                "proj/w.py": (
                    POOL
                    + "import time\n"
                    "def record(i):\n"
                    "    at = time.time()\n"
                    "    return {'i': i, 'at': at}\n"
                    "def run(items):\n"
                    "    with ProcessPoolExecutor() as pool:\n"
                    "        return list(pool.map(record, items))\n"
                ),
            }
        )
        assert codes(findings) == [("TNT001", "proj/w.py", 5)]

    def test_monotonic_value_is_clock_tainted_too(self):
        """perf_counter is a sanctioned *effect* but a tainted *value*."""
        findings = flow_sources(
            {
                "proj/w.py": (
                    POOL
                    + "import time\n"
                    "def record(i):\n"
                    "    return time.perf_counter() + i\n"
                    "def run(items):\n"
                    "    with ProcessPoolExecutor() as pool:\n"
                    "        return list(pool.map(record, items))\n"
                ),
            }
        )
        assert [f.code for f in findings] == ["TNT001"]

    def test_clock_reaches_key_through_interprocedural_summary(self):
        """A timestamp passed into a hashing helper one module away."""
        findings = flow_sources(
            {
                "proj/keys.py": (
                    "import hashlib\n"
                    "def digest(material):\n"
                    "    return hashlib.sha256(material).hexdigest()\n"
                ),
                "proj/use.py": (
                    "import time\n"
                    "from keys import digest\n"
                    "def key_for(spec):\n"
                    "    stamp = str(time.time()).encode()\n"
                    "    return digest(stamp)\n"
                ),
            }
        )
        assert ("TNT001", "proj/use.py", 5) in codes(findings)


class TestRngTaint:
    def test_derive_generator_is_clean(self):
        findings = flow_sources(
            {
                "proj/w.py": (
                    POOL
                    + "from repro.random_utils import derive_generator\n"
                    "def record(seed, i):\n"
                    "    rng = derive_generator(seed, i)\n"
                    "    return float(rng.normal())\n"
                    "def run(seed, items):\n"
                    "    with ProcessPoolExecutor() as pool:\n"
                    "        out = [pool.submit(record, seed, i)"
                    " for i in items]\n"
                    "    return out\n"
                ),
            }
        )
        assert findings == []

    def test_param_seeded_factory_is_clean(self):
        findings = flow_sources(
            {
                "proj/w.py": (
                    POOL
                    + "import numpy as np\n"
                    "def record(seed):\n"
                    "    rng = np.random.default_rng(seed)\n"
                    "    return float(rng.normal())\n"
                    "def run(items):\n"
                    "    with ProcessPoolExecutor() as pool:\n"
                    "        return list(pool.map(record, items))\n"
                ),
            }
        )
        assert findings == []

    def test_stdlib_global_stream_reaching_return(self):
        findings = flow_sources(
            {
                "proj/w.py": (
                    POOL
                    + "import random\n"
                    "def record(i):\n"
                    "    return random.random() + i\n"
                    "def run(items):\n"
                    "    with ProcessPoolExecutor() as pool:\n"
                    "        return list(pool.map(record, items))\n"
                ),
            }
        )
        assert [f.code for f in findings] == ["TNT002"]


class TestOrderTaint:
    def test_sorted_launders_set_reduction(self):
        findings = flow_sources(
            {
                "proj/w.py": (
                    POOL
                    + "def record(i):\n"
                    "    vals = {i, i * 0.5}\n"
                    "    return sum(sorted(vals))\n"
                    "def run(items):\n"
                    "    with ProcessPoolExecutor() as pool:\n"
                    "        return list(pool.map(record, items))\n"
                ),
            }
        )
        assert findings == []

    def test_count_loop_over_set_is_order_insensitive(self):
        findings = flow_sources(
            {
                "proj/w.py": (
                    POOL
                    + "def record(i):\n"
                    "    vals = {i, i * 0.5}\n"
                    "    count = 0\n"
                    "    for _v in vals:\n"
                    "        count += 1\n"
                    "    return count\n"
                    "def run(items):\n"
                    "    with ProcessPoolExecutor() as pool:\n"
                    "        return list(pool.map(record, items))\n"
                ),
            }
        )
        assert findings == []

    def test_set_reduction_outside_worker_closure_is_quiet(self):
        """TNT003 audits the worker-reachable closure only."""
        findings = flow_sources(
            {
                "proj/m.py": (
                    "def spread(hi):\n"
                    "    vals = {hi, hi * 0.5}\n"
                    "    return sum(vals)\n"
                ),
            }
        )
        assert findings == []

    def test_sorted_as_completed_is_clean(self):
        findings = flow_sources(
            {
                "proj/w.py": (
                    "from concurrent.futures import as_completed\n"
                    "def gather(futures):\n"
                    "    done = sorted(\n"
                    "        f.result() for f in as_completed(futures)\n"
                    "    )\n"
                    "    return done\n"
                ),
            }
        )
        assert findings == []

    def test_list_of_as_completed_fires(self):
        findings = flow_sources(
            {
                "proj/w.py": (
                    "from concurrent.futures import as_completed\n"
                    "def gather(futures):\n"
                    "    return list(as_completed(futures))\n"
                ),
            }
        )
        assert [f.code for f in findings] == ["TNT004"]


class TestEnvTaint:
    def test_env_reaches_key_interprocedurally(self):
        findings = flow_sources(
            {
                "proj/keys.py": (
                    "import hashlib\n"
                    "def digest(material):\n"
                    "    return hashlib.sha256(material).hexdigest()\n"
                ),
                "proj/use.py": (
                    "import os\n"
                    "from keys import digest\n"
                    "def key_for(spec):\n"
                    "    host = os.uname().nodename\n"
                    "    return digest(f'{spec}:{host}'.encode())\n"
                ),
            }
        )
        assert ("TNT005", "proj/use.py", 5) in codes(findings)

    def test_resolved_method_call_does_not_leak_receiver_taint(self):
        """An env-configured object's methods return summary taint only."""
        findings = flow_sources(
            {
                "proj/m.py": (
                    "import hashlib\n"
                    "import os\n"
                    "class Campaign:\n"
                    "    def __init__(self, retries):\n"
                    "        self.retries = retries\n"
                    "    def spec_for(self, name):\n"
                    "        return name\n"
                    "def key_of(spec):\n"
                    "    return hashlib.sha256(spec).hexdigest()\n"
                    "def main(name):\n"
                    "    c = Campaign(os.getenv('RETRIES'))\n"
                    "    spec = c.spec_for(name)\n"
                    "    return key_of(spec)\n"
                ),
            }
        )
        assert findings == []

    def test_suppression_comment_silences_taint(self):
        findings = flow_sources(
            {
                "proj/m.py": (
                    "import hashlib\n"
                    "import os\n"
                    "def key_for(spec):\n"
                    "    host = os.uname().nodename\n"
                    "    blob = f'{spec}:{host}'.encode()\n"
                    "    return hashlib.sha256(blob).hexdigest()"
                    "  # simlint: disable=TNT005 (demo)\n"
                ),
            }
        )
        assert findings == []
