"""Extension bench: voltage noise grows with the number of active cores."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import ext_core_count


def test_ext_core_count(benchmark, quick):
    result = run_once(benchmark, lambda: ext_core_count.run(quick=quick))
    worst = result.series["worst_by_cores"]
    typical = result.series["typical_by_cores"]
    # The worst case (aligned deep stalls) grows monotonically and
    # strongly with active core count.
    assert np.all(np.diff(worst) > 0)
    assert worst[-1] / worst[0] > 2.0
    # The typical mix also worsens overall, but far more slowly —
    # averaging and slack pickup moderate it.
    assert typical[-1] > typical[0]
    assert worst[-1] / worst[0] > typical[-1] / typical[0]
    print("\n" + result.format_table())
