"""Arena execution invariance: jobs, faults, and the context path.

The arena inherits the executor's determinism contract
(docs/robustness.md): the report is byte-identical whatever the job
count, cache state, or seeded fault plan.  These tests run real (small)
campaigns on Proc100 windows; the context-path smoke test also holds
under the chaos CI environment (``REPRO_INJECT_FAULTS=default``), since
it builds its campaign through :mod:`repro.experiments.context`.
"""

import pytest

from repro.arena import registered_keys, run_arena
from repro.arena.report import json_report
from repro.errors import ConfigurationError, SchedulingError
from repro.faults import FaultInjector
from repro.measurement.campaign import MeasurementCampaign
from repro.measurement.executor import RetryPolicy

#: Tiny windows keep each arena sweep fast; the invariance contracts
#: are scale-independent.
FAST = RetryPolicy(max_retries=2, backoff_base=0.0)


def _campaign(jobs=1, injector=None, n_cores=2):
    return MeasurementCampaign(
        "Proc100",
        n_cycles=2000,
        seed=0,
        jobs=jobs,
        retry=FAST,
        injector=injector,
        n_cores=n_cores,
    )


def _arena(campaign, n_cores=2):
    return run_arena(suite="micro", n_cores=n_cores, campaign=campaign)


class TestJobsInvariance:
    def test_parallel_report_matches_serial(self):
        serial = json_report(_arena(_campaign(jobs=1)))
        parallel = json_report(_arena(_campaign(jobs=2)))
        assert parallel == serial

    def test_quad_core_parallel_matches_serial(self):
        serial = json_report(_arena(_campaign(jobs=1, n_cores=4), 4))
        parallel = json_report(_arena(_campaign(jobs=2, n_cores=4), 4))
        assert parallel == serial


class TestFaultTolerance:
    def test_default_fault_plan_is_bit_identical(self):
        """Injected faults cost retries, never change a scorecard."""
        clean = json_report(_arena(_campaign()))
        chaotic = json_report(
            _arena(_campaign(injector=FaultInjector("default")))
        )
        assert chaotic == clean


class TestContextPath:
    def test_smoke_through_shared_context(self):
        """The CLI path: campaign built by experiments.context (so any
        ambient REPRO_JOBS / REPRO_INJECT_FAULTS settings apply), run
        twice, byte-identical."""
        first = run_arena(
            suite="micro", n_cores=2, config="Proc100", n_cycles=2000
        )
        second = run_arena(
            suite="micro", n_cores=2, config="Proc100", n_cycles=2000
        )
        assert json_report(first) == json_report(second)
        assert {c.policy for c in first.scorecards} == set(registered_keys())
        assert first.oracle is not None


class TestValidation:
    def test_rejects_single_core(self):
        with pytest.raises(SchedulingError, match="n_cores"):
            run_arena(suite="micro", n_cores=1, campaign=_campaign())

    def test_rejects_under_provisioned_campaign(self):
        with pytest.raises(SchedulingError, match="cores"):
            _arena(_campaign(n_cores=2), n_cores=4)

    def test_unknown_suite(self):
        with pytest.raises(ConfigurationError, match="suite"):
            run_arena(suite="nope", campaign=_campaign())

    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="policy"):
            run_arena(
                suite="micro", policies=["nope"], campaign=_campaign()
            )
