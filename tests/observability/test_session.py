"""Session lifecycle: enable/disable, capture nesting, no-op fast path."""

from __future__ import annotations

from repro import observability as obs
from repro.observability import NULL_SPAN, ObservabilitySession


class TestLifecycle:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.active_session() is None

    def test_start_stop(self):
        session = obs.start()
        assert obs.enabled()
        assert obs.active_session() is session
        assert obs.stop() is session
        assert not obs.enabled()

    def test_stop_is_idempotent(self):
        assert obs.stop() is None

    def test_capture_restores_previous_session(self):
        outer = obs.start()
        with obs.capture() as inner:
            assert obs.active_session() is inner
            obs.increment("repro_runs_total")
        assert obs.active_session() is outer
        assert inner.metrics.counter_value("repro_runs_total") == 1
        assert outer.metrics.counter_value("repro_runs_total") == 0
        obs.stop()

    def test_capture_restores_on_exception(self):
        try:
            with obs.capture():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not obs.enabled()


class TestDisabledPath:
    def test_span_returns_shared_null_span(self):
        assert obs.span("anything") is NULL_SPAN
        assert obs.span("other", key="value") is obs.span("different")

    def test_metric_calls_are_noops(self):
        # Unknown names do not even validate while disabled: nothing runs.
        obs.increment("repro_runs_total")
        obs.set_gauge("repro_experiment_seconds", 1.0, experiment="x")
        obs.observe("repro_run_droops_per_1k", 2.0)
        with obs.capture() as session:
            pass
        assert session.metrics.json_payload()["counters"] == {}


class TestEnabledPath:
    def test_module_level_calls_record_on_active_session(self):
        with obs.capture() as session:
            with obs.span("stage", runs=1):
                obs.increment("repro_runs_total", 2)
                obs.observe("repro_run_droops_per_1k", 1.0)
        assert session.tracer.structure() == (("stage", ()),)
        assert session.metrics.counter_value("repro_runs_total") == 2

    def test_worker_payload_absorb_round_trip(self):
        worker = ObservabilitySession()
        with worker.tracer.span("run", {"run": "mcf"}):
            pass
        worker.metrics.increment("repro_runs_simulated_total")
        with obs.capture() as parent:
            with obs.span("campaign.batch"):
                parent.absorb_worker(worker.worker_payload())
        assert parent.tracer.structure() == (
            ("campaign.batch", (("run", ()),)),
        )
        grafted = parent.tracer.roots[0].children[0]
        assert grafted.worker
        assert (
            parent.metrics.counter_value("repro_runs_simulated_total") == 1
        )
