#!/usr/bin/env python
"""Typical-case design on today's chip and on the "future node" stand-ins.

Follows Sec. III of the paper: amplify voltage noise by removing package
decap (Proc100 → Proc25 → Proc3), then ask what a resilient (typical-case)
design is worth on each — the optimal operating margin and the net
performance improvement per error-recovery cost, and how the gains
evaporate as swings grow.

Run:  python examples/future_nodes.py
"""

from repro import MeasurementCampaign, ResilientDesignModel
from repro.core.resilience import RECOVERY_COSTS
from repro.pdn.platform import reset_response

SUBSET = (
    "astar", "gamess", "lbm", "libquantum", "mcf",
    "namd", "povray", "sjeng", "sphinx", "tonto",
)
CONFIGS = ("Proc100", "Proc25", "Proc3")


def main() -> None:
    print("== Reset droop growth with decap removal (Figs. 5-6) ==")
    base = None
    for config in CONFIGS:
        trace = reset_response(config, n_samples=200_000)
        droop_mv = trace.max_droop_fraction() * trace.nominal_voltage * 1e3
        if base is None:
            base = trace.peak_to_peak()
        print(f"  {config:8s} droop {droop_mv:6.1f} mV   "
              f"pk-pk {trace.peak_to_peak() / base:4.2f}x of stock")
    print()

    print("== Typical-case design value per node (Figs. 8/10, Tab. I) ==")
    for config in CONFIGS:
        campaign = MeasurementCampaign(config, n_cycles=30_000, seed=0)
        runs = campaign.all_runs(SUBSET, ("canneal", "streamcluster"))
        model = ResilientDesignModel([r.tail_model() for r in runs])
        print(f"  {config} ({len(runs)} runs):")
        for cost in RECOVERY_COSTS:
            optimum = model.optimal_margin(cost)
            marker = "  <- dead zone" if optimum.improvement < 0 else ""
            print(f"    recovery {cost:>6d} cycles: "
                  f"optimal margin {optimum.margin:5.1%}, "
                  f"improvement {optimum.improvement:+6.1%}{marker}")
    print()
    print("Gains shrink and optimal margins relax as decap disappears —")
    print("future nodes need finer-grained recovery, or software help.")


if __name__ == "__main__":
    main()
