"""Microarchitectural activity model.

The paper correlates on-die voltage noise with microarchitectural stall
events (L1/L2 misses, TLB misses, branch mispredictions, exceptions): a
stall drains the pipeline, current collapses, voltage overshoots; when the
stall resolves, execution units refill, current surges and voltage droops.
This package turns workload descriptions into per-cycle current traces that
carry exactly that structure, and exposes the VTune-style performance
counters (cycles, instructions, stall cycles) that the paper's stall-ratio
metric is built from.

* :mod:`repro.uarch.events` — the stall-event vocabulary and per-event
  current-envelope profiles.
* :mod:`repro.uarch.window` — the workload → core interface (an execution
  window: baseline activity + stall events).
* :mod:`repro.uarch.activity` — envelope synthesis (events → per-cycle
  activity).
* :mod:`repro.uarch.counters` — performance-counter model (stall ratio,
  IPC).
* :mod:`repro.uarch.core` — a single core: window → activity, current,
  counters.
* :mod:`repro.uarch.chip` — the dual-core chip with shared power supply.
"""

from repro.uarch.events import EVENT_PROFILES, EventProfile, StallEvent
from repro.uarch.window import ExecutionWindow
from repro.uarch.activity import synthesize_activity
from repro.uarch.counters import PerformanceCounters
from repro.uarch.core import Core, CoreExecution, CoreParameters
from repro.uarch.chip import Chip, ChipRun

__all__ = [
    "EVENT_PROFILES",
    "EventProfile",
    "StallEvent",
    "ExecutionWindow",
    "synthesize_activity",
    "PerformanceCounters",
    "Core",
    "CoreExecution",
    "CoreParameters",
    "Chip",
    "ChipRun",
]
