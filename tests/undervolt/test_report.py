"""Report contracts: byte-stable JSON, readable markdown."""

import json

from repro.undervolt import (
    UNDERVOLT_SCHEMA_VERSION,
    json_payload,
    json_report,
    markdown_report,
)

from tests.undervolt.conftest import WORKLOADS


class TestJsonReport:
    def test_schema_version_and_shape(self, vmin_map):
        payload = json.loads(json_report(vmin_map))
        assert payload["schema_version"] == UNDERVOLT_SCHEMA_VERSION
        assert payload["config"] == vmin_map.config
        assert payload["workloads"] == sorted(WORKLOADS)
        assert len(payload["cells"]) == len(vmin_map.cells)
        assert len(payload["frontier"]) == len(vmin_map.frontier)

    def test_cells_carry_every_field(self, vmin_map):
        cell = json_payload(vmin_map)["cells"][0]
        assert set(cell) == {
            "workload", "kind", "n_cores", "frequency_ghz",
            "critical_volt", "droop_volt", "vmin_volt",
            "guardband_fraction", "energy_savings_fraction",
        }

    def test_rendering_is_byte_stable(self, vmin_map):
        first = json_report(vmin_map)
        assert first == json_report(vmin_map)
        assert first.endswith("\n")
        # sort_keys: the serialized key order is alphabetical.
        assert first.index('"cells"') < first.index('"config"')

    def test_probe_state_stays_out_of_the_payload(self, vmin_map):
        # The JSON is the characterized physics only — runtime/probe
        # details would break the CI `cmp` determinism gate.
        payload = json_payload(vmin_map)
        assert "probe" not in payload
        assert "runtime" not in payload


class TestMarkdownReport:
    def test_sections_and_rows(self, vmin_map):
        text = markdown_report(vmin_map)
        assert f"# Undervolt sweep: `{vmin_map.config}`" in text
        assert "## Vmin map" in text
        assert "## Energy-efficiency frontier" in text
        for workload in WORKLOADS:
            assert f"| {workload} |" in text

    def test_one_row_per_cell_and_frontier_point(self, vmin_map):
        rows = [
            line for line in markdown_report(vmin_map).splitlines()
            if line.startswith("|") and not line.startswith("|-")
            and "workload" not in line and "cores" not in line.split("|")[1]
        ]
        assert len(rows) == len(vmin_map.cells) + len(vmin_map.frontier)
