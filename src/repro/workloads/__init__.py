"""Workload models: microbenchmarks, power virus, SPEC CPU2006 and PARSEC.

The paper's 881 runs cover 29 single-threaded SPEC CPU2006 programs, 11
multi-threaded PARSEC programs, and the 29x29 multi-program CPU2006
pairing sweep — plus hand-crafted microbenchmarks that isolate individual
stall events, the CPUBurn-style power virus used for margin discovery, and
the current-modulating loop used to reconstruct the impedance profile.

We do not execute x86 binaries; each workload is a *statistical activity
model* (mean activity, stall-event rates, burst structure, phase timeline)
that produces :class:`~repro.uarch.window.ExecutionWindow` samples with the
same noise-relevant structure.  DESIGN.md documents why that substitution
preserves the paper's behaviour.
"""

from repro.workloads.base import (
    BurstModel,
    PhasedWorkload,
    PhaseSegment,
    StatProfile,
    StatisticalWorkload,
    Workload,
    synthesize_window,
)
from repro.workloads.microbenchmarks import (
    EventLoopMicrobenchmark,
    IdleLoop,
    MICROBENCHMARKS,
    microbenchmark_for,
)
from repro.workloads.virus import PowerVirus, SteppedCurrentLoop
from repro.workloads.spec import SPEC_CPU2006, spec_benchmark
from repro.workloads.parsec import PARSEC, parsec_benchmark

__all__ = [
    "BurstModel",
    "PhasedWorkload",
    "PhaseSegment",
    "StatProfile",
    "StatisticalWorkload",
    "Workload",
    "synthesize_window",
    "EventLoopMicrobenchmark",
    "IdleLoop",
    "MICROBENCHMARKS",
    "microbenchmark_for",
    "PowerVirus",
    "SteppedCurrentLoop",
    "SPEC_CPU2006",
    "spec_benchmark",
    "PARSEC",
    "parsec_benchmark",
]
