"""Fixture: DIM-rule violations, analyzed via ``flow_paths`` as one project.

``# expect: CODE`` markers declare the exact finding set the dataflow
engine must produce for this file (see tests/analysis/test_flow.py).
"""

from __future__ import annotations

from repro import units

LINE_RESISTANCE_OHMS = 4.0 * units.MILLI_OHM
BULK_CAPACITANCE_FARADS = 220.0 * units.MICRO_FARAD
NOMINAL_VOLTS = 1.0


def rc_time_constant(resistance_ohms: float, capacitance_farads: float) -> float:
    return resistance_ohms * capacitance_farads


def broken_total() -> float:
    return LINE_RESISTANCE_OHMS + BULK_CAPACITANCE_FARADS  # expect: DIM001


def broken_compare(limit_volts: float) -> bool:
    return limit_volts > LINE_RESISTANCE_OHMS  # expect: DIM001


def misuse_keyword() -> float:
    return rc_time_constant(
        resistance_ohms=LINE_RESISTANCE_OHMS,
        capacitance_farads=NOMINAL_VOLTS,  # expect: DIM002
    )


def misuse_positional() -> float:
    return rc_time_constant(NOMINAL_VOLTS, BULK_CAPACITANCE_FARADS)  # expect: DIM002


def droop_ratio(depth_volts: float) -> float:
    sag_volts = depth_volts / NOMINAL_VOLTS  # expect: DIM003
    return sag_volts


def resonant_frequency_hz(
    inductance_henries: float, capacitance_farads: float
) -> float:
    return inductance_henries * capacitance_farads  # expect: DIM004


def annotated_tau(r, c):  # simlint: dim(r=ohm, c=F) -> Hz
    return r * c  # expect: DIM004
