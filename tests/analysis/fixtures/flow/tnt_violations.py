"""Fixture: TNT-rule violations, analyzed via ``flow_paths`` as one project.

``# expect: CODE`` markers declare the exact finding set the dataflow
engine must produce for this file (see tests/analysis/test_flow.py).
Each worker below breaks the reproducibility contract a different way:
a timestamp in the result, an underived stream in the result, an
unordered reduction, completion-order aggregation, and a host-dependent
cache key.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import List


def stamped_record(index: int) -> float:
    finished = time.monotonic()
    return finished + index  # expect: TNT001


def entropic_record(index: int) -> float:
    jitter = random.random()
    return jitter + index  # expect: TNT002


def spread_record(index: int) -> float:
    samples = {index * 0.5, index * 0.25, index * 0.125}
    return sum(samples)  # expect: TNT003


def host_cache_key(label: str) -> str:
    host = os.uname().nodename
    material = f"{label}:{host}"
    return hashlib.sha256(material.encode()).hexdigest()  # expect: TNT005


def run_campaign(indices: List[int]) -> List[float]:
    results: List[float] = []
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(stamped_record, i) for i in indices]
        futures += [pool.submit(entropic_record, i) for i in indices]
        futures += [pool.submit(spread_record, i) for i in indices]
        for future in as_completed(futures):  # expect: TNT004
            results.append(future.result())
    return results
