"""Command-line interface for the experiment harnesses.

Usage::

    python -m repro.cli list
    python -m repro.cli run fig08
    python -m repro.cli run tab1 --full
    python -m repro.cli run all
    python -m repro.cli measure mcf lbm mcf+lbm --jobs 2
    python -m repro.cli arena --suite micro --cores 4 --policies all
    python -m repro.cli undervolt-sweep --probe-depth-mv 40
    python -m repro.cli chaos --plan default

Each experiment prints the reproduced figure/table rows plus its
paper-vs-measured notes.  ``--full`` switches from the quick subsets to
the paper's full protocol sizes (slower).  ``chaos`` is the
fault-injection self-test: it re-measures a run set under a seeded
fault plan and fails unless the recovered results are bit-identical to
a clean pass (docs/robustness.md).

Every executing subcommand accepts the observability flags ``--trace``,
``--metrics`` and ``--profile-stages`` (env: ``$REPRO_TRACE`` /
``$REPRO_METRICS``); see docs/observability.md for the span model and
metric catalog.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import sys
from typing import Dict, Tuple

from repro import observability as obs

#: Short alias -> experiment module name.
EXPERIMENTS: Dict[str, str] = {
    "fig01": "fig01_scaling_trends",
    "fig02": "fig02_margin_frequency",
    "fig04": "fig04_impedance",
    "sec2c": "sec2c_margin_discovery",
    "fig05": "fig05_reset_droops",
    "fig06": "fig06_decap_swings",
    "fig07": "fig07_typical_case_cdf",
    "fig08": "fig08_margin_sweep",
    "fig09": "fig09_future_cdf",
    "fig10": "fig10_heatmaps",
    "fig11": "fig11_tlb_trace",
    "fig12": "fig12_event_swings",
    "fig13": "fig13_event_interference",
    "fig14": "fig14_noise_phases",
    "fig15": "fig15_stall_correlation",
    "fig16": "fig16_sliding_window",
    "fig17": "fig17_droop_variance",
    "tab1": "tab1_specrate_pass",
    "fig18": "fig18_policy_scatter",
    "fig19": "fig19_pass_increase",
    "ext-split": "ext_split_supply",
    "ext-online": "ext_online_scheduler",
    "ext-throttle": "ext_throttle",
    "ext-cores": "ext_core_count",
    "ext-arena": "ext_policy_arena",
    "ext-undervolt": "ext_undervolt",
}

#: One-line description per experiment, shown by ``list``.
DESCRIPTIONS: Dict[str, str] = {
    "fig01": "projected voltage swings across technology nodes",
    "fig02": "peak frequency vs operating margin per node",
    "fig04": "platform impedance profiles (stock vs reduced caps)",
    "sec2c": "worst-case margin discovery by undervolting",
    "fig05": "reset droop response across Proc100..Proc0",
    "fig06": "normalized pk-pk swings vs package capacitance",
    "fig07": "typical-case voltage-sample distribution (Proc100)",
    "fig08": "improvement vs margin per recovery cost (Proc100)",
    "fig09": "sample distributions on future nodes (Proc25/Proc3)",
    "fig10": "improvement heat maps per decap configuration",
    "fig11": "TLB-miss overshoot spikes on the VRM ripple",
    "fig12": "single-core stall-event swings",
    "fig13": "cross-core event interference matrix",
    "fig14": "voltage-noise phases (sphinx/gamess/tonto)",
    "fig15": "droops vs stall ratio across CPU2006",
    "fig16": "sliding-window co-schedule of astar",
    "fig17": "droop variance across co-schedules",
    "tab1": "SPECrate typical-case analysis at optimal margins",
    "fig18": "scheduling-policy scatter vs SPECrate",
    "fig19": "increase in passing schedules from scheduling",
    "ext-split": "extension: split vs connected core supplies",
    "ext-online": "extension: online learned noise-aware scheduling",
    "ext-throttle": "extension: open- vs closed-loop emergency throttling",
    "ext-cores": "extension: noise vs number of active cores",
    "ext-arena": "extension: N-core policy arena head-to-head",
    "ext-undervolt": "extension: Vmin map and energy-efficiency frontier",
}


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for campaign simulation (default: "
        "$REPRO_JOBS or 1; parallel runs are bit-identical to serial)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="persistent result-cache directory (default: $REPRO_CACHE_DIR "
        "or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache (always re-simulate)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="failed-run retries before serial fallback (default: "
        "$REPRO_MAX_RETRIES or 2)",
    )
    parser.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-run wall-clock timeout for pool workers (default: "
        "$REPRO_RUN_TIMEOUT; unlimited otherwise)",
    )
    parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="PLAN",
        help="seeded fault plan, e.g. 'crash:0.1,corrupt:0.2,seed=7' or "
        "'default' (default: $REPRO_INJECT_FAULTS; see docs/robustness.md)",
    )


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=os.environ.get("REPRO_TRACE") or None,
        metavar="FILE",
        help="write the hierarchical span trace as JSON "
        "(default: $REPRO_TRACE; disabled otherwise)",
    )
    parser.add_argument(
        "--metrics",
        default=os.environ.get("REPRO_METRICS") or None,
        metavar="FILE",
        help="write the metrics registry (default: $REPRO_METRICS; "
        "JSON, or Prometheus text when FILE ends in .prom)",
    )
    parser.add_argument(
        "--profile-stages",
        nargs="?",
        const=True,
        default=False,
        metavar="FILE",
        help=(
            "print the per-stage timing table and hottest runs on exit; "
            "with FILE, also write the schema-versioned stage profile as "
            "JSON (the input to `repro-lint hotspots`)"
        ),
    )


def _observability_requested(args: argparse.Namespace) -> bool:
    return bool(args.trace or args.metrics or args.profile_stages)


def _configure_observability(args: argparse.Namespace) -> None:
    if _observability_requested(args):
        obs.start()


def _finalize_observability(args: argparse.Namespace) -> None:
    """Export trace/metrics files and print profiles, as requested."""
    if not _observability_requested(args):
        return
    session = obs.stop()
    if session is None:  # pragma: no cover - start/stop always paired
        return
    if args.trace:
        with open(args.trace, "w", encoding="utf-8") as handle:
            json.dump(session.trace_payload(), handle, indent=2)
            handle.write("\n")
        print(f"wrote trace to {args.trace}")
    if args.metrics:
        if args.metrics.endswith(".prom"):
            text = session.metrics.prometheus_text()
        else:
            text = json.dumps(session.metrics_payload(), indent=2) + "\n"
        with open(args.metrics, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote metrics to {args.metrics}")
    if args.profile_stages:
        from repro.observability import (
            format_hottest,
            format_stage_table,
            hottest_spans,
            stage_table,
        )
        from repro.observability.profiling import stage_profile_payload

        if isinstance(args.profile_stages, str):
            with open(args.profile_stages, "w", encoding="utf-8") as handle:
                json.dump(
                    stage_profile_payload(session.tracer), handle, indent=2
                )
                handle.write("\n")
            print(f"wrote stage profile to {args.profile_stages}")
        print()
        print(format_stage_table(stage_table(session.tracer)))
        hottest = hottest_spans(session.tracer)
        if hottest:
            print()
            print(format_hottest(hottest))


#: What ``measure`` runs when no runs are named: two solo runs and two
#: pairings spanning the quiet-to-loud range of the quick subset.
DEFAULT_MEASURE_RUNS: Tuple[str, ...] = (
    "mcf", "lbm", "mcf+lbm", "namd+povray",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the figures/tables of the Voltage Smoothing "
        "paper (MICRO 2010).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    report = sub.add_parser(
        "report", help="run everything and write a markdown report"
    )
    report.add_argument(
        "--output", default="REPORT.md", help="report file path"
    )
    report.add_argument(
        "--full", action="store_true",
        help="use the full protocol sizes instead of quick subsets",
    )
    _add_execution_arguments(report)
    _add_observability_arguments(report)
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help="experiment alias (see 'list'), or 'all'",
    )
    run.add_argument(
        "--full",
        action="store_true",
        help="use the full 881-run protocol sizes instead of quick subsets",
    )
    _add_execution_arguments(run)
    _add_observability_arguments(run)
    measure = sub.add_parser(
        "measure",
        help="measure named runs directly (e.g. 'mcf' or 'astar+lbm')",
    )
    measure.add_argument(
        "runs",
        nargs="*",
        metavar="RUN",
        help="workload name, or 'a+b' for a co-running pair "
        f"(default: {' '.join(DEFAULT_MEASURE_RUNS)})",
    )
    measure.add_argument(
        "--config",
        default="Proc3",
        help="decap configuration to measure on (default: Proc3)",
    )
    measure.add_argument(
        "--cycles",
        type=int,
        default=20_000,
        metavar="N",
        help="window length per run in cycles (default: 20000)",
    )
    measure.add_argument(
        "--seed",
        type=int,
        default=0,
        help="campaign base seed (default: 0)",
    )
    _add_execution_arguments(measure)
    _add_observability_arguments(measure)
    arena = sub.add_parser(
        "arena",
        help="benchmark N-core scheduling policies head-to-head "
        "(see docs/arena.md)",
    )
    arena.add_argument(
        "--suite",
        default="micro",
        help="named workload suite to schedule (default: micro)",
    )
    arena.add_argument(
        "--cores",
        type=int,
        default=2,
        metavar="N",
        help="cores per shared supply (default: 2)",
    )
    arena.add_argument(
        "--policies",
        default="all",
        metavar="KEYS",
        help="comma-separated policy keys, or 'all' (default: all)",
    )
    arena.add_argument(
        "--config",
        default="Proc3",
        help="decap configuration to measure on (default: Proc3)",
    )
    arena.add_argument(
        "--cycles",
        type=int,
        default=12_000,
        metavar="N",
        help="window length per run in cycles (default: 12000)",
    )
    arena.add_argument(
        "--seed",
        type=int,
        default=0,
        help="campaign base seed (default: 0)",
    )
    arena.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the scorecard comparison as deterministic JSON",
    )
    arena.add_argument(
        "--markdown",
        default=None,
        metavar="FILE",
        help="write the ranked comparison as a markdown report",
    )
    _add_execution_arguments(arena)
    _add_observability_arguments(arena)
    undervolt = sub.add_parser(
        "undervolt-sweep",
        help="characterize Vmin per (workload, frequency, core-count) "
        "and extract the energy-efficiency frontier "
        "(see docs/undervolting.md)",
    )
    undervolt.add_argument(
        "--workloads",
        default="lbm,mcf,mcf+lbm",
        metavar="NAMES",
        help="comma-separated workload tokens; 'a+b' runs a "
        "multiprogram mix (default: lbm,mcf,mcf+lbm)",
    )
    undervolt.add_argument(
        "--frequencies",
        default="1.46,1.66,1.86",
        metavar="GHZ",
        help="comma-separated clock frequencies in GHz "
        "(default: 1.46,1.66,1.86)",
    )
    undervolt.add_argument(
        "--cores",
        default="2",
        metavar="N[,N...]",
        help="comma-separated core counts to sweep (default: 2)",
    )
    undervolt.add_argument(
        "--config",
        default="Proc100",
        help="decap configuration to characterize (default: Proc100)",
    )
    undervolt.add_argument(
        "--cycles",
        type=int,
        default=10_000,
        metavar="N",
        help="window length per run in cycles (default: 10000)",
    )
    undervolt.add_argument(
        "--seed",
        type=int,
        default=0,
        help="campaign base seed (default: 0)",
    )
    undervolt.add_argument(
        "--probe-depth-mv",
        type=float,
        default=0.0,
        metavar="MV",
        help="also run the below-Vmin probe this many millivolts under "
        "the frontier: inject voltage-dependent bit errors and verify "
        "the executor recovers bit-identical (default: off)",
    )
    undervolt.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the Vmin map + frontier as deterministic JSON",
    )
    undervolt.add_argument(
        "--markdown",
        default=None,
        metavar="FILE",
        help="write the Vmin map + frontier as a markdown report",
    )
    _add_execution_arguments(undervolt)
    _add_observability_arguments(undervolt)
    chaos = sub.add_parser(
        "chaos",
        help="self-test: re-measure under seeded fault injection and "
        "verify the results are bit-identical to a clean run",
    )
    chaos.add_argument(
        "runs",
        nargs="*",
        metavar="RUN",
        help="workload name, or 'a+b' for a co-running pair "
        f"(default: {' '.join(DEFAULT_MEASURE_RUNS)})",
    )
    chaos.add_argument(
        "--plan",
        default="default",
        metavar="PLAN",
        help="fault plan to inject (default: the canonical chaos plan; "
        "see docs/robustness.md)",
    )
    chaos.add_argument(
        "--config",
        default="Proc25",
        help="decap configuration to measure on (default: Proc25)",
    )
    chaos.add_argument(
        "--cycles",
        type=int,
        default=6000,
        metavar="N",
        help="window length per run in cycles (default: 6000)",
    )
    chaos.add_argument(
        "--seed",
        type=int,
        default=0,
        help="campaign base seed (default: 0)",
    )
    chaos.add_argument(
        "--jobs",
        type=int,
        default=2,
        metavar="N",
        help="worker processes for the faulted passes (default: 2)",
    )
    chaos.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="failed-run retries before serial fallback (default: "
        "$REPRO_MAX_RETRIES or 2)",
    )
    chaos.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-run timeout for the faulted passes (default: "
        "$REPRO_RUN_TIMEOUT; unlimited otherwise)",
    )
    _add_observability_arguments(chaos)
    return parser


def _configure_execution(args: argparse.Namespace) -> None:
    from repro.experiments.context import configure_execution
    from repro.measurement.executor import reset_global_stats

    configure_execution(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        no_cache=True if args.no_cache else None,
        max_retries=args.max_retries,
        run_timeout=args.run_timeout,
        inject_faults=args.inject_faults,
    )
    # Each CLI invocation reports its own campaign traffic.
    reset_global_stats()


def _print_execution_stats() -> None:
    from repro.experiments.context import shared_cache
    from repro.measurement.executor import format_stats, global_stats

    stats = global_stats()
    if stats.simulated or stats.cache.lookups or stats.memory_hits:
        print(format_stats(stats, shared_cache()))


def _run_one(alias: str, quick: bool) -> None:
    module = importlib.import_module(
        f"repro.experiments.{EXPERIMENTS[alias]}"
    )
    with obs.span(f"experiment.{alias}", experiment=alias):
        started = obs.monotonic_seconds()
        result = module.run(quick=quick)
        elapsed = obs.monotonic_seconds() - started
        obs.set_gauge(
            "repro_experiment_seconds", elapsed, experiment=alias
        )
    print(result.format_table())
    print(f"({alias} finished in {elapsed:.1f} s)")
    print()


def _run_measure(args: argparse.Namespace) -> int:
    """Measure the named runs and print a per-run summary table."""
    from repro.errors import ReproError
    from repro.experiments.context import get_campaign

    tokens = list(args.runs) or list(DEFAULT_MEASURE_RUNS)
    campaign = get_campaign(
        args.config, n_cycles=args.cycles, seed=args.seed
    )
    try:
        specs = [
            campaign.run_spec(*token.split("+")) for token in tokens
        ]
        measurements = campaign.measure_specs(specs)
    except ReproError as error:
        print(f"measure: {error}", file=sys.stderr)
        return 2
    width = max(len(m.spec.label) for m in measurements)
    print(
        f"{'run'.ljust(width)}  droops/1k  max droop  overshoot    IPC"
    )
    for m in measurements:
        print(
            f"{m.spec.label.ljust(width)}  "
            f"{m.droop_samples_per_1k:9.2f}  "
            f"{100 * m.max_droop:8.2f}%  "
            f"{100 * m.max_overshoot:8.2f}%  "
            f"{m.throughput_ipc:5.2f}"
        )
    print()
    _print_execution_stats()
    return 0


def _run_arena(args: argparse.Namespace) -> int:
    """Run the policy arena and print/write the ranked comparison."""
    from repro.arena.harness import run_arena
    from repro.arena.report import json_report, markdown_report
    from repro.errors import ReproError

    keys = None
    if args.policies.strip().lower() != "all":
        keys = [
            key.strip() for key in args.policies.split(",") if key.strip()
        ]
    try:
        result = run_arena(
            suite=args.suite,
            n_cores=args.cores,
            policies=keys,
            config=args.config,
            n_cycles=args.cycles,
            seed=args.seed,
        )
    except ReproError as error:
        print(f"arena: {error}", file=sys.stderr)
        return 2
    print(markdown_report(result), end="")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(json_report(result))
        print(f"wrote scorecards to {args.json}")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(markdown_report(result))
        print(f"wrote report to {args.markdown}")
    print()
    _print_execution_stats()
    return 0


def _split_csv(text: str) -> list:
    return [item.strip() for item in text.split(",") if item.strip()]


def _run_undervolt(args: argparse.Namespace) -> int:
    """Run the Vmin sweep; optionally probe below the frontier."""
    from repro import units
    from repro.errors import ReproError
    from repro.undervolt import (
        markdown_report,
        json_report,
        probe_below_vmin,
        run_sweep,
    )

    try:
        vmin_map = run_sweep(
            workloads=_split_csv(args.workloads),
            frequencies_ghz=[
                float(f) for f in _split_csv(args.frequencies)
            ],
            core_counts=[int(n) for n in _split_csv(args.cores)],
            config=args.config,
            n_cycles=args.cycles,
            seed=args.seed,
        )
    except (ReproError, ValueError) as error:
        print(f"undervolt-sweep: {error}", file=sys.stderr)
        return 2
    print(markdown_report(vmin_map), end="")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(json_report(vmin_map))
        print(f"wrote Vmin map to {args.json}")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(markdown_report(vmin_map))
        print(f"wrote report to {args.markdown}")
    print()
    _print_execution_stats()
    if args.probe_depth_mv > 0:
        try:
            probe = probe_below_vmin(
                vmin_map, args.probe_depth_mv * units.MILLI_VOLT
            )
        except ReproError as error:
            print(f"undervolt-sweep: {error}", file=sys.stderr)
            return 2
        print(f"[probe] {probe.summary()}")
        if not probe.converged:
            print(
                "undervolt-sweep: below-Vmin probe diverged from the "
                "clean run",
                file=sys.stderr,
            )
            return 1
    return 0


def _run_chaos(args: argparse.Namespace) -> int:
    """Chaos self-test: clean run vs two faulted passes, bit-compared.

    Pass 1 measures with a cold persistent cache under injection
    (exercising worker crashes/hangs/exceptions and store-time
    corruption); pass 2 re-measures against the now possibly-corrupted
    warm cache with a fresh injector (exercising the corrupt-read
    recovery path).  Both must reproduce the clean measurements
    bit-for-bit or the command exits non-zero.
    """
    import tempfile

    from repro.errors import ReproError
    from repro.faults import FaultInjector, parse_plan
    from repro.measurement.cache import ResultCache
    from repro.measurement.campaign import MeasurementCampaign
    from repro.measurement.executor import RetryPolicy
    from repro.measurement.record import diff_measurements

    try:
        plan = parse_plan(args.plan)
    except ReproError as error:
        print(f"chaos: {error}", file=sys.stderr)
        return 2
    if plan is None:
        print(
            "chaos: plan disables every fault; nothing to test",
            file=sys.stderr,
        )
        return 2
    retry = RetryPolicy.from_env(
        max_retries=args.max_retries, run_timeout=args.run_timeout
    )
    tokens = list(args.runs) or list(DEFAULT_MEASURE_RUNS)

    def measure(campaign: MeasurementCampaign) -> list:
        specs = [
            campaign.run_spec(*token.split("+")) for token in tokens
        ]
        return campaign.measure_specs(specs)

    try:
        clean = measure(
            MeasurementCampaign(
                args.config, n_cycles=args.cycles, seed=args.seed,
                jobs=1, retry=retry,
            )
        )
        failed = 0
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            for attempt in ("cold", "warm"):
                injector = FaultInjector(plan)
                campaign = MeasurementCampaign(
                    args.config, n_cycles=args.cycles, seed=args.seed,
                    jobs=args.jobs, cache=ResultCache(tmp), retry=retry,
                    injector=injector,
                )
                faulted = measure(campaign)
                diffs = [
                    f"  {m.spec.label}: {line}"
                    for m, f in zip(clean, faulted)
                    for line in diff_measurements(m, f)
                ]
                verdict = "bit-identical" if not diffs else "DIVERGED"
                stats = campaign.executor.stats
                injected = injector.summary()
                if not injector.injected and stats.recovery_active:
                    # Pool workers rebuild their own injector, so fires
                    # inside them never reach this process's counters.
                    injected = "faults injected in workers (parent saw none)"
                print(f"{attempt} pass: {injected}; {verdict}")
                print(f"  {stats.summary()}")
                if diffs:
                    failed += 1
                    print("\n".join(diffs), file=sys.stderr)
    except ReproError as error:
        print(f"chaos: {error}", file=sys.stderr)
        return 2
    if failed:
        print(
            f"chaos: {failed} faulted pass(es) diverged from the clean "
            "run",
            file=sys.stderr,
        )
        return 1
    print(
        f"chaos: {len(tokens)} runs recovered bit-identical under plan "
        f"{plan.spec!r}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(alias) for alias in EXPERIMENTS)
        for alias in EXPERIMENTS:
            print(f"{alias.ljust(width)}  {DESCRIPTIONS[alias]}")
        return 0
    if args.command == "report":
        from repro.reporting import generate_report

        _configure_execution(args)
        _configure_observability(args)
        generate_report(path=args.output, quick=not args.full)
        _finalize_observability(args)
        print(f"wrote {args.output}")
        return 0
    if args.command == "measure":
        _configure_execution(args)
        _configure_observability(args)
        status = _run_measure(args)
        _finalize_observability(args)
        return status
    if args.command == "arena":
        _configure_execution(args)
        _configure_observability(args)
        status = _run_arena(args)
        _finalize_observability(args)
        return status
    if args.command == "undervolt-sweep":
        _configure_execution(args)
        _configure_observability(args)
        status = _run_undervolt(args)
        _finalize_observability(args)
        return status
    if args.command == "chaos":
        _configure_observability(args)
        status = _run_chaos(args)
        _finalize_observability(args)
        return status
    # command == "run"
    _configure_execution(args)
    _configure_observability(args)
    target = args.experiment.lower()
    quick = not args.full
    if target == "all":
        for alias in EXPERIMENTS:
            _run_one(alias, quick)
        _print_execution_stats()
        _finalize_observability(args)
        return 0
    if target not in EXPERIMENTS:
        print(
            f"unknown experiment {target!r}; run 'list' to see choices",
            file=sys.stderr,
        )
        return 2
    _run_one(target, quick)
    _print_execution_stats()
    _finalize_observability(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
