"""Measurement infrastructure: the software oscilloscope.

The paper senses on-die voltage through the package's ``VCCsense`` /
``VSSsense`` pins with a differential probe and an Infiniium oscilloscope
that stores *compressed histograms* of voltage samples — that compression
is what lets it record minutes of full-program execution (hundreds of
billions of cycles) instead of simulation-scale snippets.

This package is that tooling for simulated traces:

* :mod:`repro.measurement.probe` — probe noise / scope front-end.
* :mod:`repro.measurement.histogram` — the compressed sample histograms.
* :mod:`repro.measurement.droops` — droop/overshoot excursion detection
  (counts, depths, durations) and the droops-per-1K-cycles metric.
* :mod:`repro.measurement.tail` — parametric droop-depth tail model used
  to extrapolate emergency rates at margins deeper than a finite window
  can resolve empirically.
* :mod:`repro.measurement.campaign` — batch measurement over workload
  suites (the paper's 881 runs), with caching.
* :mod:`repro.measurement.record` — compact, bit-exact per-run records
  (cache entries, golden fixtures).
* :mod:`repro.measurement.cache` — persistent on-disk result cache with
  atomic writes and corruption-tolerant reads.
* :mod:`repro.measurement.executor` — campaign execution engine: process
  fan-out over cache misses, bit-identical to serial execution.
"""

from repro.measurement.histogram import CompressedHistogram
from repro.measurement.droops import (
    DroopStatistics,
    detect_droops,
    detect_overshoots,
    droop_samples_per_1k,
)
from repro.measurement.probe import DifferentialProbe, Oscilloscope
from repro.measurement.tail import DroopTailModel
from repro.measurement.campaign import (
    MeasurementCampaign,
    RunMeasurement,
    RunSpec,
)
from repro.measurement.record import (
    SCHEMA_VERSION,
    decode_measurement,
    diff_measurements,
    encode_measurement,
    measurements_identical,
)
from repro.measurement.cache import CacheStats, ResultCache, cache_key
from repro.measurement.executor import (
    CampaignExecutor,
    ExecutorStats,
    global_stats,
    reset_global_stats,
)

__all__ = [
    "CompressedHistogram",
    "DroopStatistics",
    "detect_droops",
    "detect_overshoots",
    "droop_samples_per_1k",
    "DifferentialProbe",
    "Oscilloscope",
    "DroopTailModel",
    "MeasurementCampaign",
    "RunMeasurement",
    "RunSpec",
    "SCHEMA_VERSION",
    "decode_measurement",
    "diff_measurements",
    "encode_measurement",
    "measurements_identical",
    "CacheStats",
    "ResultCache",
    "cache_key",
    "CampaignExecutor",
    "ExecutorStats",
    "global_stats",
    "reset_global_stats",
]
