"""repro — a reproduction of "Voltage Smoothing: Characterizing and
Mitigating Voltage Noise in Production Processors via Software-Guided
Thread Scheduling" (Reddi et al., MICRO 2010).

The library replaces the paper's physical apparatus (an instrumented
Core 2 Duo, scope + differential probe, decap removal) with a calibrated
simulation stack and rebuilds every analysis on top of it:

* :mod:`repro.pdn` — lumped RLC power-delivery-network simulation,
  impedance profiles, the Proc100…Proc0 decap-removal family.
* :mod:`repro.uarch` — stall-event-driven core activity/current model,
  the dual-core chip with shared supply and cross-core slack coupling.
* :mod:`repro.workloads` — microbenchmarks, power virus, and statistical
  models of SPEC CPU2006 (29) and PARSEC (11).
* :mod:`repro.measurement` — scope-style histograms, droop/overshoot
  detection, tail models, and the 881-run campaign protocol.
* :mod:`repro.core` — the paper's contribution: the typical-case
  (resilient) design model and the noise-aware thread scheduler.
* :mod:`repro.scaling` — ITRS/ring-oscillator technology projections.
* :mod:`repro.experiments` — one harness per paper figure/table.

Quickstart::

    from repro import Chip, spec_benchmark
    chip = Chip("Proc100")
    window = spec_benchmark("mcf").sample_window(50_000, rng=0)
    run = chip.run([window])
    print(run.voltage.max_droop_fraction())
"""

from repro.errors import (
    CalibrationError,
    ConfigurationError,
    MeasurementError,
    ReproError,
    SchedulingError,
    SimulationError,
    WorkloadError,
)
from repro.pdn import (
    ImpedanceProfile,
    PowerDeliveryNetwork,
    TransientSimulator,
    VoltageTrace,
    proc_config,
)
from repro.pdn.platform import (
    CLOCK_FREQUENCY_HZ,
    NOMINAL_VOLTAGE,
    WORST_CASE_MARGIN,
    build_network,
    build_simulator,
)
from repro.uarch import Chip, ChipRun, Core, ExecutionWindow, StallEvent
from repro.workloads import (
    IdleLoop,
    PowerVirus,
    parsec_benchmark,
    spec_benchmark,
)
from repro.measurement import MeasurementCampaign
from repro.core import (
    BatchScheduler,
    DroopPolicy,
    HybridPolicy,
    IPCPolicy,
    PairOracle,
    ResilientDesignModel,
    performance_improvement,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "CalibrationError",
    "WorkloadError",
    "MeasurementError",
    "SchedulingError",
    "ImpedanceProfile",
    "PowerDeliveryNetwork",
    "TransientSimulator",
    "VoltageTrace",
    "proc_config",
    "CLOCK_FREQUENCY_HZ",
    "NOMINAL_VOLTAGE",
    "WORST_CASE_MARGIN",
    "build_network",
    "build_simulator",
    "Chip",
    "ChipRun",
    "Core",
    "ExecutionWindow",
    "StallEvent",
    "IdleLoop",
    "PowerVirus",
    "parsec_benchmark",
    "spec_benchmark",
    "MeasurementCampaign",
    "BatchScheduler",
    "DroopPolicy",
    "HybridPolicy",
    "IPCPolicy",
    "PairOracle",
    "ResilientDesignModel",
    "performance_improvement",
    "__version__",
]
