"""Synthesis of per-cycle activity from baseline + stall events.

Each stall event stamps two envelopes onto the baseline activity series:

* a **multiplicative drop** — a drain ramp down to ``1 - drop_fraction``,
  a stalled plateau, and a refill ramp back to 1.  Overlapping drops
  multiply: two overlapping misses stall the core more deeply than either
  alone.
* an **additive surge** — once the stall resolves, the queued-up work
  issues in a saturating burst.  Crucially this burst reaches toward *full
  machine activity* regardless of how busy the program usually keeps the
  core, so it is modelled as an absolute addition of
  ``surge_factor - 1`` (decaying exponentially), not as a multiplier.
  These refill bursts are the paper's droop mechanism: "after the miss
  data becomes available, functional units become busy and there is a
  surge in current activity.  This steep increase in current causes
  voltage to droop."

The result is clipped to [0, ``MAX_ACTIVITY``].
"""

from __future__ import annotations

from typing import Iterable, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.uarch.events import (
    EVENT_ORDER,
    EventProfile,
    EventTrace,
    StallEvent,
    profile_for,
)

#: Activity ceiling: refill bursts may briefly exceed nominal full activity.
MAX_ACTIVITY = 1.35


def event_envelope(profile: EventProfile) -> Tuple[np.ndarray, np.ndarray]:
    """The (multiplicative-drop, additive-surge) envelopes of one event.

    Both arrays start at the event's first drain cycle; the drop array is
    1.0 and the surge array 0.0 outside the event's footprint.
    """
    drain = np.linspace(
        1.0, 1.0 - profile.drop_fraction, profile.drain_cycles + 1
    )[1:]
    plateau = np.full(profile.stall_cycles, 1.0 - profile.drop_fraction)
    refill = np.linspace(
        1.0 - profile.drop_fraction, 1.0, profile.refill_cycles + 1
    )[1:]
    drop = np.concatenate([drain, plateau, refill])

    tail_len = int(4 * profile.surge_decay_cycles)
    surge_peak = profile.surge_factor - 1.0
    ramp = np.linspace(0.0, surge_peak, profile.refill_cycles + 1)[1:]
    decay = surge_peak * np.exp(
        -np.arange(1, tail_len + 1) / profile.surge_decay_cycles
    )
    surge = np.concatenate([
        np.zeros(drain.size + plateau.size), ramp, decay,
    ])

    length = max(drop.size, surge.size)
    drop = np.pad(drop, (0, length - drop.size), constant_values=1.0)
    surge = np.pad(surge, (0, length - surge.size), constant_values=0.0)
    return drop, surge


class _EnvelopeTables:
    """The per-kind envelopes flattened into two scatter-ready tables.

    ``drop_table``/``surge_table`` concatenate every kind's envelope in
    :data:`EVENT_ORDER`; ``offsets[code]``/``lengths[code]`` locate one
    kind's slice.  Built once: every ``synthesize_activity`` call then
    reduces to integer index arithmetic plus two ufunc scatters.
    """

    __slots__ = ("drop_table", "surge_table", "offsets", "lengths")

    def __init__(self) -> None:
        shapes = [event_envelope(profile_for(event)) for event in EVENT_ORDER]
        lengths = np.array([drop.size for drop, _ in shapes], dtype=np.intp)
        offsets = np.zeros(len(shapes), dtype=np.intp)
        offsets[1:] = np.cumsum(lengths)[:-1]
        self.drop_table = np.concatenate([drop for drop, _ in shapes])
        self.surge_table = np.concatenate([surge for _, surge in shapes])
        self.offsets = offsets
        self.lengths = lengths


#: Built eagerly at import (a few dozen samples per event kind) so
#: worker-reachable code never writes a module global.
_TABLES: _EnvelopeTables = _EnvelopeTables()


def _envelope_tables() -> _EnvelopeTables:
    return _TABLES


def synthesize_activity(
    baseline: np.ndarray,
    events: Union[EventTrace, Iterable[Tuple[int, StallEvent]]],
) -> np.ndarray:
    """Apply stall-event envelopes to a baseline activity series.

    Parameters
    ----------
    baseline:
        Per-cycle activity in [0, 1].
    events:
        An :class:`EventTrace` (or ``(cycle, event)`` pairs); events
        whose footprint extends past the end of the window are
        truncated.

    Returns
    -------
    numpy.ndarray
        Realized per-cycle activity in [0, ``MAX_ACTIVITY``].
    """
    baseline = np.asarray(baseline, dtype=float)
    if baseline.ndim != 1 or baseline.size == 0:
        raise ConfigurationError("baseline must be a non-empty 1-D array")
    trace = EventTrace.coerce(events)
    drop_env = np.ones_like(baseline)
    surge_env = np.zeros_like(baseline)
    if len(trace):
        outside = (trace.cycles < 0) | (trace.cycles >= baseline.size)
        if np.any(outside):
            cycle = int(trace.cycles[np.argmax(outside)])
            raise ConfigurationError(
                f"event at cycle {cycle} outside window of {baseline.size}"
            )
        tables = _envelope_tables()
        # Ragged scatter: each event contributes a slice of its kind's
        # envelope, truncated at the window end.  Expanding all slices
        # into one flat index array keeps the per-element application
        # order identical to applying events one by one (``.at`` ufuncs
        # honour repeated indices in order), so overlapping envelopes
        # compose bit-identically to the scalar loop this replaced.
        spans = np.minimum(
            tables.lengths[trace.codes], baseline.size - trace.cycles
        )
        total = int(spans.sum())
        if total:
            starts = np.cumsum(spans) - spans
            offs = np.arange(total, dtype=np.intp) - np.repeat(starts, spans)
            flat = np.repeat(trace.cycles, spans) + offs
            table_pos = np.repeat(tables.offsets[trace.codes], spans) + offs
            np.multiply.at(drop_env, flat, tables.drop_table[table_pos])
            np.add.at(surge_env, flat, tables.surge_table[table_pos])
    # The surge is suppressed while the core is still (partially) stalled
    # by an overlapping event: scale it by the drop envelope.
    activity = baseline * drop_env + surge_env * drop_env
    return np.clip(activity, 0.0, MAX_ACTIVITY)
