"""Batch measurement campaigns — the paper's 881 benchmarking runs.

Sec. III-A draws its conclusions from 881 runs on the instrumented
machine: 29 single-threaded SPEC CPU2006 programs, 11 multi-threaded
PARSEC programs, and the full 29x29 multi-program CPU2006 pairing sweep.
:class:`MeasurementCampaign` reproduces that protocol against the
simulated chip: each run samples representative execution windows (at a
random point of program time), executes them on both cores, and records
counters, droop/overshoot excursions and the sample histogram.

Runs are cached by (workloads, configuration), so experiment harnesses can
share one campaign instance without re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, WorkloadError
from repro.measurement.droops import (
    CHARACTERIZATION_MARGIN,
    DroopStatistics,
    detect_droops,
    detect_overshoots,
    droop_samples_per_1k,
)
from repro.measurement.histogram import CompressedHistogram
from repro.measurement.tail import DroopTailModel
from repro.random_utils import SeedLike, derive_generator
from repro.uarch.chip import Chip
from repro.uarch.counters import PerformanceCounters
from repro.workloads.base import Workload
from repro.workloads.microbenchmarks import IdleLoop
from repro.workloads.parsec import PARSEC, ParsecWorkload
from repro.workloads.spec import SPEC_CPU2006

#: Histogram binning shared by all campaign measurements.
HISTOGRAM_LO = -0.20
HISTOGRAM_HI = 0.20
HISTOGRAM_BINS = 1600


@dataclass(frozen=True)
class RunSpec:
    """Identity of one benchmarking run."""

    kind: str  # "single" | "multithread" | "multiprogram"
    workloads: Tuple[str, ...]
    config: str

    @property
    def label(self) -> str:
        return f"{'+'.join(self.workloads)}@{self.config}"


@dataclass(frozen=True)
class RunMeasurement:
    """Everything recorded about one run."""

    spec: RunSpec
    n_cycles: int
    counters: Tuple[PerformanceCounters, ...]
    droops: DroopStatistics
    overshoots: DroopStatistics
    histogram: CompressedHistogram
    droop_samples_per_1k: float

    @property
    def max_droop(self) -> float:
        """Deepest droop excursion (fraction of nominal)."""
        return self.droops.max_depth()

    @property
    def max_overshoot(self) -> float:
        return self.overshoots.max_depth()

    @property
    def throughput_ipc(self) -> float:
        """Chip throughput: the sum of per-core IPCs."""
        return float(sum(c.ipc for c in self.counters))

    @property
    def mean_stall_ratio(self) -> float:
        return float(np.mean([c.stall_ratio for c in self.counters]))

    def tail_model(self) -> DroopTailModel:
        """Tail model for emergency-rate extrapolation on this run."""
        return DroopTailModel(self.droops)


class MeasurementCampaign:
    """Runs and caches workload measurements on one chip configuration.

    Parameters
    ----------
    config:
        Decap configuration name (``"Proc100"``, ``"Proc25"``, ``"Proc3"`` …).
    n_cycles:
        Window length per run.  Longer windows resolve rarer events;
        40k cycles keep the full 881-run sweep tractable.
    seed:
        Base seed; every run derives an independent stream from it, so a
        campaign is fully reproducible.
    """

    def __init__(
        self,
        config: str = "Proc100",
        n_cycles: int = 40_000,
        seed: SeedLike = 0,
    ) -> None:
        if n_cycles < 1000:
            raise ConfigurationError("n_cycles must be at least 1000")
        self._config = config
        self._n_cycles = int(n_cycles)
        self._seed = seed
        self._chip = Chip(config, with_ripple=True)
        self._cache: Dict[Tuple[str, ...], RunMeasurement] = {}
        self._idle = IdleLoop()

    @property
    def config(self) -> str:
        return self._config

    @property
    def n_cycles(self) -> int:
        return self._n_cycles

    @property
    def chip(self) -> Chip:
        return self._chip

    # ------------------------------------------------------------------
    # Measurement primitives
    # ------------------------------------------------------------------
    def _resolve(self, name: str) -> Workload:
        if name == "idle":
            return self._idle
        if name in SPEC_CPU2006:
            return SPEC_CPU2006[name]
        if name in PARSEC:
            return PARSEC[name]
        raise WorkloadError(f"unknown workload {name!r}")

    def _measure(self, spec: RunSpec) -> RunMeasurement:
        rng = derive_generator(self._seed, spec.kind, *spec.workloads, spec.config)
        if spec.kind == "multithread":
            workload = self._resolve(spec.workloads[0])
            assert isinstance(workload, ParsecWorkload)
            at_time = float(rng.uniform(0, workload.duration_seconds))
            windows = list(
                workload.sample_thread_windows(
                    self._chip.n_cores, self._n_cycles, rng=rng, at_time_s=at_time
                )
            )
        else:
            windows = []
            for i, name in enumerate(spec.workloads):
                workload = self._resolve(name)
                at_time = float(rng.uniform(0, workload.duration_seconds))
                windows.append(
                    workload.sample_window(
                        self._n_cycles,
                        rng=derive_generator(rng, "win", i),
                        at_time_s=at_time,
                    )
                )
            while len(windows) < self._chip.n_cores:
                windows.append(self._idle.sample_window(
                    self._n_cycles, rng=derive_generator(rng, "idle", len(windows))
                ))
        run = self._chip.run(windows, seed=derive_generator(rng, "chip"))
        histogram = CompressedHistogram(HISTOGRAM_LO, HISTOGRAM_HI, HISTOGRAM_BINS)
        histogram.add(run.voltage.deviations_fraction())
        return RunMeasurement(
            spec=spec,
            n_cycles=self._n_cycles,
            counters=tuple(e.counters for e in run.cores),
            droops=detect_droops(run.voltage),
            overshoots=detect_overshoots(run.voltage),
            histogram=histogram,
            droop_samples_per_1k=droop_samples_per_1k(
                run.voltage, CHARACTERIZATION_MARGIN
            ),
        )

    def measure(self, *workload_names: str, kind: Optional[str] = None) -> RunMeasurement:
        """Measure (or fetch from cache) one run.

        One name → single-threaded (other core idles), except PARSEC names
        which run multi-threaded; two names → multi-program pair.
        """
        if not 1 <= len(workload_names) <= self._chip.n_cores:
            raise ConfigurationError(
                f"need 1..{self._chip.n_cores} workloads, got {len(workload_names)}"
            )
        if kind is None:
            if len(workload_names) == 2:
                kind = "multiprogram"
            elif workload_names[0] in PARSEC:
                kind = "multithread"
            else:
                kind = "single"
        spec = RunSpec(kind=kind, workloads=tuple(workload_names), config=self._config)
        key = (kind,) + spec.workloads
        cached = self._cache.get(key)
        if cached is None:
            cached = self._measure(spec)
            self._cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Suites
    # ------------------------------------------------------------------
    def single_threaded_runs(
        self, names: Optional[Sequence[str]] = None
    ) -> List[RunMeasurement]:
        """The 29 single-threaded CPU2006 runs (other core idle)."""
        names = list(names) if names is not None else sorted(SPEC_CPU2006)
        return [self.measure(name, kind="single") for name in names]

    def multithreaded_runs(
        self, names: Optional[Sequence[str]] = None
    ) -> List[RunMeasurement]:
        """The 11 PARSEC multi-threaded runs."""
        names = list(names) if names is not None else sorted(PARSEC)
        return [self.measure(name, kind="multithread") for name in names]

    def multiprogram_runs(
        self, names: Optional[Sequence[str]] = None
    ) -> List[RunMeasurement]:
        """The 29x29 CPU2006 pairing sweep (841 runs)."""
        names = list(names) if names is not None else sorted(SPEC_CPU2006)
        return [
            self.measure(a, b, kind="multiprogram")
            for a in names
            for b in names
        ]

    def specrate_runs(
        self, names: Optional[Sequence[str]] = None
    ) -> List[RunMeasurement]:
        """SPECrate: two copies of the same program (the diagonal)."""
        names = list(names) if names is not None else sorted(SPEC_CPU2006)
        return [self.measure(name, name, kind="multiprogram") for name in names]

    def all_runs(
        self,
        spec_names: Optional[Sequence[str]] = None,
        parsec_names: Optional[Sequence[str]] = None,
    ) -> List[RunMeasurement]:
        """The full 881-run protocol (29 ST + 11 MT + 841 MP).

        Pass subsets to both arguments for a scaled-down protocol (used by
        the quick benchmark variants).
        """
        return (
            self.single_threaded_runs(spec_names)
            + self.multithreaded_runs(parsec_names)
            + self.multiprogram_runs(spec_names)
        )
