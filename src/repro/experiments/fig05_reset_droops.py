"""Fig. 5(m-r) — reset-stimulus droop response across Proc100 … Proc0.

Paper: the stock processor sees a sharp ~150 mV droop that recovers
quickly; as package capacitance is removed the droop deepens and widens,
reaching ~350 mV over several cycles on Proc0 — deep enough that Proc0
cannot boot (it is the only processor that fails stability testing).
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import ExperimentResult
from repro.pdn.decap import ordered_configs
from repro.pdn.platform import WORST_CASE_MARGIN, reset_response
from repro.pdn.simulate import VoltageTrace


def reset_traces(n_samples: int = 300_000) -> Dict[str, VoltageTrace]:
    """The six scope captures of Fig. 5(m-r)."""
    return {
        cfg.name: reset_response(cfg, n_samples=n_samples)
        for cfg in ordered_configs()
    }


def run(quick: bool = False) -> ExperimentResult:
    traces = reset_traces(n_samples=150_000 if quick else 300_000)
    result = ExperimentResult(
        experiment_id="Fig. 5(m-r)",
        title="Voltage droop response to the reset stimulus per decap config",
        columns=("config", "droop (mV)", "overshoot (mV)", "pk-pk (mV)",
                 "exceeds 14% margin", "boots (paper)"),
    )
    for cfg in ordered_configs():
        trace = traces[cfg.name]
        droop_mv = trace.max_droop_fraction() * trace.nominal_voltage * 1e3
        over_mv = trace.max_overshoot_fraction() * trace.nominal_voltage * 1e3
        result.add_row(
            cfg.name,
            droop_mv,
            over_mv,
            trace.peak_to_peak() * 1e3,
            trace.max_droop_fraction() > WORST_CASE_MARGIN,
            cfg.boots,
        )
    result.series["traces"] = traces
    result.notes.append(
        "paper: ~150 mV (Proc100) deepening to ~350 mV (Proc0); "
        "only Proc0's droop breaks the worst-case margin and blocks boot"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
