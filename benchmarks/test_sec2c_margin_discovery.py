"""Bench: Sec. II-C — the 14% worst-case margin is discoverable."""

from benchmarks.conftest import run_once
from repro.experiments import sec2c_margin_discovery
from repro.pdn.platform import WORST_CASE_MARGIN


def test_sec2c_margin_discovery(benchmark, quick):
    result = run_once(
        benchmark, lambda: sec2c_margin_discovery.run(quick=quick)
    )
    data = result.series["result"]
    # The derived guardband is the paper's ~14 %.
    assert abs(data.worst_case_margin - WORST_CASE_MARGIN) < 0.01
    # Headroom + virus droop reconstructs the guardband: the undervolting
    # procedure and the droop measurements are mutually consistent.
    total = data.headroom + data.virus_droop_fraction
    assert abs(total - data.worst_case_margin) < 0.02
    # Some undervolting is always safe (margins are conservative).
    assert data.headroom > 0.01
    print("\n" + result.format_table())
