"""Known bug: a droop *fraction* stored under a ``*_volts`` name.

Normalizing the droop depth by the nominal rail voltage produces a
dimensionless ratio; binding it to ``worst_droop_volts`` invites the
next reader to subtract it from a voltage.
"""

from __future__ import annotations

import numpy as np

NOMINAL_VOLTS = 1.1


def worst_case(samples_volts: np.ndarray) -> float:
    depth_volts = NOMINAL_VOLTS - np.min(samples_volts)
    worst_droop_volts = depth_volts / NOMINAL_VOLTS  # expect: DIM003
    return worst_droop_volts
