"""The arena's policy registry.

Policies register a zero-argument factory under their stable key;
:func:`build_policies` instantiates a requested subset (or every
registered policy) in sorted-key order — a fixed iteration order, so an
arena run's policy list never depends on registration or dict order.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.arena.policies import (
    ArenaPolicy,
    DroopArenaPolicy,
    DVFSMarginPolicy,
    HybridArenaPolicy,
    IPCArenaPolicy,
    IPCPackingPolicy,
    RandomArenaPolicy,
    RandomNPolicy,
    StallArenaPolicy,
)
from repro.errors import ConfigurationError

PolicyFactory = Callable[[], ArenaPolicy]

_REGISTRY: Dict[str, PolicyFactory] = {}


def register(key: str, factory: PolicyFactory) -> None:
    """Register a policy factory under its stable key."""
    if key in _REGISTRY:
        raise ConfigurationError(f"policy key {key!r} already registered")
    _REGISTRY[key] = factory


def registered_keys() -> Tuple[str, ...]:
    """Every registered policy key, sorted."""
    return tuple(sorted(_REGISTRY))


def build_policies(
    keys: Optional[Sequence[str]] = None,
) -> Tuple[ArenaPolicy, ...]:
    """Instantiate the requested policies (all of them by default).

    ``keys=None`` (or the CLI's ``--policies all``) builds every
    registered policy in sorted-key order.  Explicit keys keep their
    given order; unknown keys raise with the available choices.
    """
    if keys is None:
        keys = registered_keys()
    policies: List[ArenaPolicy] = []
    for key in keys:
        factory = _REGISTRY.get(key)
        if factory is None:
            known = ", ".join(registered_keys())
            raise ConfigurationError(
                f"unknown policy {key!r}; choose from: {known}"
            )
        policies.append(factory())
    return tuple(policies)


register("droop", DroopArenaPolicy)
register("dvfs-margin", DVFSMarginPolicy)
register("hybrid", HybridArenaPolicy)
register("ipc", IPCArenaPolicy)
register("ipc-packing", IPCPackingPolicy)
register("random", RandomArenaPolicy)
register("random-n", RandomNPolicy)
register("stall", StallArenaPolicy)
