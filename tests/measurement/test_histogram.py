"""Unit tests for the compressed scope histogram."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, MeasurementError
from repro.measurement.histogram import CompressedHistogram


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CompressedHistogram(lo=0.1, hi=0.1)
        with pytest.raises(ConfigurationError):
            CompressedHistogram(n_bins=1)

    def test_empty_queries_rejected(self):
        h = CompressedHistogram()
        with pytest.raises(MeasurementError):
            h.fraction_below(0.0)
        with pytest.raises(MeasurementError):
            h.quantile(0.5)
        with pytest.raises(MeasurementError):
            h.min_deviation()


class TestAccumulation:
    def test_total_counts(self):
        h = CompressedHistogram()
        h.add(np.array([0.0, 0.01, -0.02]))
        h.add(np.array([0.005]))
        assert h.total == 4

    def test_out_of_range_clips_to_edges(self):
        h = CompressedHistogram(lo=-0.1, hi=0.1, n_bins=100)
        h.add(np.array([-5.0, 5.0]))
        assert h.total == 2
        assert h.min_deviation() == pytest.approx(-0.1, abs=0.002)
        assert h.max_deviation() == pytest.approx(0.1, abs=0.002)

    def test_rejects_nan(self):
        h = CompressedHistogram()
        with pytest.raises(MeasurementError):
            h.add(np.array([np.nan]))

    def test_add_empty_is_noop(self):
        h = CompressedHistogram()
        h.add(np.array([]))
        assert h.total == 0


class TestQueries:
    def test_fraction_below(self):
        h = CompressedHistogram(lo=-0.1, hi=0.1, n_bins=1000)
        h.add(np.array([-0.05] * 30 + [0.05] * 70))
        assert h.fraction_below(0.0) == pytest.approx(0.3)
        assert h.fraction_above(0.0) == pytest.approx(0.7)
        assert h.fraction_below(-0.09) == 0.0  # simlint: disable=HYG001 (exact by construction)

    def test_quantile(self):
        h = CompressedHistogram(lo=-0.1, hi=0.1, n_bins=2000)
        h.add(np.linspace(-0.05, 0.05, 10_001))
        assert h.quantile(0.5) == pytest.approx(0.0, abs=0.001)
        assert h.quantile(0.0) == pytest.approx(-0.05, abs=0.001)
        with pytest.raises(MeasurementError):
            h.quantile(1.5)

    def test_cdf_monotone_ending_at_one(self):
        h = CompressedHistogram()
        h.add(np.random.default_rng(0).normal(0, 0.01, 5000))
        _, cumulative = h.cdf()
        assert np.all(np.diff(cumulative) >= 0)
        assert cumulative[-1] == pytest.approx(1.0)


class TestMerge:
    def test_merge_sums(self):
        a = CompressedHistogram()
        b = CompressedHistogram()
        a.add(np.array([0.01] * 5))
        b.add(np.array([-0.01] * 7))
        merged = a.merge(b)
        assert merged.total == 12
        assert a.total == 5  # originals untouched

    def test_merge_rejects_different_binning(self):
        a = CompressedHistogram(n_bins=100)
        b = CompressedHistogram(n_bins=200)
        with pytest.raises(MeasurementError):
            a.merge(b)

    @settings(max_examples=20, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-0.19, max_value=0.19),
            min_size=1,
            max_size=200,
        )
    )
    def test_fraction_matches_exact_count(self, values):
        # Bin quantization moves samples near the threshold by one bin
        # width, so keep test samples away from the boundary.
        arr = np.array([v for v in values if abs(v) > 1e-3])
        if arr.size == 0:
            return
        h = CompressedHistogram(n_bins=4000)
        h.add(arr)
        threshold = 0.0
        exact = (arr < threshold).mean()
        assert h.fraction_below(threshold) == pytest.approx(exact, abs=0.05)
