"""Persistent on-disk cache of per-run measurement records.

The paper's full protocol is 881 runs; most experiment harnesses re-visit
the same (workload, configuration, window) points.  Within a process the
campaign memoizes in a dict, but every fresh process used to re-simulate
from scratch.  :class:`ResultCache` closes that gap: each run's record
(see :mod:`repro.measurement.record`) is stored under a content hash of
everything that determines the result — run spec, decap-configuration
parameters, window length, seed and the record schema version — so a
warm cache replays a whole figure suite with zero re-simulations while
any change to those inputs transparently misses.

Robustness contract:

* **atomic writes** — records are written to a temp file in the cache
  directory and ``os.replace``-d into place, so a killed process never
  leaves a half-written entry visible;
* **corruption-tolerant reads** — a truncated, garbled or wrong-schema
  entry is treated as a miss (and counted in :attr:`CacheStats.corrupt`),
  never an exception; the executor then falls back to re-simulation.

Both halves of that contract carry fault-injection hook points
(``cache.store`` garbles a just-written record in place, ``cache.load``
treats one read as corrupt) so chaos runs exercise exactly the recovery
paths the contract promises; see :mod:`repro.faults`.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import tempfile
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Optional, Union

from repro.errors import ConfigurationError, MeasurementError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults import FaultInjector
from repro.measurement.campaign import RunMeasurement, RunSpec
from repro.measurement.record import (
    SCHEMA_VERSION,
    decode_measurement,
    encode_measurement,
)

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Exceptions that mark a cache entry as corrupt rather than fatal.  A
#: cache read must never take the campaign down: anything short of a
#: programming error in *our* code means "re-simulate".
_CORRUPTION_ERRORS = (
    OSError,  # includes gzip.BadGzipFile
    EOFError,
    zlib.error,  # bit-flips inside the deflate stream
    ValueError,  # includes json.JSONDecodeError and bad numeric fields
    KeyError,
    TypeError,
    UnicodeDecodeError,
    MeasurementError,
    ConfigurationError,  # e.g. decoded counters violating invariants
)


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def cache_key(
    spec: RunSpec,
    config_fingerprint: Mapping[str, Any],
    n_cycles: int,
    seed: int,
) -> str:
    """Content hash identifying one run's result.

    The payload is serialized with sorted keys, so two fingerprint
    mappings with the same items in any insertion order hash identically
    (property-tested).  ``SCHEMA_VERSION`` is folded in so that record
    layout changes invalidate old entries by construction.
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "kind": spec.kind,
        "workloads": list(spec.workloads),
        "config": spec.config,
        "config_fingerprint": dict(config_fingerprint),
        "n_cycles": int(n_cycles),
        "seed": int(seed),
    }
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(canonical.encode("ascii")).hexdigest()


class CacheStats:
    """Mutable hit/miss counters for one cache (or one aggregate view)."""

    __slots__ = ("hits", "misses", "stores", "corrupt")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def merged_into(self, other: "CacheStats") -> None:
        other.hits += self.hits
        other.misses += self.misses
        other.stores += self.stores
        other.corrupt += self.corrupt

    def summary(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses "
            f"({self.corrupt} corrupt), {self.stores} stores"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"CacheStats({self.summary()})"


class ResultCache:
    """Directory of gzip-compressed JSON records, one file per run key.

    Entries are sharded into 256 subdirectories by the first two hex
    digits of the key so the full 881-run protocol (and far larger
    extension sweeps) never piles thousands of files into one directory.
    """

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        self._directory = (
            Path(directory).expanduser() if directory is not None
            else default_cache_dir()
        )
        self.stats = CacheStats()
        #: Optional :class:`~repro.faults.FaultInjector` driving the
        #: ``cache.store`` / ``cache.load`` hook points; ``None`` = clean.
        self.injector: Optional["FaultInjector"] = None

    @property
    def directory(self) -> Path:
        return self._directory

    def path_for(self, key: str) -> Path:
        return self._directory / key[:2] / f"{key}.json.gz"

    def load(self, key: str) -> Optional[RunMeasurement]:
        """The cached measurement for ``key``, or ``None`` (miss/corrupt)."""
        path = self.path_for(key)
        if self.injector is not None and self.injector.fires("cache.load", key):
            # Hook point ``cache.load``: this read behaves as if the entry
            # were corrupt; callers must fall back to re-simulation.
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        try:
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                payload = json.load(handle)
            measurement = decode_measurement(payload)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except _CORRUPTION_ERRORS:
            self.stats.misses += 1
            self.stats.corrupt += 1
            return None
        self.stats.hits += 1
        return measurement

    def store(self, key: str, measurement: RunMeasurement) -> None:
        """Atomically persist one measurement under ``key``."""
        self.store_record(key, encode_measurement(measurement))

    def store_record(self, key: str, record: Mapping[str, Any]) -> None:
        """Atomically persist an already-encoded record under ``key``."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename within the same directory: readers see either
        # the old entry or the complete new one, never a partial file.
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as raw:
                with gzip.GzipFile(fileobj=raw, mode="wb", mtime=0) as gz:
                    gz.write(
                        json.dumps(
                            record, sort_keys=True, separators=(",", ":")
                        ).encode("utf-8")
                    )
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:  # pragma: no cover - already gone
                pass
            raise
        self.stats.stores += 1
        if self.injector is not None and self.injector.fires("cache.store", key):
            # Hook point ``cache.store``: garble the record *after* the
            # atomic rename, modeling on-disk rot rather than a torn write
            # (which the write-then-rename protocol already rules out).
            from repro.faults import garble_file

            garble_file(path)

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def entry_count(self) -> int:
        """Number of entries currently on disk (walks the shard dirs)."""
        if not self._directory.is_dir():
            return 0
        return sum(1 for _ in self._directory.glob("*/*.json.gz"))

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"ResultCache({str(self._directory)!r})"
