"""Bench: Fig. 2 — peak frequency vs operating margin per node."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig02_margin_frequency


def test_fig02_margin_frequency(benchmark, quick):
    result = run_once(benchmark, lambda: fig02_margin_frequency.run(quick=quick))
    margins = result.series["margins"]
    curves = result.series["curves"]
    # 20% margin at 45 nm costs roughly a quarter of peak frequency.
    f45_at_20 = float(np.interp(0.2, margins, curves["45nm"]))
    assert 70.0 <= f45_at_20 <= 85.0
    # Every curve decreases monotonically with margin.
    for values in curves.values():
        finite = values[np.isfinite(values)]
        assert np.all(np.diff(finite) < 0)
    # Lower-Vdd nodes lose more frequency at the same margin.
    f16_at_20 = float(np.interp(0.2, margins, curves["16nm"]))
    assert f16_at_20 < f45_at_20
    # Doubled swings (40% margin) at 16 nm cost more than half the peak.
    f16_at_40 = float(np.interp(0.4, margins, curves["16nm"]))
    assert f16_at_40 < 50.0
    print("\n" + result.format_table())
