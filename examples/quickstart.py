#!/usr/bin/env python
"""Quickstart: simulate on-die voltage noise for one benchmark.

Builds the reference Core 2 Duo-class platform (stock decap, VRM ripple),
runs a memory-bound SPEC CPU2006 model on core 0 with core 1 idle, and
reports what the paper's measurement chain would see: peak-to-peak swing,
deepest droop, droop excursion statistics, and performance counters.

Run:  python examples/quickstart.py
"""

from repro import Chip, IdleLoop, observability, spec_benchmark
from repro.measurement.droops import detect_droops, droop_samples_per_1k

WINDOW_CYCLES = 60_000  # ~32 us of execution at 1.86 GHz


def main() -> None:
    chip = Chip("Proc100")  # the stock processor
    mcf = spec_benchmark("mcf")
    idle = IdleLoop()

    with observability.capture() as session:
        run = chip.run(
            [
                mcf.sample_window(WINDOW_CYCLES, rng=0),
                idle.sample_window(WINDOW_CYCLES, rng=1),
            ],
            seed=42,
        )

    voltage = run.voltage
    counters = run.counters(0)
    droops = detect_droops(voltage)

    print(f"workload            : {mcf.name} (single-threaded, core 1 idle)")
    print(f"configuration       : {run.config_name}")
    print(f"window              : {run.n_cycles} cycles "
          f"({voltage.duration_seconds * 1e6:.1f} us)")
    print(f"mean chip current   : {run.total_current_amps.mean():.1f} A")
    print()
    print(f"peak-to-peak swing  : {voltage.peak_to_peak_fraction():.2%} of nominal")
    print(f"deepest droop       : {voltage.max_droop_fraction():.2%}")
    print(f"largest overshoot   : {voltage.max_overshoot_fraction():.2%}")
    print(f"droop excursions    : {droops.count} "
          f"(max depth {droops.max_depth():.2%})")
    print(f"droops per 1K cycles: "
          f"{droop_samples_per_1k(voltage):.1f} (at the 2.3% margin)")
    print()
    print(f"IPC                 : {counters.ipc:.2f}")
    print(f"stall ratio         : {counters.stall_ratio:.2f}")
    print()
    print("metrics recorded    : (see docs/observability.md)")
    registry = session.metrics
    for metric in (
        "repro_chip_runs_total",
        "repro_chip_cycles_total",
        "repro_pdn_samples_total",
    ):
        print(f"  {metric:26s} = {int(registry.counter_value(metric))}")
    print(f"  spans recorded             = {session.tracer.span_count}")
    print()
    print("The 14% worst-case margin would never trip here — this is the")
    print("typical-case gap the paper's resilient designs exploit.")


if __name__ == "__main__":
    main()
