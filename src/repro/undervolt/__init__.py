"""System-level V/F characterization: Vmin maps and the energy frontier.

The paper's economic argument (Sec. I, Sec. V) is that worst-case
voltage guardbands waste energy: the margin exists for a droop that
almost never happens, yet every cycle pays the squared-voltage cost of
carrying it.  This package grows the single undervolt bisection of
:mod:`repro.pdn.undervolt` into the full characterization framework of
ROADMAP item 3, shaped after the system-level V/F scaling studies in
PAPERS.md (Papadimitriou et al., arXiv:2106.09975; the MPSoC
voltage-margin study, arXiv:2209.12134):

* :mod:`repro.undervolt.model` — the closed-form physics: critical
  voltage vs frequency (alpha-power law anchored at the shipped
  operating point), the voltage → SRAM bit-error-rate curve below Vmin,
  and the squared-set-point energy proxy.
* :mod:`repro.undervolt.sweep` — the sweep engine: one campaign
  measurement per (workload, core-count) through the batched executor
  path and content-addressed cache, composed with the model into
  per-cell Vmin values and the per-operating-point frontier; plus the
  below-Vmin probe that injects voltage-dependent bit errors and
  requires the executor to converge (the PR-5 recovery contract).
* :mod:`repro.undervolt.report` — deterministic, schema-versioned JSON
  and markdown renderings (byte-identical across reruns and ``--jobs``).

Entry points: ``repro undervolt-sweep`` and the ``ext-undervolt``
experiment; ``docs/undervolting.md`` documents the models and schema.
"""

from __future__ import annotations

from repro.undervolt.model import (
    BER_DECAY_VOLT,
    SHIPPED_FREQUENCY_GHZ,
    bit_error_rate,
    bit_error_rate_at_depth,
    critical_voltage,
    energy_savings_fraction,
    undervolt_depth,
)
from repro.undervolt.report import (
    UNDERVOLT_SCHEMA_VERSION,
    json_payload,
    json_report,
    markdown_report,
)
from repro.undervolt.sweep import (
    DEFAULT_FREQUENCIES_GHZ,
    FrontierPoint,
    ProbeResult,
    VminCell,
    VminMap,
    probe_below_vmin,
    run_sweep,
)

__all__ = [
    "BER_DECAY_VOLT",
    "DEFAULT_FREQUENCIES_GHZ",
    "FrontierPoint",
    "ProbeResult",
    "SHIPPED_FREQUENCY_GHZ",
    "UNDERVOLT_SCHEMA_VERSION",
    "VminCell",
    "VminMap",
    "bit_error_rate",
    "bit_error_rate_at_depth",
    "critical_voltage",
    "energy_savings_fraction",
    "json_payload",
    "json_report",
    "markdown_report",
    "probe_below_vmin",
    "run_sweep",
    "undervolt_depth",
]
