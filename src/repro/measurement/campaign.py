"""Batch measurement campaigns — the paper's 881 benchmarking runs.

Sec. III-A draws its conclusions from 881 runs on the instrumented
machine: 29 single-threaded SPEC CPU2006 programs, 11 multi-threaded
PARSEC programs, and the full 29x29 multi-program CPU2006 pairing sweep.
:class:`MeasurementCampaign` reproduces that protocol against the
simulated chip: each run samples representative execution windows (at a
random point of program time), executes them on both cores, and records
counters, droop/overshoot excursions and the sample histogram.

Runs are cached by (workloads, configuration), so experiment harnesses can
share one campaign instance without re-simulating.  All measurement goes
through a :class:`~repro.measurement.executor.CampaignExecutor`, which
adds two cross-process layers on top of the in-memory memo: an optional
persistent :class:`~repro.measurement.cache.ResultCache` (``cache=``) and
process fan-out for cache misses (``jobs=``).  Parallel and serial
execution are bit-identical because every run's random stream is derived
from the base seed and the run's own spec, never from shared state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro import observability as obs
from repro.errors import ConfigurationError, WorkloadError
from repro.measurement.droops import (
    CHARACTERIZATION_MARGIN,
    DroopStatistics,
    detect_droops,
    detect_overshoots,
    droop_samples_per_1k,
)
from repro.measurement.histogram import CompressedHistogram
from repro.measurement.tail import DroopTailModel
from repro.random_utils import SeedLike, derive_generator
from repro.uarch.chip import Chip, ChipRun
from repro.uarch.counters import PerformanceCounters
from repro.uarch.window import ExecutionWindow
from repro.workloads.base import Workload
from repro.workloads.microbenchmarks import IdleLoop
from repro.workloads.parsec import PARSEC, ParsecWorkload
from repro.workloads.spec import SPEC_CPU2006

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.faults import FaultInjector
    from repro.measurement.cache import ResultCache
    from repro.measurement.executor import CampaignExecutor, RetryPolicy

#: Histogram binning shared by all campaign measurements.
HISTOGRAM_LO = -0.20
HISTOGRAM_HI = 0.20
HISTOGRAM_BINS = 1600


@dataclass(frozen=True)
class RunSpec:
    """Identity of one benchmarking run."""

    kind: str  # "single" | "multithread" | "multiprogram"
    workloads: Tuple[str, ...]
    config: str

    @property
    def label(self) -> str:
        return f"{'+'.join(self.workloads)}@{self.config}"


@dataclass(frozen=True)
class RunMeasurement:
    """Everything recorded about one run."""

    spec: RunSpec
    n_cycles: int
    counters: Tuple[PerformanceCounters, ...]
    droops: DroopStatistics
    overshoots: DroopStatistics
    histogram: CompressedHistogram
    droop_samples_per_1k: float

    @property
    def max_droop(self) -> float:
        """Deepest droop excursion (fraction of nominal)."""
        return self.droops.max_depth()

    @property
    def max_overshoot(self) -> float:
        return self.overshoots.max_depth()

    @property
    def throughput_ipc(self) -> float:
        """Chip throughput: the sum of per-core IPCs."""
        return float(sum(c.ipc for c in self.counters))

    @property
    def mean_stall_ratio(self) -> float:
        return float(np.mean([c.stall_ratio for c in self.counters]))

    def tail_model(self) -> DroopTailModel:
        """Tail model for emergency-rate extrapolation on this run."""
        return DroopTailModel(self.droops)


class MeasurementCampaign:
    """Runs and caches workload measurements on one chip configuration.

    Parameters
    ----------
    config:
        Decap configuration name (``"Proc100"``, ``"Proc25"``, ``"Proc3"`` …).
    n_cycles:
        Window length per run.  Longer windows resolve rarer events;
        40k cycles keep the full 881-run sweep tractable.
    seed:
        Base seed; every run derives an independent stream from it, so a
        campaign is fully reproducible.
    jobs:
        Worker processes for batch simulation (``1`` = serial in-process;
        ``None`` = honor ``$REPRO_JOBS``).  Parallel runs are bit-identical
        to serial ones.
    cache:
        Optional persistent :class:`~repro.measurement.cache.ResultCache`
        shared across processes; ``None`` keeps results process-local.
    retry:
        Optional :class:`~repro.measurement.executor.RetryPolicy`
        governing per-run timeouts, retry budget and backoff; ``None``
        honors ``$REPRO_MAX_RETRIES`` / ``$REPRO_RUN_TIMEOUT``.
    injector:
        Optional :class:`~repro.faults.FaultInjector` enabling seeded
        fault injection at the executor and cache hook points (chaos
        testing); ``None`` runs clean.
    n_cores:
        Cores on the simulated chip (one shared supply).  The paper's
        measurements use the dual-core default; the scheduling arena
        raises it for N-core co-scheduling studies.  Core count is part
        of the cache fingerprint, so campaigns with different core
        counts never alias.
    """

    def __init__(
        self,
        config: str = "Proc100",
        n_cycles: int = 40_000,
        seed: SeedLike = 0,
        jobs: Optional[int] = None,
        cache: Optional["ResultCache"] = None,
        retry: Optional["RetryPolicy"] = None,
        injector: Optional["FaultInjector"] = None,
        n_cores: int = 2,
    ) -> None:
        if n_cycles < 1000:
            raise ConfigurationError("n_cycles must be at least 1000")
        self._config = config
        self._n_cycles = int(n_cycles)
        self._seed = seed
        self._chip = Chip(config, n_cores=n_cores, with_ripple=True)
        self._idle = IdleLoop()
        # Imported here: the executor module imports this one at load time.
        from repro.measurement.executor import CampaignExecutor

        self._executor = CampaignExecutor(
            self, jobs=jobs, cache=cache, retry=retry, injector=injector
        )

    @property
    def config(self) -> str:
        return self._config

    @property
    def n_cycles(self) -> int:
        return self._n_cycles

    @property
    def seed(self) -> SeedLike:
        return self._seed

    @property
    def chip(self) -> Chip:
        return self._chip

    @property
    def executor(self) -> "CampaignExecutor":
        return self._executor

    # ------------------------------------------------------------------
    # Measurement primitives
    # ------------------------------------------------------------------
    def _resolve(self, name: str) -> Workload:
        if name == "idle":
            return self._idle
        if name in SPEC_CPU2006:
            return SPEC_CPU2006[name]
        if name in PARSEC:
            return PARSEC[name]
        raise WorkloadError(f"unknown workload {name!r}")

    def simulate(self, spec: RunSpec) -> RunMeasurement:
        """Simulate one run from scratch (no caching).

        The run's random stream is derived from the campaign's base seed
        and the spec alone — **never** from shared mutable state — which
        is the contract that makes parallel fan-out and cache replay
        bit-identical to serial execution.
        """
        with obs.span("run.simulate", run=spec.label, kind=spec.kind):
            return self._simulate_impl(spec)

    def _program_window(
        self, rng: np.random.Generator, index: int, name: str
    ) -> ExecutionWindow:
        """One multiprogram slot's window (consumes ``rng`` in spec order)."""
        workload = self._resolve(name)
        at_time = float(rng.uniform(0, workload.duration_seconds))
        return workload.sample_window(
            self._n_cycles,
            rng=derive_generator(rng, "win", index),
            at_time_s=at_time,
        )

    def _sample_windows(
        self, spec: RunSpec, rng: np.random.Generator
    ) -> List[ExecutionWindow]:
        """Sample one run's per-core windows from its derived stream."""
        if spec.kind == "multithread":
            workload = self._resolve(spec.workloads[0])
            assert isinstance(workload, ParsecWorkload)
            at_time = float(rng.uniform(0, workload.duration_seconds))
            return list(
                workload.sample_thread_windows(
                    self._chip.n_cores, self._n_cycles, rng=rng, at_time_s=at_time
                )
            )
        windows = [
            self._program_window(rng, i, name)
            for i, name in enumerate(spec.workloads)
        ]
        windows += [
            self._idle.sample_window(
                self._n_cycles, rng=derive_generator(rng, "idle", i)
            )
            for i in range(len(spec.workloads), self._chip.n_cores)
        ]
        return windows

    def _measure_run(self, spec: RunSpec, run: ChipRun) -> RunMeasurement:
        """Reduce one chip run to its recorded measurement."""
        histogram = CompressedHistogram(HISTOGRAM_LO, HISTOGRAM_HI, HISTOGRAM_BINS)
        histogram.add(run.voltage.deviations_fraction())
        return RunMeasurement(
            spec=spec,
            n_cycles=self._n_cycles,
            counters=tuple(e.counters for e in run.cores),
            droops=detect_droops(run.voltage),
            overshoots=detect_overshoots(run.voltage),
            histogram=histogram,
            droop_samples_per_1k=droop_samples_per_1k(
                run.voltage, CHARACTERIZATION_MARGIN
            ),
        )

    def _simulate_impl(self, spec: RunSpec) -> RunMeasurement:
        rng = derive_generator(self._seed, spec.kind, *spec.workloads, spec.config)
        windows = self._sample_windows(spec, rng)
        run = self._chip.run(windows, seed=derive_generator(rng, "chip"))
        return self._measure_run(spec, run)

    def simulate_batch(self, specs: Sequence[RunSpec]) -> List[RunMeasurement]:
        """Simulate several runs through one batched chip/PDN solve.

        Bit-identical to calling :meth:`simulate` once per spec: every
        run's stream is derived from ``(seed, spec)`` exactly as in the
        serial path, and the batched EMA/PDN filters are exact per row
        (pinned by the batching equivalence tests).  This is the
        uninstrumented fast path — it emits no per-run ``run.simulate``
        spans — so the executor only routes runs here when observability
        is disabled and no fault injector is attached.
        """
        rngs = [
            derive_generator(self._seed, spec.kind, *spec.workloads, spec.config)
            for spec in specs
        ]
        window_groups = [
            self._sample_windows(spec, rng) for spec, rng in zip(specs, rngs)
        ]
        seeds = [derive_generator(rng, "chip") for rng in rngs]
        runs = self._chip.run_batch(window_groups, seeds=seeds)
        return [self._measure_run(spec, run) for spec, run in zip(specs, runs)]

    def run_spec(
        self, *workload_names: str, kind: Optional[str] = None
    ) -> RunSpec:
        """Validate workload names and infer the run kind.

        One name → single-threaded (the other cores idle), except PARSEC
        names which run multi-threaded; several names → multi-program
        group (a pair on the default dual-core chip).
        """
        if not 1 <= len(workload_names) <= self._chip.n_cores:
            raise ConfigurationError(
                f"need 1..{self._chip.n_cores} workloads, got {len(workload_names)}"
            )
        for name in workload_names:
            self._resolve(name)
        if kind is None:
            if len(workload_names) >= 2:
                kind = "multiprogram"
            elif workload_names[0] in PARSEC:
                kind = "multithread"
            else:
                kind = "single"
        return RunSpec(
            kind=kind, workloads=tuple(workload_names), config=self._config
        )

    def measure(self, *workload_names: str, kind: Optional[str] = None) -> RunMeasurement:
        """Measure (or fetch from memo/cache) one run."""
        return self._executor.run_one(self.run_spec(*workload_names, kind=kind))

    # ------------------------------------------------------------------
    # Suites
    # ------------------------------------------------------------------
    def measure_specs(self, specs: Sequence[RunSpec]) -> List[RunMeasurement]:
        """Measure a batch of specs through the executor (one fan-out)."""
        return self._executor.run_many(specs)

    def single_threaded_runs(
        self, names: Optional[Sequence[str]] = None
    ) -> List[RunMeasurement]:
        """The 29 single-threaded CPU2006 runs (other core idle)."""
        names = list(names) if names is not None else sorted(SPEC_CPU2006)
        return self.measure_specs(
            [self.run_spec(name, kind="single") for name in names]
        )

    def multithreaded_runs(
        self, names: Optional[Sequence[str]] = None
    ) -> List[RunMeasurement]:
        """The 11 PARSEC multi-threaded runs."""
        names = list(names) if names is not None else sorted(PARSEC)
        return self.measure_specs(
            [self.run_spec(name, kind="multithread") for name in names]
        )

    def multiprogram_runs(
        self, names: Optional[Sequence[str]] = None
    ) -> List[RunMeasurement]:
        """The 29x29 CPU2006 pairing sweep (841 runs)."""
        names = list(names) if names is not None else sorted(SPEC_CPU2006)
        return self.measure_specs([
            self.run_spec(a, b, kind="multiprogram")
            for a in names
            for b in names
        ])

    def specrate_runs(
        self, names: Optional[Sequence[str]] = None
    ) -> List[RunMeasurement]:
        """SPECrate: two copies of the same program (the diagonal)."""
        names = list(names) if names is not None else sorted(SPEC_CPU2006)
        return self.measure_specs([
            self.run_spec(name, name, kind="multiprogram") for name in names
        ])

    def all_runs(
        self,
        spec_names: Optional[Sequence[str]] = None,
        parsec_names: Optional[Sequence[str]] = None,
    ) -> List[RunMeasurement]:
        """The full 881-run protocol (29 ST + 11 MT + 841 MP).

        Pass subsets to both arguments for a scaled-down protocol (used by
        the quick benchmark variants).
        """
        return (
            self.single_threaded_runs(spec_names)
            + self.multithreaded_runs(parsec_names)
            + self.multiprogram_runs(spec_names)
        )
