"""Command-line interface for simlint.

Usage::

    python -m repro.analysis src/repro
    python -m repro.analysis src/repro --format json
    python -m repro.analysis src/repro --write-baseline
    repro-lint --list-rules

Exit status: 0 when no unsuppressed, unbaselined findings remain; 1 when
findings were reported; 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.analysis import baseline as baseline_mod
from repro.analysis.engine import lint_paths
from repro.analysis.registry import all_rules
from repro.analysis.reporters import render


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "simlint: AST-based invariant checker for determinism, "
            "unit-safety, and simulation hygiene"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "baseline file of grandfathered findings "
            f"(default: ./{baseline_mod.DEFAULT_BASELINE} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "write current findings to the baseline file and exit 0 "
            "(creates ./simlint-baseline.json unless --baseline is given)"
        ),
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(
            f"{rule.code}  {rule.name:<28} [{rule.severity}] "
            f"{rule.description}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    rules = all_rules()
    if args.select:
        wanted = {code.strip() for code in args.select.split(",")}
        unknown = wanted - {rule.code for rule in rules}
        if unknown:
            parser.error(f"unknown rule code(s): {', '.join(sorted(unknown))}")
        rules = [rule for rule in rules if rule.code in wanted]

    paths = list(args.paths) or ["src/repro"]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        parser.error(f"path(s) do not exist: {', '.join(missing)}")
    findings = lint_paths(paths, rules=rules)

    if args.write_baseline:
        target = args.baseline or baseline_mod.DEFAULT_BASELINE
        baseline_mod.save(target, findings)
        print(f"wrote {len(findings)} finding(s) to {target}")
        return 0

    if args.no_baseline:
        surviving = findings
        source = None
    else:
        try:
            base, source = baseline_mod.discover(args.baseline)
        except (OSError, ValueError) as exc:
            parser.error(str(exc))
        surviving = base.filter(findings)

    print(render(surviving, args.format))
    if source is not None and len(surviving) != len(findings):
        skipped = len(findings) - len(surviving)
        print(
            f"(+{skipped} baselined finding(s) suppressed via {source})",
            file=sys.stderr,
        )
    return 1 if surviving else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
