"""Unit tests for the stall-ratio correlation analysis."""

import numpy as np
import pytest

from repro.core.stall_ratio import StallCorrelationResult, stall_droop_correlation
from repro.errors import MeasurementError
from repro.measurement.campaign import MeasurementCampaign


class TestStallCorrelationResult:
    def test_pearson_of_perfect_line(self):
        result = StallCorrelationResult(
            names=("a", "b", "c"),
            stall_ratios=np.array([0.1, 0.2, 0.3]),
            droops_per_1k=np.array([10.0, 20.0, 30.0]),
        )
        assert result.pearson_r == pytest.approx(1.0)
        assert result.spearman_rho == pytest.approx(1.0)

    def test_rows_roundtrip(self):
        result = StallCorrelationResult(
            names=("a", "b"),
            stall_ratios=np.array([0.1, 0.2]),
            droops_per_1k=np.array([5.0, 7.0]),
        )
        assert result.rows() == [("a", 0.1, 5.0), ("b", 0.2, 7.0)]

    def test_needs_two_points(self):
        result = StallCorrelationResult(
            names=("a",),
            stall_ratios=np.array([0.1]),
            droops_per_1k=np.array([5.0]),
        )
        with pytest.raises(MeasurementError):
            result.pearson_r


class TestMeasuredCorrelation:
    def test_positive_correlation_on_proc3(self):
        """The Fig. 15 relationship: droops track stall ratio."""
        campaign = MeasurementCampaign("Proc3", n_cycles=25_000, seed=4)
        names = ("gamess", "lbm", "libquantum", "mcf", "namd",
                 "povray", "sphinx", "soplex")
        result = stall_droop_correlation(campaign, names)
        assert result.pearson_r > 0.5  # paper: 0.97
        assert len(result.names) == len(names)
