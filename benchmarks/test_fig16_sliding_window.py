"""Bench: Fig. 16 — sliding-window co-schedule exposes both interference polarities."""

from benchmarks.conftest import run_once
from repro.experiments import fig16_sliding_window


def test_fig16_sliding_window(benchmark, quick):
    result = run_once(benchmark, lambda: fig16_sliding_window.run(quick=quick))
    experiment = result.series["experiment"]
    max_amp = result.series["max_amplification"]
    min_amp = result.series["min_amplification"]
    # Constructive offsets roughly double (or worse) the droop activity.
    assert max_amp >= 1.7
    # Destructive offsets stay much closer to the single-core level.
    assert min_amp <= 0.65 * max_amp
    # The effect varies with the scheduling offset (that's the whole
    # point of phase-aware co-scheduling).
    ratios = (
        experiment.droops_per_1k
        / experiment.single_core_droops_per_1k.clip(min=1e-9)
    )
    assert ratios.std() > 0.1
    print("\n" + result.format_table())
