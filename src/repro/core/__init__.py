"""The paper's primary contribution: typical-case design + noise-aware scheduling.

* :mod:`repro.core.resilience` — the performance model of Sec. III-B: how
  much a resilient (typical-case) design gains as a function of operating
  margin, error-recovery cost and workload emergency rates (Figs. 8-10,
  Tab. I).
* :mod:`repro.core.stall_ratio` — the stall-ratio metric and its
  correlation with droop activity (Fig. 15).
* :mod:`repro.core.phases` — voltage-noise phases over program execution
  (Fig. 14) and phase-change detection.
* :mod:`repro.core.interference` — single-core event swings (Fig. 12),
  the cross-core event interference matrix (Fig. 13) and the sliding-window
  co-schedule experiment (Fig. 16).
* :mod:`repro.core.policies` — scheduling policies: Droop, IPC,
  IPC/Droop^n, Random and the SPECrate baseline.
* :mod:`repro.core.scheduler` — the batch co-scheduling experiment and the
  pass/fail analysis of Figs. 18-19 and Tab. I.
"""

from repro.core.resilience import (
    OptimalMargin,
    RECOVERY_COSTS,
    ResilienceParameters,
    ResilientDesignModel,
    performance_improvement,
)
from repro.core.stall_ratio import StallCorrelationResult, stall_droop_correlation
from repro.core.phases import (
    NoiseTimeline,
    count_phase_changes,
    measure_noise_timeline,
    oscillation_period_intervals,
)
from repro.core.interference import (
    SlidingWindowResult,
    event_interference_matrix,
    idle_baseline_pkpk,
    single_core_event_swings,
    sliding_window_experiment,
)
from repro.core.policies import (
    DroopPolicy,
    HybridPolicy,
    IPCPolicy,
    RandomPolicy,
    SchedulingPolicy,
    SPECratePolicy,
)
from repro.core.scheduler import (
    BatchScheduler,
    Group,
    GroupOracle,
    PairOracle,
    ScheduleEvaluation,
)

__all__ = [
    "OptimalMargin",
    "RECOVERY_COSTS",
    "ResilienceParameters",
    "ResilientDesignModel",
    "performance_improvement",
    "StallCorrelationResult",
    "stall_droop_correlation",
    "NoiseTimeline",
    "count_phase_changes",
    "measure_noise_timeline",
    "oscillation_period_intervals",
    "SlidingWindowResult",
    "event_interference_matrix",
    "idle_baseline_pkpk",
    "single_core_event_swings",
    "sliding_window_experiment",
    "DroopPolicy",
    "HybridPolicy",
    "IPCPolicy",
    "RandomPolicy",
    "SchedulingPolicy",
    "SPECratePolicy",
    "BatchScheduler",
    "Group",
    "GroupOracle",
    "PairOracle",
    "ScheduleEvaluation",
]
