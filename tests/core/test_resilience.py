"""Unit tests for the typical-case design performance model."""

import numpy as np
import pytest

from repro.core.resilience import (
    RECOVERY_COSTS,
    ResilienceParameters,
    ResilientDesignModel,
    performance_improvement,
)
from repro.errors import ConfigurationError
from repro.measurement.droops import DroopStatistics
from repro.measurement.tail import DroopTailModel


def tail(beta=0.01, n_events=2000, n_cycles=2_000_000, seed=0):
    rng = np.random.default_rng(seed)
    depths = 0.012 + rng.exponential(beta, size=n_events)
    stats = DroopStatistics(
        depths=depths,
        durations=np.full(n_events, 10, dtype=int),
        n_cycles=n_cycles,
        threshold=0.01,
    )
    return DroopTailModel(stats)


class TestParameters:
    def test_frequency_gain_matches_bowman(self):
        params = ResilienceParameters()
        # Removing a 10% margin buys 15% frequency.
        assert params.frequency_gain(0.04) == pytest.approx(1.15)
        assert params.frequency_gain(params.worst_case_margin) == 1.0  # simlint: disable=HYG001 (exact by construction)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ResilienceParameters(worst_case_margin=0.0)
        with pytest.raises(ConfigurationError):
            ResilienceParameters(frequency_gain_per_margin=0)
        with pytest.raises(ConfigurationError):
            ResilienceParameters(min_margin=0.2)
        with pytest.raises(ConfigurationError):
            ResilienceParameters().frequency_gain(0.5)


class TestPerformanceImprovement:
    def test_no_emergencies_pure_frequency_gain(self):
        improvement = performance_improvement(0.04, 1000, 0.0)
        assert improvement == pytest.approx(0.15)

    def test_recovery_overhead_reduces_gain(self):
        clean = performance_improvement(0.04, 1000, 0.0)
        noisy = performance_improvement(0.04, 1000, 1e-4)
        assert noisy < clean

    def test_dead_zone_possible(self):
        """Expensive frequent recoveries push below the baseline."""
        improvement = performance_improvement(0.02, 100_000, 1e-4)
        assert improvement < 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            performance_improvement(0.04, -1, 0.0)
        with pytest.raises(ConfigurationError):
            performance_improvement(0.04, 10, -1.0)


class TestResilientDesignModel:
    def test_needs_tails(self):
        with pytest.raises(ConfigurationError):
            ResilientDesignModel([])

    def test_single_peak_per_cost(self):
        model = ResilientDesignModel([tail(seed=i) for i in range(5)])
        for cost in (10, 1000, 100_000):
            _, improvements = model.margin_sweep(cost)
            peak = int(np.argmax(improvements))
            # Unimodal: increasing before the peak, decreasing after
            # (allow tiny numerical wiggles).
            before = improvements[: peak + 1]
            after = improvements[peak:]
            assert np.all(np.diff(before) >= -1e-4)
            assert np.all(np.diff(after) <= 1e-4)

    def test_optimal_margin_grows_with_cost(self):
        model = ResilientDesignModel([tail(seed=i) for i in range(5)])
        optima = [model.optimal_margin(c).margin for c in RECOVERY_COSTS]
        assert all(a <= b + 1e-9 for a, b in zip(optima, optima[1:]))

    def test_peak_improvement_falls_with_cost(self):
        model = ResilientDesignModel([tail(seed=i) for i in range(5)])
        peaks = [model.optimal_margin(c).improvement for c in RECOVERY_COSTS]
        assert all(a >= b - 1e-9 for a, b in zip(peaks, peaks[1:]))

    def test_heatmap_shape(self):
        model = ResilientDesignModel([tail()])
        margins, costs, grid = model.heatmap((1, 100))
        assert grid.shape == (2, margins.size)
        assert costs.shape == (2,)

    def test_heavier_tails_lower_improvement(self):
        light = ResilientDesignModel([tail(beta=0.004)])
        heavy = ResilientDesignModel([tail(beta=0.02)])
        assert (
            heavy.mean_improvement(0.05, 10_000)
            < light.mean_improvement(0.05, 10_000)
        )

    def test_per_run_optimal_margins_within_grid(self):
        model = ResilientDesignModel([tail(seed=i) for i in range(4)])
        optima = model.per_run_optimal_margins(1000)
        params = model.parameters
        assert optima.shape == (4,)
        assert np.all(optima >= params.min_margin)
        assert np.all(optima <= params.worst_case_margin)

    def test_one_design_fits_all_gap_small(self):
        """The paper: per-benchmark margins buy almost nothing over a
        single static optimal margin."""
        model = ResilientDesignModel([tail(seed=i) for i in range(6)])
        for cost in (10, 10_000):
            gap = model.one_design_fits_all_gap(cost)
            assert 0 <= gap < 0.02

    def test_passing_runs(self):
        model = ResilientDesignModel(
            [tail(beta=0.004, seed=1), tail(beta=0.03, seed=2)]
        )
        passing = model.passing_runs(
            recovery_cost=10_000,
            margin=0.05,
            expected_improvement=model.mean_improvement(0.05, 10_000),
        )
        # The light-tailed run passes the mean bar; the heavy one fails.
        assert passing == [0]
