"""Fig. 6 — peak-to-peak reset swings relative to Proc100.

Paper: normalized swings grow monotonically as decap is removed, with the
knee of the curve between Proc25 and Proc3 (which is why those two serve
as the "future node" stand-ins), following roughly the same trend as the
Fig. 1 technology projection.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.fig05_reset_droops import reset_traces
from repro.pdn.decap import ordered_configs


def run(quick: bool = False) -> ExperimentResult:
    traces = reset_traces(n_samples=150_000 if quick else 300_000)
    base = traces["Proc100"].peak_to_peak()
    result = ExperimentResult(
        experiment_id="Fig. 6",
        title="Reset pk-pk voltage swing relative to Proc100",
        columns=("config", "capacitance fraction", "relative swing"),
    )
    relative = {}
    for cfg in ordered_configs():
        ratio = traces[cfg.name].peak_to_peak() / base
        relative[cfg.name] = ratio
        result.add_row(cfg.name, cfg.effective_fraction, ratio)
    result.series["relative_swings"] = relative
    knee_growth = relative["Proc3"] - relative["Proc25"]
    earlier_growth = relative["Proc25"] - relative["Proc50"]
    result.notes.append(
        f"knee check: Proc25->Proc3 jump ({knee_growth:.2f}) vs "
        f"Proc50->Proc25 jump ({earlier_growth:.2f}); paper places the "
        "knee around Proc25/Proc3"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
