"""CLI surface: --trace/--metrics/--profile-stages and `repro measure`."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def run_measure(tmp_path, label, *extra):
    """Run `repro measure` on a tiny run set with export flags."""
    trace = tmp_path / f"{label}-trace.json"
    metrics = tmp_path / f"{label}-metrics.json"
    status = main(
        [
            "measure",
            "mcf",
            "mcf+lbm",
            "--cycles",
            "2000",
            "--no-cache",
            "--trace",
            str(trace),
            "--metrics",
            str(metrics),
            *extra,
        ]
    )
    assert status == 0
    return (
        json.loads(trace.read_text(encoding="utf-8")),
        json.loads(metrics.read_text(encoding="utf-8")),
    )


def structure(node):
    return (
        node["name"],
        tuple(structure(c) for c in node.get("children", ())),
    )


class TestMeasureCommand:
    def test_prints_per_run_table(self, capsys):
        assert main(["measure", "mcf", "--cycles", "2000", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "droops/1k" in out
        assert "mcf@Proc3" in out

    def test_unknown_workload_rejected(self, capsys):
        assert main(["measure", "nonesuch", "--cycles", "2000"]) == 2
        assert "measure:" in capsys.readouterr().err


class TestExports:
    def test_trace_and_metrics_files_written(self, tmp_path, capsys):
        trace, metrics = run_measure(tmp_path, "serial")
        assert trace["version"] == 1
        assert trace["span_count"] > 0
        assert metrics["version"] == 1
        assert metrics["counters"]["repro_runs_total"] == 2
        out = capsys.readouterr().out
        assert "wrote trace to" in out
        assert "wrote metrics to" in out

    def test_serial_and_parallel_exports_bit_identical(self, tmp_path):
        serial_trace, serial_metrics = run_measure(tmp_path, "serial")
        parallel_trace, parallel_metrics = run_measure(
            tmp_path, "parallel", "--jobs", "2"
        )
        for section in ("counters", "gauges", "histograms"):
            assert serial_metrics[section] == parallel_metrics[section]
        assert [structure(r) for r in serial_trace["roots"]] == [
            structure(r) for r in parallel_trace["roots"]
        ]

    def test_parallel_trace_carries_worker_spans(self, tmp_path):
        trace, _ = run_measure(tmp_path, "workers", "--jobs", "2")

        def count_worker(node):
            return (1 if node.get("worker") else 0) + sum(
                count_worker(c) for c in node.get("children", ())
            )

        assert sum(count_worker(r) for r in trace["roots"]) > 0

    def test_prometheus_export(self, tmp_path):
        prom = tmp_path / "metrics.prom"
        status = main(
            [
                "measure",
                "mcf",
                "--cycles",
                "2000",
                "--no-cache",
                "--metrics",
                str(prom),
            ]
        )
        assert status == 0
        text = prom.read_text(encoding="utf-8")
        assert "# TYPE repro_runs_total counter" in text
        assert "# HELP" in text

    def test_environment_defaults(self, tmp_path, monkeypatch, capsys):
        trace = tmp_path / "env-trace.json"
        monkeypatch.setenv("REPRO_TRACE", str(trace))
        assert main(["measure", "mcf", "--cycles", "2000", "--no-cache"]) == 0
        assert json.loads(trace.read_text(encoding="utf-8"))["span_count"] > 0


class TestProfileStages:
    def test_stage_table_printed(self, capsys):
        status = main(
            [
                "measure",
                "mcf",
                "--cycles",
                "2000",
                "--no-cache",
                "--profile-stages",
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        assert "stage" in out
        assert "campaign.batch" in out
        assert "run.simulate" in out

    def test_profile_json_written_and_round_trips(self, tmp_path, capsys):
        from repro.observability.profiling import (
            PROFILE_SCHEMA,
            PROFILE_SCHEMA_VERSION,
            load_stage_profile,
        )

        target = tmp_path / "stages.json"
        status = main(
            [
                "measure",
                "mcf",
                "--cycles",
                "2000",
                "--no-cache",
                "--profile-stages",
                str(target),
            ]
        )
        assert status == 0
        out = capsys.readouterr().out
        # The text table still prints alongside the JSON export.
        assert "campaign.batch" in out
        assert str(target) in out

        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["schema"] == PROFILE_SCHEMA
        assert payload["version"] == PROFILE_SCHEMA_VERSION
        rows = load_stage_profile(str(target))
        assert [row.name for row in rows] == [
            stage["name"] for stage in payload["stages"]
        ]
        assert {row.name for row in rows} >= {
            "campaign.batch",
            "run.simulate",
            "chip.run",
            "pdn.simulate",
        }
        for row, stage in zip(rows, payload["stages"]):
            assert row.count == stage["count"]
            assert row.total_seconds == stage["total_seconds"]
            assert row.mean_seconds == stage["mean_seconds"]
            assert row.max_seconds == stage["max_seconds"]

    def test_foreign_profile_payload_rejected(self):
        from repro.observability.profiling import parse_stage_profile

        with pytest.raises(ValueError):
            parse_stage_profile({"schema": "something-else"})
        with pytest.raises(ValueError):
            parse_stage_profile(
                {"schema": "repro-stage-profile", "version": 99,
                 "stages": []}
            )


class TestRunAndReportFlags:
    def test_run_with_metrics_export(self, tmp_path, capsys):
        metrics = tmp_path / "fig02.json"
        assert main(["run", "fig02", "--metrics", str(metrics)]) == 0
        payload = json.loads(metrics.read_text(encoding="utf-8"))
        # fig02 is analytic (no campaign), but the experiment gauge and
        # the trace-backed runtime section must still be present.
        assert 'repro_experiment_seconds{experiment="fig02"}' in (
            payload["runtime"]
        )

    def test_report_appends_observability_section(self, tmp_path):
        from repro.reporting import generate_report

        text = generate_report(aliases=["fig15"], quick=True)
        assert "## Observability" in text
        # campaign.batch spans appear whether the cache is warm or cold;
        # run.simulate would only show up on cache misses.
        assert "experiment.fig15" in text
        assert "campaign.batch" in text
        assert "droop events:" in text
