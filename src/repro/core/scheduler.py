"""The oracle-based batch co-scheduling experiment (Sec. IV-C/D).

The paper's limit study: gather droop and IPC data for all 29x29 CPU2006
pairings a priori (the *oracle*), then let each policy build batch
schedules from a job pool and compare the resulting droop/performance
trade-off against the SPECrate baseline (Fig. 18), and the number of
schedules that still meet the typical-case design target as recovery costs
grow (Tab. I, Fig. 19).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import observability as obs
from repro.errors import SchedulingError
from repro.measurement.campaign import MeasurementCampaign, RunMeasurement
from repro.measurement.droops import CHARACTERIZATION_MARGIN
from repro.core.policies import SchedulingPolicy, SPECratePolicy
from repro.random_utils import SeedLike, as_generator

Pair = Tuple[str, str]


def _count_schedule(pairs: Tuple[Pair, ...]) -> Tuple[Pair, ...]:
    """Record one built schedule in the metrics registry (pass-through)."""
    obs.increment("repro_schedules_built_total")
    obs.increment("repro_schedule_pairs_total", len(pairs))
    return pairs


class PairOracle:
    """A-priori droop and IPC data for every workload pairing.

    The paper gathers this in a pre-run phase over all 29x29 program
    combinations; here each pairing is measured (and cached) on the
    campaign's simulated chip.  The droop metric counts distinct droop
    excursions beyond the 2.3 % characterization margin per 1K cycles;
    the IPC metric is the pair's summed throughput.
    """

    def __init__(
        self,
        campaign: MeasurementCampaign,
        margin: float = CHARACTERIZATION_MARGIN,
    ) -> None:
        self._campaign = campaign
        self._margin = float(margin)

    @property
    def campaign(self) -> MeasurementCampaign:
        return self._campaign

    def run(self, a: str, b: str) -> RunMeasurement:
        return self._campaign.measure(a, b, kind="multiprogram")

    def prefetch(self, names: Sequence[str]) -> None:
        """Gather the oracle's a-priori table in one executor fan-out.

        Batches every pairing (and each program's solo run) the policies
        can query through ``measure_specs``, so scoring afterwards is
        pure memo lookups — this is where ``--jobs N`` pays off for the
        scheduling experiments.
        """
        campaign = self._campaign
        with obs.span("oracle.prefetch", programs=len(names)):
            campaign.measure_specs(
                [campaign.run_spec(a, kind="single") for a in names]
                + [
                    campaign.run_spec(a, b, kind="multiprogram")
                    for a in names
                    for b in names
                ]
            )

    def droop_metric(self, a: str, b: str) -> float:
        """Droop excursions beyond the margin per 1K cycles."""
        run = self.run(a, b)
        return 1000.0 * run.droops.event_rate(self._margin)

    def ipc_metric(self, a: str, b: str) -> float:
        """Summed pair throughput (instructions per cycle)."""
        return self.run(a, b).throughput_ipc

    def stall_metric(self, name: str) -> float:
        """One program's solo stall ratio (counter-only knowledge).

        Unlike :meth:`droop_metric` this needs no pair measurements — a
        real scheduler can read it from hardware counters while the
        program runs alone, which is what makes the stall-ratio proxy
        deployable (Fig. 15).
        """
        run = self._campaign.measure(name, kind="single")
        return run.counters[0].stall_ratio


@dataclass(frozen=True)
class ScheduleEvaluation:
    """Aggregate droop/performance of one batch schedule."""

    policy_name: str
    pairs: Tuple[Pair, ...]
    mean_droops: float
    mean_ipc: float

    def normalized_to(self, baseline: "ScheduleEvaluation") -> Tuple[float, float]:
        """(droop ratio, performance ratio) relative to a baseline.

        These are the Fig. 18 scatter coordinates: SPECrate sits at
        (1, 1); quadrant Q1 is droops < 1 with performance > 1.
        """
        if baseline.mean_droops <= 0 or baseline.mean_ipc <= 0:
            raise SchedulingError("baseline evaluation is degenerate")
        return (
            self.mean_droops / baseline.mean_droops,
            self.mean_ipc / baseline.mean_ipc,
        )


class BatchScheduler:
    """Builds and evaluates batch schedules from a job pool.

    Parameters
    ----------
    oracle:
        Pairing data source.
    programs:
        The job pool (defaults to the whole CPU2006 suite known to the
        oracle's campaign).
    """

    def __init__(
        self,
        oracle: PairOracle,
        programs: Optional[Sequence[str]] = None,
    ) -> None:
        if programs is None:
            from repro.workloads.spec import SPEC_NAMES

            programs = SPEC_NAMES
        if len(programs) < 2:
            raise SchedulingError("need at least two programs")
        self._oracle = oracle
        self._programs = tuple(programs)

    @property
    def programs(self) -> Tuple[str, ...]:
        return self._programs

    # ------------------------------------------------------------------
    # Schedule construction
    # ------------------------------------------------------------------
    def build_schedule(
        self,
        policy: SchedulingPolicy,
        n_pairs: int = 50,
        max_repeats: Optional[int] = None,
        seed: SeedLike = None,
    ) -> Tuple[Pair, ...]:
        """Choose ``n_pairs`` co-schedules under a repetition constraint.

        Placement walks the pool favouring the least-used program (so no
        program is starved, matching the paper's constraint on repeated
        choices) and asks the policy to score candidate partners.
        """
        if n_pairs < 1:
            raise SchedulingError("n_pairs must be >= 1")
        if isinstance(policy, SPECratePolicy):
            return _count_schedule(self.specrate_schedule(n_pairs))
        if max_repeats is None:
            max_repeats = max(2, int(np.ceil(2 * n_pairs / len(self._programs))))
        rng = as_generator(seed)
        usage: Dict[str, int] = {name: 0 for name in self._programs}
        pairs: List[Pair] = []
        for _ in range(n_pairs):
            available = [p for p in self._programs if usage[p] < max_repeats]
            if len(available) < 1:
                raise SchedulingError(
                    "job pool exhausted; raise max_repeats or lower n_pairs"
                )
            # Place the least-used program first (random tie-break).
            min_usage = min(usage[p] for p in available)
            anchors = [p for p in available if usage[p] == min_usage]
            anchor = anchors[int(rng.integers(0, len(anchors)))]
            candidates = [
                p for p in self._programs
                if usage[p] < max_repeats and (p != anchor or usage[p] + 2 <= max_repeats)
            ]
            if not candidates:
                candidates = [anchor]
            scores = np.array([
                policy.score(anchor, partner, self._oracle)
                for partner in candidates
            ])
            best = int(np.argmax(scores))
            partner = candidates[best]
            usage[anchor] += 1
            usage[partner] += 1
            pairs.append((anchor, partner))
        return _count_schedule(tuple(pairs))

    def specrate_schedule(self, n_pairs: Optional[int] = None) -> Tuple[Pair, ...]:
        """The SPECrate baseline: each program paired with itself."""
        pairs = [(name, name) for name in self._programs]
        if n_pairs is None:
            return tuple(pairs)
        repeated = (pairs * (n_pairs // len(pairs) + 1))[:n_pairs]
        return tuple(repeated)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        pairs: Sequence[Pair],
        policy_name: str = "",
    ) -> ScheduleEvaluation:
        """Mean droop and IPC metrics over one schedule's pairs."""
        if not pairs:
            raise SchedulingError("empty schedule")
        with obs.span(
            "scheduler.evaluate", policy=policy_name, pairs=len(pairs)
        ):
            droops = [self._oracle.droop_metric(a, b) for a, b in pairs]
            ipcs = [self._oracle.ipc_metric(a, b) for a, b in pairs]
        return ScheduleEvaluation(
            policy_name=policy_name,
            pairs=tuple(pairs),
            mean_droops=float(np.mean(droops)),
            mean_ipc=float(np.mean(ipcs)),
        )

    def run_policy(
        self,
        policy: SchedulingPolicy,
        n_pairs: int = 50,
        seed: SeedLike = None,
    ) -> ScheduleEvaluation:
        """Build and evaluate one batch schedule for a policy."""
        pairs = self.build_schedule(policy, n_pairs=n_pairs, seed=seed)
        return self.evaluate(pairs, policy_name=policy.name)

    # ------------------------------------------------------------------
    # Pass/fail analysis (Tab. I / Fig. 19)
    # ------------------------------------------------------------------
    def partner_map(
        self,
        policy: SchedulingPolicy,
        max_partner_load: int = 2,
        seed: SeedLike = None,
    ) -> Dict[str, str]:
        """One partner per program, chosen by the policy.

        Used by the Fig. 19 analysis: instead of SPECrate's self-pairing,
        each program gets the policy's preferred (capacity-limited)
        partner.
        """
        rng = as_generator(seed)
        load: Dict[str, int] = {name: 0 for name in self._programs}
        partners: Dict[str, str] = {}
        # Assign anchors in random order so capacity limits bite fairly.
        order = list(self._programs)
        rng.shuffle(order)
        for anchor in order:
            candidates = [
                p for p in self._programs if load[p] < max_partner_load
            ]
            if not candidates:
                candidates = list(self._programs)
            scores = np.array([
                policy.score(anchor, partner, self._oracle)
                for partner in candidates
            ])
            partner = candidates[int(np.argmax(scores))]
            load[partner] += 1
            partners[anchor] = partner
        return partners
