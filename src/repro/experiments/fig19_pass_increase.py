"""Fig. 19 — increase in passing schedules from noise-aware scheduling.

Paper: re-pairing each benchmark by policy (instead of SPECrate's
self-pairing) raises the number of schedules meeting the typical-case
target by up to ~60 % at 10-cycle recovery for both policies; IPC
scheduling's benefit *decays* with recovery cost (cache-stall awareness
alone cannot suppress cross-core interference), while Droop scheduling
consistently matches or beats it, with the gap emerging from 1000-cycle
recovery upwards.
"""

from __future__ import annotations

from typing import Dict

from repro.core.policies import DroopPolicy, IPCPolicy
from repro.core.resilience import (
    RECOVERY_COSTS,
    ResilientDesignModel,
    performance_improvement,
)
from repro.core.scheduler import BatchScheduler, PairOracle
from repro.experiments.common import ExperimentResult
from repro.experiments.context import (
    get_campaign,
    parsec_names,
    spec_names,
    window_cycles,
)
from repro.experiments.tab1_specrate_pass import PASS_FRACTION


def run(quick: bool = False, config: str = "Proc3") -> ExperimentResult:
    campaign = get_campaign(config, n_cycles=window_cycles(quick))
    names = spec_names(quick)
    all_runs = campaign.all_runs(names, parsec_names(quick))
    model = ResilientDesignModel([r.tail_model() for r in all_runs])

    oracle = PairOracle(campaign)
    scheduler = BatchScheduler(oracle, programs=names)
    policies = {"Droop": DroopPolicy(), "IPC": IPCPolicy()}
    partner_maps = {
        name: scheduler.partner_map(policy, seed=17)
        for name, policy in policies.items()
    }

    result = ExperimentResult(
        experiment_id="Fig. 19",
        title=f"Increase in passing schedules over SPECrate ({config})",
        columns=("recovery cost (cycles)", "SPECrate passing",
                 "IPC passing", "Droop passing",
                 "IPC increase (%)", "Droop increase (%)"),
    )

    def passes(run_measurement, cost, optimum) -> bool:
        improvement = performance_improvement(
            optimum.margin,
            cost,
            run_measurement.tail_model().rate(optimum.margin),
            model.parameters,
        )
        return improvement >= PASS_FRACTION * optimum.improvement

    series: Dict[str, list] = {"SPECrate": [], "IPC": [], "Droop": []}
    for cost in RECOVERY_COSTS:
        optimum = model.optimal_margin(cost)
        base_pass = sum(
            passes(campaign.measure(a, a, kind="multiprogram"), cost, optimum)
            for a in names
        )
        counts = {"SPECrate": base_pass}
        for policy_name, partners in partner_maps.items():
            counts[policy_name] = sum(
                passes(
                    campaign.measure(a, partners[a], kind="multiprogram"),
                    cost,
                    optimum,
                )
                for a in names
            )
        for key in series:
            series[key].append(counts[key])

        def increase(n: int) -> float:
            if base_pass == 0:
                return 100.0 if n > 0 else 0.0
            return 100.0 * (n - base_pass) / base_pass

        result.add_row(
            cost,
            base_pass,
            counts["IPC"],
            counts["Droop"],
            increase(counts["IPC"]),
            increase(counts["Droop"]),
        )
    result.series["passing"] = series
    result.series["recovery_costs"] = list(RECOVERY_COSTS)
    result.notes.append(
        "paper: both policies ~+60% at 10-cycle recovery; IPC's benefit "
        "decays with cost while Droop stays at least as good, pulling "
        "ahead from 1000 cycles"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=True).format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
