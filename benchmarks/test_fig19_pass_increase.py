"""Bench: Fig. 19 — scheduling increases the number of passing schedules."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig19_pass_increase


def test_fig19_pass_increase(benchmark, quick):
    result = run_once(benchmark, lambda: fig19_pass_increase.run(quick=quick))
    passing = result.series["passing"]
    specrate = np.array(passing["SPECrate"], dtype=float)
    ipc = np.array(passing["IPC"], dtype=float)
    droop = np.array(passing["Droop"], dtype=float)

    # Both policies never do worse than the SPECrate baseline.
    assert np.all(ipc >= specrate - 1e-9)
    assert np.all(droop >= specrate - 1e-9)
    # Droop scheduling consistently matches or beats IPC scheduling
    # (paper: consistently outperforms, especially at coarse recovery).
    assert np.all(droop >= ipc - 1e-9)
    # Somewhere in the sweep, scheduling meaningfully increases passes.
    base = np.maximum(specrate, 1.0)
    assert ((droop - specrate) / base).max() >= 0.2
    # At coarse-grained recovery (>= 1000 cycles) the Droop advantage
    # over IPC is present (paper: the gap emerges there).
    coarse = slice(3, None)
    assert np.any(droop[coarse] >= ipc[coarse])
    print("\n" + result.format_table())
