"""Inline-suppression behavior: comments silence exactly their codes."""

from __future__ import annotations

import re

from repro.analysis import lint_paths, lint_source

from tests.analysis.conftest import FIXTURES

_SUPPRESSION_RE = re.compile(r"\s*#\s*simlint\s*:\s*disable.*$")


def test_suppressed_fixture_reports_nothing():
    assert lint_paths([str(FIXTURES / "suppressed.py")]) == []


def test_stripping_suppressions_resurfaces_findings():
    source = (FIXTURES / "suppressed.py").read_text(encoding="utf-8")
    stripped = "\n".join(
        _SUPPRESSION_RE.sub("", line) for line in source.splitlines()
    )
    findings = lint_source(stripped, path="suppressed_stripped.py")
    assert {f.code for f in findings} == {"DET003", "HYG001", "UNI001"}


def test_targeted_suppression_only_silences_named_code():
    source = (
        "from __future__ import annotations\n"
        "import time\n"
        "def f(noise_volts: float = 1e-3) -> float:"
        "  # simlint: disable=UNI001\n"
        "    return time.time()\n"
    )
    findings = lint_source(source, path="snippet.py")
    assert [f.code for f in findings] == ["DET003"]


def test_blanket_suppression_silences_all_codes_on_line():
    source = (
        "from __future__ import annotations\n"
        "import time\n"
        "def f() -> float:\n"
        "    return time.time()  # simlint: disable\n"
    )
    assert lint_source(source, path="snippet.py") == []


def test_file_level_suppression():
    source = (
        "from __future__ import annotations\n"
        "# simlint: disable-file=HYG001\n"
        "def a(x: float) -> bool:\n"
        "    return x == 0.5\n"
        "def b(x: float) -> bool:\n"
        "    return x != 0.5\n"
    )
    assert lint_source(source, path="snippet.py") == []


def test_unrelated_code_not_suppressed():
    source = (
        "from __future__ import annotations\n"
        "def a(x: float) -> bool:\n"
        "    return x == 0.5  # simlint: disable=DET001\n"
    )
    findings = lint_source(source, path="snippet.py")
    assert [f.code for f in findings] == ["HYG001"]
