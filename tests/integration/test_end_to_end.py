"""Integration tests: the full signal path and the paper's storyline.

These tests cross module boundaries on purpose: workload → core → chip →
PDN → measurement → resilience/scheduling, checking the *relationships*
the library exists to reproduce.
"""

import numpy as np
import pytest

from repro import (
    Chip,
    IdleLoop,
    MeasurementCampaign,
    PowerVirus,
    ResilientDesignModel,
    WORST_CASE_MARGIN,
    spec_benchmark,
)
from repro.core import BatchScheduler, DroopPolicy, IPCPolicy, PairOracle
from repro.measurement.droops import detect_droops

N = 40_000


class TestSignalPath:
    def test_busy_chip_is_noisier_than_idle(self):
        chip = Chip("Proc100")
        idle = IdleLoop()
        quiet = chip.run(
            [idle.sample_window(N, rng=0), idle.sample_window(N, rng=1)],
            seed=0,
        )
        busy = chip.run(
            [
                spec_benchmark("mcf").sample_window(N, rng=0),
                spec_benchmark("lbm").sample_window(N, rng=1),
            ],
            seed=0,
        )
        assert (
            busy.voltage.peak_to_peak_fraction()
            > quiet.voltage.peak_to_peak_fraction()
        )
        assert (
            detect_droops(busy.voltage).count
            > detect_droops(quiet.voltage).count
        )

    def test_virus_is_worst_but_within_margin_on_stock(self):
        """No workload breaks the 14 % guardband on the stock machine."""
        chip = Chip("Proc100", with_ripple=True)
        virus = PowerVirus()
        run = chip.run(
            [virus.sample_window(N), virus.sample_window(N)], seed=0
        )
        mcf = chip.run(
            [
                spec_benchmark("mcf").sample_window(N, rng=2),
                spec_benchmark("mcf").sample_window(N, rng=3),
            ],
            seed=0,
        )
        assert run.voltage.max_droop_fraction() > mcf.voltage.max_droop_fraction()
        assert run.voltage.max_droop_fraction() < WORST_CASE_MARGIN

    def test_decap_removal_amplifies_the_same_workload(self):
        windows = [
            spec_benchmark("libquantum").sample_window(N, rng=0),
            spec_benchmark("milc").sample_window(N, rng=1),
        ]
        pkpk = {}
        for config in ("Proc100", "Proc25", "Proc3"):
            run = Chip(config, with_ripple=True).run(windows, seed=5)
            pkpk[config] = run.voltage.peak_to_peak_fraction()
        assert pkpk["Proc100"] < pkpk["Proc25"] < pkpk["Proc3"]


class TestPaperStoryline:
    """The three-act structure of the paper, end to end."""

    @pytest.fixture(scope="class")
    def campaign(self):
        return MeasurementCampaign("Proc3", n_cycles=20_000, seed=11)

    SUBSET = ("gamess", "lbm", "mcf", "namd", "sphinx", "tonto")

    def test_act1_typical_case_gap_exists(self, campaign):
        """Most samples sit far inside the worst-case margin."""
        runs = campaign.single_threaded_runs(self.SUBSET)
        merged = runs[0].histogram
        for run in runs[1:]:
            merged = merged.merge(run.histogram)
        # Even on the noisy Proc3 node, the bulk is within half the margin.
        assert merged.fraction_below(-WORST_CASE_MARGIN / 2) < 0.02

    def test_act2_resilience_gains_decay_with_recovery_cost(self, campaign):
        runs = campaign.all_runs(self.SUBSET, ("canneal",))
        model = ResilientDesignModel([r.tail_model() for r in runs])
        fine = model.optimal_margin(10)
        coarse = model.optimal_margin(100_000)
        assert fine.improvement > coarse.improvement
        assert fine.margin <= coarse.margin

    def test_act3_noise_aware_scheduling_reduces_droops(self, campaign):
        oracle = PairOracle(campaign)
        scheduler = BatchScheduler(oracle, programs=self.SUBSET)
        baseline = scheduler.evaluate(
            scheduler.specrate_schedule(), "SPECrate"
        )
        droop_eval = scheduler.run_policy(DroopPolicy(), n_pairs=12, seed=7)
        ipc_eval = scheduler.run_policy(IPCPolicy(), n_pairs=12, seed=7)
        droops_rel, perf_rel = droop_eval.normalized_to(baseline)
        # The Droop policy cuts droops without hurting throughput...
        assert droops_rel < 1.0
        assert perf_rel > 0.95
        # ...and is strictly more noise-effective than IPC scheduling.
        assert droop_eval.mean_droops <= ipc_eval.mean_droops


class TestDeterminism:
    def test_whole_pipeline_reproducible(self):
        def run_once():
            campaign = MeasurementCampaign("Proc25", n_cycles=15_000, seed=3)
            run = campaign.measure("astar", "povray")
            return (
                run.max_droop,
                run.droop_samples_per_1k,
                run.throughput_ipc,
                run.droops.count,
            )

        assert run_once() == run_once()
