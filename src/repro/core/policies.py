"""Co-scheduling policies (Sec. IV-C).

A policy scores candidate co-schedules; the batch scheduler picks, for each
job it places, the partner (or, on an N-core chip, the next group member)
with the best score.  The paper compares:

* **Droop** — minimize predicted chip-wide droops (emergency recoveries);
  the paper's proposed noise-aware policy.
* **IPC** — maximize predicted pair throughput; the classic
  contention-aware performance policy.
* **IPC/Droop^n** — the hybrid the paper proposes for balancing the two,
  with the exponent ``n`` growing with the platform's recovery cost.
* **Random** — the control; mimics SPECrate's indifference to noise.
* **SPECrate** — the baseline: every program paired with itself.

Every policy's primitive is :meth:`SchedulingPolicy.score_group`, which
scores a whole co-running group of any size; the two-argument
:meth:`SchedulingPolicy.score` is the dual-core convenience wrapper the
paper's pair experiments use.  The arena layer (:mod:`repro.arena`)
builds N-core partition schedules on top of the same scoring primitives.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Tuple

import numpy as np

from repro.errors import ConfigurationError, SchedulingError
from repro.random_utils import SeedLike, as_generator

if TYPE_CHECKING:  # import cycle: scheduler imports this module
    from repro.core.scheduler import GroupOracle

#: Droop rates can be zero for quiet pairs; the hybrid metric floors them.
DROOP_EPSILON = 1e-7


class SchedulingPolicy(abc.ABC):
    """Scores candidate co-schedules; higher is better."""

    name: str = "policy"

    #: Does the score depend only on the *set* of group members (not
    #: their order)?  Symmetric policies may canonicalize group order
    #: before querying the oracle; the arena's property suite checks the
    #: claim dynamically.
    symmetric: bool = True

    @abc.abstractmethod
    def score_group(self, group: Tuple[str, ...], oracle: "GroupOracle") -> float:
        """Desirability of co-running ``group`` on one supply."""

    def score(self, a: str, b: str, oracle: "GroupOracle") -> float:
        """Desirability of running ``a`` and ``b`` together (pair form)."""
        return self.score_group((a, b), oracle)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"{type(self).__name__}()"


class DroopPolicy(SchedulingPolicy):
    """Minimize chip-wide droop (emergency) rates."""

    name = "Droop"

    def score_group(self, group: Tuple[str, ...], oracle: "GroupOracle") -> float:
        return -oracle.droop_metric(*group)


class IPCPolicy(SchedulingPolicy):
    """Maximize group throughput (sum of the co-running cores' IPC)."""

    name = "IPC"

    def score_group(self, group: Tuple[str, ...], oracle: "GroupOracle") -> float:
        return oracle.ipc_metric(*group)


class HybridPolicy(SchedulingPolicy):
    """The paper's IPC/Droop^n metric.

    Small ``n`` weighs throughput (fine-grained recovery, cheap
    emergencies); large ``n`` weighs noise (coarse-grained recovery,
    expensive emergencies).
    """

    def __init__(self, exponent: float = 1.0) -> None:
        if exponent < 0:
            raise ConfigurationError("exponent must be non-negative")
        self.exponent = float(exponent)
        self.name = f"IPC/Droop^{exponent:g}"

    @classmethod
    def for_recovery_cost(cls, recovery_cost: float) -> "HybridPolicy":
        """Pick ``n`` from the platform's recovery cost.

        The paper argues n should be small for fine-grained schemes and
        larger for coarse-grained ones; a logarithmic ramp captures that.
        """
        if recovery_cost < 1:
            raise ConfigurationError("recovery_cost must be >= 1")
        exponent = 0.25 + 0.35 * np.log10(recovery_cost)
        return cls(exponent=float(exponent))

    def score_group(self, group: Tuple[str, ...], oracle: "GroupOracle") -> float:
        droops = max(oracle.droop_metric(*group), DROOP_EPSILON)
        return oracle.ipc_metric(*group) / droops**self.exponent


class StallRatioPolicy(SchedulingPolicy):
    """Droop avoidance from commodity counters only.

    A deployable approximation of :class:`DroopPolicy`: instead of oracle
    droop measurements per *group*, it uses each program's solo stall
    ratio — readable from performance counters on any machine, which is
    the software loop the paper's Fig. 15 correlation (droops ~ stall
    ratio, r = 0.97) licenses.  Scoring minimizes the group's *worst*
    stall ratio, which pairs stall-heavy programs with steady low-stall
    partners — the combination whose slack pickup dampens chip-wide
    current swings.
    """

    name = "StallRatio"

    def score_group(self, group: Tuple[str, ...], oracle: "GroupOracle") -> float:
        return -max(oracle.stall_metric(name) for name in group)


class RandomPolicy(SchedulingPolicy):
    """Uniformly random pairing (the paper's 100-random-schedules control).

    Scores are draws from the policy's own stream, so ordering claims do
    not hold: the policy is declared non-symmetric.  Callers composing
    campaigns (the arena registry in particular) must derive the stream
    from the campaign seed via
    :func:`repro.random_utils.derive_generator` — relying on the
    ``seed=None`` default makes every instance share one library-wide
    stream and silently correlates "independent" random schedules.
    """

    name = "Random"
    symmetric = False

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = as_generator(seed)

    def score_group(self, group: Tuple[str, ...], oracle: "GroupOracle") -> float:
        return float(self._rng.random())


class SPECratePolicy(SchedulingPolicy):
    """The baseline: self-pairs (self-groups on N-core chips) only."""

    name = "SPECrate"

    def score_group(self, group: Tuple[str, ...], oracle: "GroupOracle") -> float:
        if any(name != group[0] for name in group[1:]):
            raise SchedulingError(
                "SPECrate only groups a program with copies of itself"
            )
        return 0.0
