"""Abstract interpretation: a physical dimension for every expression.

The pass walks each function with an abstract environment mapping local
names to :class:`~repro.analysis.flow.dimensions.Dim` values.  The
environment is seeded from the dimension *declarations* the codebase
already carries — unit-suffixed parameter names, ``# simlint: dim(...)``
annotation comments, unit-suffixed module constants (all of
:mod:`repro.units`'s aliases resolve this way) — and dims then propagate
through arithmetic (``V/A → Ω``, ``Ω·F → s``, ``1/s → Hz``),
assignments, returns, subscripts, numpy pass-through calls, and resolved
project calls (whose return dims come from an interprocedural fixpoint
over the call graph).

A literal or otherwise un-inferable expression has *unknown* dimension
(``None``), which absorbs silently: ``22 * units.MICRO_FARAD`` is farads
because the unknown ``22`` is assumed to be a scalar.  Findings fire only
when two *concrete* dimensions disagree, which keeps the pass quiet on
code that simply doesn't participate in the unit-naming convention:

* ``DIM001`` — ``+``/``-``/comparison across different dimensions;
* ``DIM002`` — argument vs. (unit-suffixed or annotated) parameter;
* ``DIM003`` — computed dimension contradicting a unit-suffixed binding
  target (canonically a dimensionless ratio stored as ``*_volts``);
* ``DIM004`` — returned dimension contradicting the function's
  unit-suffixed name or ``-> dim`` annotation.

After a conflict is reported, the *declared* dimension wins for the rest
of the walk so one root cause yields one finding, not a cascade.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Union

from repro.analysis.findings import Finding
from repro.analysis.flow.dimensions import (
    DIMENSIONLESS,
    Dim,
    dim_for_name,
)
from repro.analysis.flow.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
)
from repro.analysis.registry import get_rule

#: Calls whose result carries the dimension of one argument (by index).
_PASSTHROUGH_ARG: Dict[str, int] = {
    "abs": 0,
    "float": 0,
    "int": 0,
    "sum": 0,
    "sorted": 0,
    "numpy.abs": 0,
    "numpy.absolute": 0,
    "numpy.asarray": 0,
    "numpy.array": 0,
    "numpy.atleast_1d": 0,
    "numpy.clip": 0,
    "numpy.copy": 0,
    "numpy.cumsum": 0,
    "numpy.diff": 0,
    "numpy.max": 0,
    "numpy.amax": 0,
    "numpy.mean": 0,
    "numpy.median": 0,
    "numpy.min": 0,
    "numpy.amin": 0,
    "numpy.nanmax": 0,
    "numpy.nanmean": 0,
    "numpy.nanmin": 0,
    "numpy.percentile": 0,
    "numpy.quantile": 0,
    "numpy.ravel": 0,
    "numpy.sort": 0,
    "numpy.squeeze": 0,
    "numpy.sum": 0,
    "numpy.full": 1,
    "numpy.full_like": 1,
    "numpy.interp": 2,
}

#: Calls that unify the dimensions of *all* their positional arguments.
_UNIFYING = frozenset({"min", "max", "numpy.maximum", "numpy.minimum",
                       "numpy.hypot", "numpy.where"})

#: Calls whose result is a pure number regardless of input.
_DIMENSIONLESS_RESULT = frozenset(
    {
        "len",
        "numpy.log",
        "numpy.log10",
        "numpy.log2",
        "numpy.exp",
        "numpy.sign",
        "numpy.argmax",
        "numpy.argmin",
        "numpy.count_nonzero",
    }
)


def unify(a: Optional[Dim], b: Optional[Dim]) -> Optional[Dim]:
    """Join two abstract dims: unknown absorbs, conflict degrades to unknown."""
    if a is None:
        return b
    if b is None or a == b:
        return a
    return None


class FunctionInference:
    """One walk of one function body under an abstract dim environment."""

    def __init__(
        self,
        project: Project,
        module: ModuleInfo,
        function: Optional[FunctionInfo],
        summaries: Dict[str, Optional[Dim]],
        emit: bool,
    ) -> None:
        self.project = project
        self.module = module
        self.function = function
        self.summaries = summaries
        self.emit = emit
        self.findings: List[Finding] = []
        self.env: Dict[str, Dim] = {}
        self.local_types: Dict[str, str] = {}
        self.return_dim: Optional[Dim] = None
        self.saw_return = False
        self.self_name: Optional[str] = None
        self.class_info: Optional[ClassInfo] = None
        if function is not None:
            self.env.update(function.param_dims)
            if function.is_method and function.params:
                self.self_name = function.params[0]
                self.class_info = project.classes.get(
                    f"{module.name}.{function.class_name}"
                )

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------
    def run(self) -> None:
        body = (
            self.function.node.body
            if self.function is not None
            else [
                stmt
                for stmt in self.module.ctx.tree.body
                if not isinstance(
                    stmt,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                )
            ]
        )
        self._walk(body)

    def _report(self, code: str, node: ast.AST, message: str) -> None:
        if self.emit:
            self.findings.append(
                self.module.ctx.finding(get_rule(code), node, message)
            )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _walk(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            dim = self.infer(stmt.value)
            for target in stmt.targets:
                self._bind(target, stmt.value, dim)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                dim = self.infer(stmt.value)
                self._bind(stmt.target, stmt.value, dim)
        elif isinstance(stmt, ast.AugAssign):
            target_dim = self.infer(stmt.target)
            value_dim = self.infer(stmt.value)
            if (
                isinstance(stmt.op, (ast.Add, ast.Sub))
                and target_dim is not None
                and value_dim is not None
                and target_dim != value_dim
            ):
                op = "+=" if isinstance(stmt.op, ast.Add) else "-="
                self._report(
                    "DIM001",
                    stmt,
                    f"dimension mismatch: {target_dim} {op} {value_dim}",
                )
        elif isinstance(stmt, ast.Return):
            self.saw_return = True
            if stmt.value is not None:
                dim = self.infer(stmt.value)
                self.return_dim = unify(self.return_dim, dim)
                self._check_return(stmt, dim)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.infer(stmt.test)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_dim = self.infer(stmt.iter)
            if isinstance(stmt.target, ast.Name) and iter_dim is not None:
                self.env[stmt.target.id] = iter_dim
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.infer(item.context_expr)
                if isinstance(item.optional_vars, ast.Name) and isinstance(
                    item.context_expr, ast.Call
                ):
                    resolved = self.project.resolve_callee(
                        self.module,
                        item.context_expr.func,
                        self.local_types,
                        self.function.class_name if self.function else None,
                        self.self_name,
                    )
                    if isinstance(resolved, ClassInfo):
                        self.local_types[item.optional_vars.id] = (
                            resolved.qualname
                        )
            self._walk(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body)
            for handler in stmt.handlers:
                self._walk(handler.body)
            self._walk(stmt.orelse)
            self._walk(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self.infer(stmt.value)
        elif isinstance(stmt, ast.Assert):
            self.infer(stmt.test)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.infer(stmt.exc)
        # Nested defs/classes are opaque to this walk (own scopes).

    def _check_return(self, stmt: ast.Return, dim: Optional[Dim]) -> None:
        fn = self.function
        if fn is None or fn.declared_return is None or dim is None:
            return
        if dim != fn.declared_return:
            source = (
                "dim annotation" if fn.annotated_return else "name"
            )
            self._report(
                "DIM004",
                stmt,
                f"{fn.name}() returns {dim} but its {source} implies "
                f"{fn.declared_return}",
            )

    def _bind(
        self, target: ast.AST, value: ast.AST, dim: Optional[Dim]
    ) -> None:
        # Track locally constructed class instances for method resolution.
        resolved_type: Optional[str] = None
        if isinstance(value, ast.Call):
            resolved = self.project.resolve_callee(
                self.module,
                value.func,
                self.local_types,
                self.function.class_name if self.function else None,
                self.self_name,
            )
            if isinstance(resolved, ClassInfo):
                resolved_type = resolved.qualname

        if isinstance(target, ast.Name):
            declared = dim_for_name(target.id)
            if declared is not None and dim is not None and dim != declared:
                self._report_binding(target, target.id, dim, declared)
            if declared is not None:
                self.env[target.id] = declared
            elif dim is not None:
                self.env[target.id] = dim
            else:
                self.env.pop(target.id, None)
            if resolved_type is not None:
                self.local_types[target.id] = resolved_type
        elif isinstance(target, ast.Attribute):
            self._bind_attribute(target, dim, resolved_type)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self.env.pop(element.id, None)

    def _bind_attribute(
        self,
        target: ast.Attribute,
        dim: Optional[Dim],
        resolved_type: Optional[str],
    ) -> None:
        is_self = (
            isinstance(target.value, ast.Name)
            and self.self_name is not None
            and target.value.id == self.self_name
        )
        declared = dim_for_name(target.attr)
        if is_self and self.class_info is not None:
            declared = self.class_info.attr_dims.get(target.attr) or declared
        if declared is not None and dim is not None and dim != declared:
            self._report_binding(target, target.attr, dim, declared)
        if is_self and self.class_info is not None:
            if declared is None and dim is not None:
                existing = self.class_info.attr_dims.get(target.attr)
                if existing is None or existing == dim:
                    self.class_info.attr_dims[target.attr] = dim
                else:
                    del self.class_info.attr_dims[target.attr]
            if resolved_type is not None:
                self.class_info.attr_types[target.attr] = resolved_type

    def _report_binding(
        self, node: ast.AST, name: str, dim: Dim, declared: Dim
    ) -> None:
        if dim.is_dimensionless:
            detail = (
                f"a dimensionless result is bound to `{name}` which "
                f"implies {declared} — a ratio stored where a physical "
                "magnitude belongs"
            )
        else:
            detail = (
                f"a value of dimension {dim} is bound to `{name}` "
                f"which implies {declared}"
            )
        self._report("DIM003", node, detail)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def infer(self, expr: ast.AST) -> Optional[Dim]:
        if isinstance(expr, ast.Name):
            return self._name_dim(expr.id)
        if isinstance(expr, ast.Attribute):
            return self._attribute_dim(expr)
        if isinstance(expr, ast.BinOp):
            return self._binop_dim(expr)
        if isinstance(expr, ast.UnaryOp):
            return self.infer(expr.operand)
        if isinstance(expr, ast.Compare):
            self._compare(expr)
            return None
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                self.infer(value)
            return None
        if isinstance(expr, ast.Call):
            return self._call_dim(expr)
        if isinstance(expr, ast.Subscript):
            self.infer(expr.slice)
            return self.infer(expr.value)
        if isinstance(expr, ast.IfExp):
            self.infer(expr.test)
            return unify(self.infer(expr.body), self.infer(expr.orelse))
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            dims = [self.infer(element) for element in expr.elts]
            concrete = {d for d in dims if d is not None}
            return concrete.pop() if len(concrete) == 1 else None
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for comp in expr.generators:
                iter_dim = self.infer(comp.iter)
                if isinstance(comp.target, ast.Name) and iter_dim is not None:
                    self.env[comp.target.id] = iter_dim
            return self.infer(expr.elt)
        if isinstance(expr, ast.Starred):
            return self.infer(expr.value)
        return None

    def _name_dim(self, name: str) -> Optional[Dim]:
        if name in self.env:
            return self.env[name]
        if name in self.module.constant_dims:
            return self.module.constant_dims[name]
        origin = self.module.ctx.imports.get(name)
        if origin is not None and "." in origin:
            imported = self.project.constant_dim(self.module, origin)
            if imported is not None:
                return imported
            # Constants from modules outside the analyzed set still pin a
            # dimension through their unit-suffixed names.
            return dim_for_name(origin.rpartition(".")[2])
        return dim_for_name(name)

    def _attribute_dim(self, expr: ast.Attribute) -> Optional[Dim]:
        base = expr.value
        if isinstance(base, ast.Name):
            if self.self_name is not None and base.id == self.self_name:
                if self.class_info is not None:
                    known = self.class_info.attr_dims.get(expr.attr)
                    if known is not None:
                        return known
                return dim_for_name(expr.attr)
            type_q = self.local_types.get(base.id)
            if type_q is not None:
                cls_info = self.project.classes.get(type_q)
                if cls_info is not None:
                    known = cls_info.attr_dims.get(expr.attr)
                    if known is not None:
                        return known
        dotted = self.module.ctx.dotted_name(expr)
        if dotted is not None:
            imported = self.project.constant_dim(self.module, dotted)
            if imported is not None:
                return imported
        return dim_for_name(expr.attr)

    def _binop_dim(self, expr: ast.BinOp) -> Optional[Dim]:
        left = self.infer(expr.left)
        right = self.infer(expr.right)
        op = expr.op
        if isinstance(op, (ast.Add, ast.Sub)):
            if left is not None and right is not None and left != right:
                symbol = "+" if isinstance(op, ast.Add) else "-"
                self._report(
                    "DIM001",
                    expr,
                    f"dimension mismatch: {left} {symbol} {right}",
                )
                return None
            return left if left is not None else right
        if isinstance(op, ast.Mult):
            if left is not None and right is not None:
                return left * right
            return left if left is not None else right
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            if left is not None and right is not None:
                return left / right
            if left is not None:
                return left
            if right is not None:
                return right.inverse()
            return None
        if isinstance(op, ast.Pow):
            if (
                left is not None
                and isinstance(expr.right, ast.Constant)
                and isinstance(expr.right.value, int)
            ):
                return left ** expr.right.value
            return None
        if isinstance(op, ast.Mod):
            return left
        return None

    def _compare(self, expr: ast.Compare) -> None:
        operands = [expr.left, *expr.comparators]
        dims = [self.infer(operand) for operand in operands]
        for op, left, right in zip(expr.ops, dims, dims[1:]):
            if isinstance(op, (ast.Is, ast.IsNot, ast.In, ast.NotIn)):
                continue
            if left is not None and right is not None and left != right:
                self._report(
                    "DIM001",
                    expr,
                    f"dimension mismatch: comparing {left} to {right}",
                )
                return

    def _call_dim(self, expr: ast.Call) -> Optional[Dim]:
        arg_dims = [self.infer(arg) for arg in expr.args]
        kw_dims = {
            kw.arg: self.infer(kw.value)
            for kw in expr.keywords
            if kw.arg is not None
        }
        resolved = self.project.resolve_callee(
            self.module,
            expr.func,
            self.local_types,
            self.function.class_name if self.function else None,
            self.self_name,
        )
        target: Optional[FunctionInfo] = None
        bound = False
        if isinstance(resolved, FunctionInfo):
            target = resolved
            bound = resolved.is_method and isinstance(expr.func, ast.Attribute)
        elif isinstance(resolved, ClassInfo):
            target = resolved.methods.get("__init__")
            bound = True

        # DIM002: keyword arguments against declared/unit-suffixed params.
        for kw, dim in zip(
            (k for k in expr.keywords if k.arg is not None),
            (kw_dims[k.arg] for k in expr.keywords if k.arg is not None),
        ):
            declared = None
            if target is not None:
                declared = target.param_dims.get(kw.arg)
            if declared is None:
                declared = dim_for_name(kw.arg)
            if declared is not None and dim is not None and dim != declared:
                self._report(
                    "DIM002",
                    kw.value,
                    f"argument of dimension {dim} passed for parameter "
                    f"`{kw.arg}` which expects {declared}",
                )

        # DIM002: positional arguments for resolved project functions.
        if target is not None:
            for index, dim in enumerate(arg_dims):
                if dim is None or isinstance(expr.args[index], ast.Starred):
                    continue
                param = target.positional_param(index, bound=bound)
                if param is None:
                    continue
                declared = target.param_dims.get(param)
                if declared is not None and dim != declared:
                    self._report(
                        "DIM002",
                        expr.args[index],
                        f"argument of dimension {dim} passed for "
                        f"parameter `{param}` of {target.name}() which "
                        f"expects {declared}",
                    )

        if isinstance(resolved, ClassInfo):
            return None
        if target is not None:
            return self.summaries.get(target.qualname, target.declared_return)

        dotted = self.module.ctx.dotted_name(expr.func)
        if dotted is not None:
            if dotted in _DIMENSIONLESS_RESULT:
                return DIMENSIONLESS
            index = _PASSTHROUGH_ARG.get(dotted)
            if index is not None:
                return arg_dims[index] if index < len(arg_dims) else None
            if dotted in _UNIFYING:
                result: Optional[Dim] = None
                for dim in arg_dims:
                    result = unify(result, dim)
                return result
            if dotted == "numpy.sqrt" and arg_dims and arg_dims[0] is not None:
                root = arg_dims[0]
                if (
                    root.volt % 2 == 0
                    and root.ampere % 2 == 0
                    and root.second % 2 == 0
                ):
                    return Dim(root.volt // 2, root.ampere // 2,
                               root.second // 2)
                return None
            if dotted.endswith((".copy", ".astype", ".reshape", ".flatten")):
                return self.infer(expr.func.value) if isinstance(
                    expr.func, ast.Attribute
                ) else None
        # Unresolved call: the function *name* may still pin a dimension
        # (``total_resistance_ohms(...)`` from an un-analyzed module).
        tail = (dotted or "").rpartition(".")[2]
        return dim_for_name(tail) if tail else None


class DimensionPass:
    """Interprocedural fixpoint + final reporting walk over the project."""

    def __init__(self, project: Project, max_rounds: int = 5) -> None:
        self.project = project
        self.max_rounds = max_rounds
        self.summaries: Dict[str, Optional[Dim]] = {
            qual: fn.declared_return
            for qual, fn in project.functions.items()
        }

    def _round(self, emit: bool) -> List[Finding]:
        findings: List[Finding] = []
        changed = False
        for module in self.project.modules.values():
            scopes: List[Optional[FunctionInfo]] = [None]
            scopes.extend(
                fn
                for fn in self.project.functions.values()
                if fn.module is module
            )
            for fn in scopes:
                walk = FunctionInference(
                    self.project, module, fn, self.summaries, emit
                )
                walk.run()
                findings.extend(walk.findings)
                if fn is not None and fn.declared_return is None:
                    inferred = walk.return_dim if walk.saw_return else None
                    if self.summaries.get(fn.qualname) != inferred:
                        self.summaries[fn.qualname] = inferred
                        changed = True
        self._changed = changed
        return findings

    def run(self) -> List[Finding]:
        for _ in range(self.max_rounds):
            self._round(emit=False)
            if not self._changed:
                break
        return self._round(emit=True)


def run_dimension_pass(project: Project) -> List[Finding]:
    """All DIM findings for an analyzed project."""
    return DimensionPass(project).run()
