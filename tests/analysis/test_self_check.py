"""The gate: src/repro (simlint included) is simlint-clean, un-baselined.

This is the test that lets the next ten refactors move fast: any new
stdlib-random draw, wall-clock read, raw ``22e-6``, or float ``==``
anywhere under src/repro fails the suite with an exact location.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analysis import flow_paths, lint_paths
from repro.analysis.findings import Severity


def src_repro_dir() -> str:
    return str(Path(repro.__file__).resolve().parent)


def test_src_repro_is_simlint_clean():
    findings = lint_paths([src_repro_dir()])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_src_repro_is_flow_clean():
    """The dataflow engine (DIM/CON) reports nothing either.

    This is the dimensional-analysis analogue of the line-rule gate:
    any new Ω+F sum, wrong-dimension argument, fresh-entropy worker
    stream, or worker-side global write fails with an exact location.
    """
    findings = flow_paths([src_repro_dir()])
    assert findings == [], "\n".join(f.format() for f in findings)


def test_src_repro_has_no_errors_even_at_warning_level():
    """Redundant with the above today; keeps severity semantics honest."""
    findings = lint_paths([src_repro_dir()])
    assert [f for f in findings if f.severity is Severity.ERROR] == []
