"""The oracle-based batch co-scheduling experiment (Sec. IV-C/D).

The paper's limit study: gather droop and IPC data for all 29x29 CPU2006
pairings a priori (the *oracle*), then let each policy build batch
schedules from a job pool and compare the resulting droop/performance
trade-off against the SPECrate baseline (Fig. 18), and the number of
schedules that still meet the typical-case design target as recovery costs
grow (Tab. I, Fig. 19).

The machinery is N-core: :class:`GroupOracle` measures any co-running
group the campaign's chip can host, and :class:`BatchScheduler` places
groups of ``group_size`` programs.  The paper's dual-core limit study is
the ``group_size=2`` special case (:class:`PairOracle` is the pair-shaped
alias), and its behavior — the exact random streams, candidate orders and
scores — is bit-identical to the historical pair-only implementation
(pinned by ``tests/arena/test_pair_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import observability as obs
from repro.errors import SchedulingError
from repro.measurement.campaign import MeasurementCampaign, RunMeasurement
from repro.measurement.droops import CHARACTERIZATION_MARGIN
from repro.core.policies import SchedulingPolicy, SPECratePolicy
from repro.random_utils import SeedLike, as_generator

Pair = Tuple[str, str]
#: An N-core co-running group (2-tuples are the paper's pairs).
Group = Tuple[str, ...]


def _count_schedule(groups: Tuple[Group, ...]) -> Tuple[Group, ...]:
    """Record one built schedule in the metrics registry (pass-through)."""
    obs.increment("repro_schedules_built_total")
    obs.increment("repro_schedule_pairs_total", len(groups))
    return groups


class GroupOracle:
    """A-priori droop and IPC data for co-running workload groups.

    The paper gathers this in a pre-run phase over all 29x29 program
    combinations; here each grouping is measured (and cached) on the
    campaign's simulated chip — which may have any number of cores.  The
    droop metric counts distinct droop excursions beyond the 2.3 %
    characterization margin per 1K cycles; the IPC metric is the group's
    summed throughput.
    """

    def __init__(
        self,
        campaign: MeasurementCampaign,
        margin: float = CHARACTERIZATION_MARGIN,
    ) -> None:
        self._campaign = campaign
        self._margin = float(margin)

    @property
    def campaign(self) -> MeasurementCampaign:
        return self._campaign

    @property
    def margin(self) -> float:
        return self._margin

    def run(self, *names: str) -> RunMeasurement:
        kind = "single" if len(names) == 1 else "multiprogram"
        return self._campaign.measure(*names, kind=kind)

    def prefetch(self, names: Sequence[str]) -> None:
        """Gather the pair oracle's a-priori table in one executor fan-out.

        Batches every pairing (and each program's solo run) the policies
        can query through ``measure_specs``, so scoring afterwards is
        pure memo lookups — this is where ``--jobs N`` pays off for the
        scheduling experiments.
        """
        campaign = self._campaign
        with obs.span("oracle.prefetch", programs=len(names)):
            campaign.measure_specs(
                [campaign.run_spec(a, kind="single") for a in names]
                + [
                    campaign.run_spec(a, b, kind="multiprogram")
                    for a in names
                    for b in names
                ]
            )

    def prefetch_groups(self, groups: Sequence[Group]) -> None:
        """Gather an explicit list of group measurements in one fan-out.

        The N-core analogue of :meth:`prefetch`: enumerating every
        *ordered* group is combinatorial, so callers (the arena harness)
        hand over exactly the groups their policies may query — typically
        all sorted combinations of the job pool plus the solo runs.
        """
        campaign = self._campaign
        with obs.span("oracle.prefetch", groups=len(groups)):
            campaign.measure_specs(
                [
                    campaign.run_spec(
                        *group,
                        kind="single" if len(group) == 1 else "multiprogram",
                    )
                    for group in groups
                ]
            )

    def droop_metric(self, *names: str) -> float:
        """Droop excursions beyond the margin per 1K cycles."""
        run = self.run(*names)
        return 1000.0 * run.droops.event_rate(self._margin)

    def ipc_metric(self, *names: str) -> float:
        """Summed group throughput (instructions per cycle)."""
        return self.run(*names).throughput_ipc

    def max_droop_metric(self, *names: str) -> float:
        """Deepest droop excursion of the group (fraction of nominal).

        The margin-headroom quantity the DVFS-guardband policies consume:
        a group whose worst droop is shallow can run at a reduced
        guardband (see :mod:`repro.pdn.undervolt`).
        """
        return self.run(*names).max_droop

    def stall_metric(self, name: str) -> float:
        """One program's solo stall ratio (counter-only knowledge).

        Unlike :meth:`droop_metric` this needs no group measurements — a
        real scheduler can read it from hardware counters while the
        program runs alone, which is what makes the stall-ratio proxy
        deployable (Fig. 15).
        """
        run = self._campaign.measure(name, kind="single")
        return run.counters[0].stall_ratio

    def solo_ipc_metric(self, name: str) -> float:
        """One program's solo throughput (for packing heuristics)."""
        return self._campaign.measure(name, kind="single").throughput_ipc


class PairOracle(GroupOracle):
    """The paper's dual-core oracle: :class:`GroupOracle` on pairs."""


@dataclass(frozen=True)
class ScheduleEvaluation:
    """Aggregate droop/performance of one batch schedule."""

    policy_name: str
    groups: Tuple[Group, ...]
    mean_droops: float
    mean_ipc: float

    @property
    def pairs(self) -> Tuple[Group, ...]:
        """Historical alias from the pair-only scheduler."""
        return self.groups

    def normalized_to(self, baseline: "ScheduleEvaluation") -> Tuple[float, float]:
        """(droop ratio, performance ratio) relative to a baseline.

        These are the Fig. 18 scatter coordinates: SPECrate sits at
        (1, 1); quadrant Q1 is droops < 1 with performance > 1.
        """
        if baseline.mean_droops <= 0 or baseline.mean_ipc <= 0:
            raise SchedulingError("baseline evaluation is degenerate")
        return (
            self.mean_droops / baseline.mean_droops,
            self.mean_ipc / baseline.mean_ipc,
        )


class BatchScheduler:
    """Builds and evaluates batch schedules from a job pool.

    Parameters
    ----------
    oracle:
        Grouping data source.
    programs:
        The job pool (defaults to the whole CPU2006 suite known to the
        oracle's campaign).
    group_size:
        Programs co-scheduled per supply — the chip's core count as seen
        by the scheduler.  ``2`` reproduces the paper's dual-core study.
    """

    def __init__(
        self,
        oracle: GroupOracle,
        programs: Optional[Sequence[str]] = None,
        group_size: int = 2,
    ) -> None:
        if programs is None:
            from repro.workloads.spec import SPEC_NAMES

            programs = SPEC_NAMES
        if group_size < 2:
            raise SchedulingError("group_size must be >= 2")
        if len(programs) < 2:
            raise SchedulingError("need at least two programs")
        self._oracle = oracle
        self._programs = tuple(programs)
        self._group_size = int(group_size)

    @property
    def programs(self) -> Tuple[str, ...]:
        return self._programs

    @property
    def group_size(self) -> int:
        return self._group_size

    # ------------------------------------------------------------------
    # Schedule construction
    # ------------------------------------------------------------------
    def build_schedule(
        self,
        policy: SchedulingPolicy,
        n_pairs: int = 50,
        max_repeats: Optional[int] = None,
        seed: SeedLike = None,
    ) -> Tuple[Group, ...]:
        """Choose ``n_pairs`` co-running groups under a repetition constraint.

        Placement walks the pool favouring the least-used program (so no
        program is starved, matching the paper's constraint on repeated
        choices) and asks the policy to score candidate group extensions
        until each group holds ``group_size`` members.
        """
        if n_pairs < 1:
            raise SchedulingError("n_pairs must be >= 1")
        if isinstance(policy, SPECratePolicy):
            return _count_schedule(self.specrate_schedule(n_pairs))
        if max_repeats is None:
            max_repeats = max(
                2,
                int(np.ceil(self._group_size * n_pairs / len(self._programs))),
            )
        rng = as_generator(seed)
        usage: Dict[str, int] = {name: 0 for name in self._programs}
        groups: List[Group] = []
        for _ in range(n_pairs):
            available = [p for p in self._programs if usage[p] < max_repeats]
            if len(available) < 1:
                raise SchedulingError(
                    "job pool exhausted; raise max_repeats or lower n_pairs"
                )
            # Place the least-used program first (random tie-break).
            min_usage = min(usage[p] for p in available)
            anchors = [p for p in available if usage[p] == min_usage]
            anchor = anchors[int(rng.integers(0, len(anchors)))]
            group: List[str] = [anchor]
            while len(group) < self._group_size:
                in_group: Dict[str, int] = {}
                for member in group:
                    in_group[member] = in_group.get(member, 0) + 1
                candidates = [
                    p
                    for p in self._programs
                    if usage[p] + in_group.get(p, 0) + 1 <= max_repeats
                ]
                if not candidates:
                    candidates = [anchor]
                scores = np.array([
                    policy.score_group(tuple(group) + (partner,), self._oracle)
                    for partner in candidates
                ])
                group.append(candidates[int(np.argmax(scores))])
            for member in group:
                usage[member] += 1
            groups.append(tuple(group))
        return _count_schedule(tuple(groups))

    def specrate_schedule(self, n_pairs: Optional[int] = None) -> Tuple[Group, ...]:
        """The SPECrate baseline: each program grouped with itself."""
        groups = [(name,) * self._group_size for name in self._programs]
        if n_pairs is None:
            return tuple(groups)
        repeated = (groups * (n_pairs // len(groups) + 1))[:n_pairs]
        return tuple(repeated)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        groups: Sequence[Group],
        policy_name: str = "",
    ) -> ScheduleEvaluation:
        """Mean droop and IPC metrics over one schedule's groups."""
        if not groups:
            raise SchedulingError("empty schedule")
        with obs.span(
            "scheduler.evaluate", policy=policy_name, pairs=len(groups)
        ):
            droops = [self._oracle.droop_metric(*g) for g in groups]
            ipcs = [self._oracle.ipc_metric(*g) for g in groups]
        return ScheduleEvaluation(
            policy_name=policy_name,
            groups=tuple(tuple(g) for g in groups),
            mean_droops=float(np.mean(droops)),
            mean_ipc=float(np.mean(ipcs)),
        )

    def run_policy(
        self,
        policy: SchedulingPolicy,
        n_pairs: int = 50,
        seed: SeedLike = None,
    ) -> ScheduleEvaluation:
        """Build and evaluate one batch schedule for a policy."""
        groups = self.build_schedule(policy, n_pairs=n_pairs, seed=seed)
        return self.evaluate(groups, policy_name=policy.name)

    # ------------------------------------------------------------------
    # Pass/fail analysis (Tab. I / Fig. 19)
    # ------------------------------------------------------------------
    def partner_map(
        self,
        policy: SchedulingPolicy,
        max_partner_load: int = 2,
        seed: SeedLike = None,
    ) -> Dict[str, str]:
        """One partner per program, chosen by the policy.

        Used by the Fig. 19 analysis: instead of SPECrate's self-pairing,
        each program gets the policy's preferred (capacity-limited)
        partner.  Pair-shaped by construction, whatever the group size.
        """
        rng = as_generator(seed)
        load: Dict[str, int] = {name: 0 for name in self._programs}
        partners: Dict[str, str] = {}
        # Assign anchors in random order so capacity limits bite fairly.
        order = list(self._programs)
        rng.shuffle(order)
        for anchor in order:
            candidates = [
                p for p in self._programs if load[p] < max_partner_load
            ]
            if not candidates:
                candidates = list(self._programs)
            scores = np.array([
                policy.score(anchor, partner, self._oracle)
                for partner in candidates
            ])
            partner = candidates[int(np.argmax(scores))]
            load[partner] += 1
            partners[anchor] = partner
        return partners
