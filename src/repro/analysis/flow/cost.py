"""Interprocedural loop-cost model and the PERF performance-smell pass.

Every function in the analyzed project gets a **cost summary** over a
small finite lattice:

* ``depth`` — the deepest loop nest observable from the function,
  *including* loops it reaches through calls (a call at loop depth *d*
  to a function of depth *d'* contributes ``min(d + d', DEPTH_CAP)``);
  capped at :data:`DEPTH_CAP` so the lattice stays finite.
* ``work`` — the dominant per-iteration work class, ordered by how much
  a vectorizing refactor would win: ``none`` < ``compiled-call``
  (scipy et al., already out of the interpreter) < ``numpy-vectorized``
  (good, but a candidate for batching) < ``list-append`` (stackable
  accumulation) < ``scalar`` (pure-Python arithmetic per iteration,
  the expensive end).
* ``filters`` — whether the function (transitively) invokes an IIR
  filter (``scipy.signal.sosfilt`` and friends), the PDN solver's
  batchable kernel.

``join`` is the componentwise maximum, the bottom element is
:data:`BOTTOM`, and :func:`solve_costs` computes the least fixpoint of
``summary(f) = intrinsic(f) ⊔ ⊔ lift(summary(callee), call_depth)``
over the project call graph with sorted, deterministic iteration —
exactly the shape of :func:`repro.analysis.flow.effects.solve_effects`,
and property-tested the same way.

On top of the model sits the **hot-closure classification**: the
breadth-first closure of the campaign's measured entry points —
``*.simulate`` methods (``run.simulate`` / ``pdn.simulate`` spans),
``*Chip.run`` (the ``chip.run`` span), and every process-pool payload —
and the ``PERF001``–``PERF005`` rules, which fire only inside that
closure so the report stays a worklist, not a style audit.  The
resulting :class:`CostTable` is also the static half of the
``simlint hotspots`` subcommand, which joins it against a measured
stage profile (see :mod:`repro.analysis.hotspots`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.flow.callgraph import (
    local_types,
    project_worker_entries,
    reachable,
)
from repro.analysis.flow.symbols import ClassInfo, FunctionInfo, Project
from repro.analysis.registry import get_rule

# ---------------------------------------------------------------------------
# The lattice
# ---------------------------------------------------------------------------

#: Loop-nest depths saturate here; beyond three nested loops the verdict
#: ("vectorize this") does not change, and the cap keeps the lattice finite.
DEPTH_CAP = 3

W_NONE = 0
W_COMPILED = 1
W_VECTORIZED = 2
W_APPEND = 3
W_SCALAR = 4

#: Report spellings for the work classes, index-aligned with the ints.
WORK_NAMES: Tuple[str, ...] = (
    "none",
    "compiled-call",
    "numpy-vectorized",
    "list-append",
    "scalar",
)

ALL_WORK_CLASSES: Tuple[int, ...] = (
    W_NONE,
    W_COMPILED,
    W_VECTORIZED,
    W_APPEND,
    W_SCALAR,
)


@dataclass(frozen=True)
class CostSummary:
    """One point of the cost lattice: (loop depth, work class, filters)."""

    depth: int = 0
    work: int = W_NONE
    filters: bool = False

    def work_name(self) -> str:
        return WORK_NAMES[self.work]


#: The lattice bottom: no loops, no work, no filter calls.
BOTTOM = CostSummary()


def join_cost(a: CostSummary, b: CostSummary) -> CostSummary:
    """Least upper bound: componentwise maximum."""
    return CostSummary(
        depth=max(a.depth, b.depth),
        work=max(a.work, b.work),
        filters=a.filters or b.filters,
    )


def lift(summary: CostSummary, call_depth: int) -> CostSummary:
    """``summary`` as seen by a caller invoking it at loop depth ``call_depth``.

    Monotone in ``summary``: the callee's nest rides on top of the call
    site's nest (saturating at :data:`DEPTH_CAP`); work class and the
    filter bit pass through unchanged.
    """
    return CostSummary(
        depth=min(summary.depth + call_depth, DEPTH_CAP),
        work=summary.work,
        filters=summary.filters,
    )


# ---------------------------------------------------------------------------
# Syntactic classification sets
# ---------------------------------------------------------------------------

#: IIR/FIR filter kernels whose repeated per-trace invocation is the
#: batching opportunity PERF003 exists for (ROADMAP item 2).
FILTER_CALLS = frozenset(
    {
        "scipy.signal.sosfilt",
        "scipy.signal.sosfiltfilt",
        "scipy.signal.lfilter",
        "scipy.signal.filtfilt",
    }
)

#: Allocation expressions that should be hoisted out of a per-cycle loop
#: (PERF004): fresh containers and numpy array materializations/copies.
ALLOCATING_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "copy.deepcopy",
        "numpy.array",
        "numpy.asarray",
        "numpy.zeros",
        "numpy.ones",
        "numpy.empty",
        "numpy.copy",
    }
)

#: Exact iterable names that mark a loop as trace-length (per-cycle).
TRACE_NAMES = frozenset({"events"})

#: Substrings of iterable names that mark a loop as trace-length.
TRACE_NAME_PARTS: Tuple[str, ...] = ("cycle", "trace", "sample")

#: Hot entry points by qualname suffix: every ``*.simulate`` method or
#: function (the ``run.simulate`` / ``pdn.simulate`` spans) and every
#: ``*Chip.run`` method (the ``chip.run`` span).  Pool payloads join via
#: :func:`repro.analysis.flow.callgraph.project_worker_entries`.
HOT_ENTRY_SUFFIXES: Tuple[str, ...] = (".simulate", "Chip.run")


def stage_for_entry(entry_qualname: str) -> str:
    """Observability span name a hot entry's time is recorded under."""
    if entry_qualname.endswith("Chip.run"):
        return "chip.run"
    if entry_qualname.endswith(".simulate") and ".pdn." in entry_qualname:
        return "pdn.simulate"
    return "run.simulate"


def is_trace_iterable(expr: ast.expr) -> bool:
    """Does this iterable expression look trace-length (per-cycle)?

    A name or attribute anywhere in the expression spelled ``events`` or
    containing ``cycle``/``trace``/``sample`` (``self.events``,
    ``range(n_cycles)``, ``zip(cycles, trace)``) marks the loop as
    running once per simulated cycle rather than once per core/workload.
    """
    for sub in ast.walk(expr):
        name: Optional[str] = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is None:
            continue
        lowered = name.lower()
        if lowered in TRACE_NAMES or any(
            part in lowered for part in TRACE_NAME_PARTS
        ):
            return True
    return False


def list_typed_locals(fn: FunctionInfo) -> Set[str]:
    """Local names bound to a fresh list inside ``fn`` (PERF002/PERF005)."""
    names: Set[str] = set()
    for node in ast.walk(fn.node):
        target: Optional[str] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name):
            target, value = node.targets[0].id, node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            target, value = node.target.id, node.value
        if target is None or value is None:
            continue
        if isinstance(value, (ast.List, ast.ListComp)):
            names.add(target)
        elif isinstance(value, ast.Call) and isinstance(
            value.func, ast.Name
        ) and value.func.id == "list":
            names.add(target)
    return names


def _iter_nodes_with_depth(
    fn: FunctionInfo,
) -> Iterator[Tuple[ast.AST, int]]:
    """Yield ``(node, loop_depth)`` for every node in ``fn``'s body.

    Loop *bodies* (and comprehension elements) sit one level below the
    loop statement itself; a loop's iterable expression is evaluated
    once and therefore stays at the enclosing depth.
    """

    def visit(node: ast.AST, depth: int) -> Iterator[Tuple[ast.AST, int]]:
        yield node, depth
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield from visit(node.target, depth)
            yield from visit(node.iter, depth)
            for child in node.body + node.orelse:
                yield from visit(child, min(depth + 1, DEPTH_CAP))
        elif isinstance(node, ast.While):
            for child in [node.test, *node.body, *node.orelse]:
                yield from visit(child, min(depth + 1, DEPTH_CAP))
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            inner = min(depth + len(node.generators), DEPTH_CAP)
            for gen in node.generators:
                yield from visit(gen.iter, depth)
                yield from visit(gen.target, inner)
                for test in gen.ifs:
                    yield from visit(test, inner)
            if isinstance(node, ast.DictComp):
                yield from visit(node.key, inner)
                yield from visit(node.value, inner)
            else:
                yield from visit(node.elt, inner)
        else:
            for child in ast.iter_child_nodes(node):
                yield from visit(child, depth)

    for stmt in fn.node.body:
        yield from visit(stmt, 0)


def intrinsic_cost(project: Project, fn: FunctionInfo) -> CostSummary:
    """The cost ``fn`` exhibits directly, ignoring its callees."""
    ctx = fn.module.ctx
    list_locals = list_typed_locals(fn)
    depth = 0
    work = W_NONE
    filters = False
    for node, node_depth in _iter_nodes_with_depth(fn):
        if isinstance(
            node,
            (ast.For, ast.AsyncFor, ast.While, ast.ListComp, ast.SetComp,
             ast.DictComp, ast.GeneratorExp),
        ):
            depth = max(depth, min(node_depth + 1, DEPTH_CAP))
        if isinstance(node, ast.Call):
            dotted = ctx.dotted_name(node.func)
            if dotted in FILTER_CALLS:
                filters = True
                work = max(work, W_COMPILED)
            elif dotted is not None and dotted.startswith("scipy."):
                work = max(work, W_COMPILED)
            elif dotted is not None and dotted.startswith("numpy."):
                work = max(work, W_VECTORIZED)
            elif (
                node_depth >= 1
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in list_locals
            ):
                work = max(work, W_APPEND)
        elif isinstance(node, ast.BinOp) and node_depth >= 1:
            work = max(work, W_SCALAR)
    return CostSummary(depth=depth, work=work, filters=filters)


# ---------------------------------------------------------------------------
# The interprocedural fixpoint
# ---------------------------------------------------------------------------


def cost_call_edges(project: Project) -> Dict[str, Dict[str, int]]:
    """``caller -> {callee -> worst call-site loop depth}`` for the project.

    The same resolution as :func:`repro.analysis.flow.callgraph.callees`
    (import table, locals' class types, ``self.method``, unique-method
    fallback), but each edge carries the deepest loop nest any call site
    sits in, which :func:`lift` adds to the callee's summary.
    """
    edges: Dict[str, Dict[str, int]] = {}
    for qualname, fn in project.functions.items():
        types, self_name = local_types(project, fn)
        out: Dict[str, int] = {}

        def record(callee: str, depth: int) -> None:
            out[callee] = max(out.get(callee, 0), min(depth, DEPTH_CAP))

        for node, depth in _iter_nodes_with_depth(fn):
            if not isinstance(node, ast.Call):
                continue
            resolved = project.resolve_callee(
                fn.module, node.func, types, fn.class_name, self_name
            )
            if isinstance(resolved, FunctionInfo):
                record(resolved.qualname, depth)
            elif isinstance(resolved, ClassInfo):
                for ctor in ("__init__", "__post_init__"):
                    if ctor in resolved.methods:
                        record(resolved.methods[ctor].qualname, depth)
            elif isinstance(node.func, ast.Attribute):
                candidates = project.methods_by_name.get(node.func.attr, [])
                if len(candidates) == 1:
                    record(candidates[0].qualname, depth)
        edges[qualname] = {
            callee: depth for callee, depth in out.items()
            if callee in project.functions
        }
    return edges


def solve_costs(
    intrinsic: Mapping[str, CostSummary],
    edges: Mapping[str, Mapping[str, int]],
) -> Dict[str, CostSummary]:
    """Least fixpoint of ``summary(f) = intrinsic(f) ⊔ ⊔ lift(summary(g), d)``.

    Iteration order is sorted, so the result is deterministic and
    independent of mapping insertion order; the lattice is finite
    (depth caps at :data:`DEPTH_CAP`, work classes and the filter bit
    are bounded) and every step is monotone, so it terminates.
    """
    names = sorted(set(intrinsic) | set(edges))
    summaries: Dict[str, CostSummary] = {
        name: intrinsic.get(name, BOTTOM) for name in names
    }
    changed = True
    while changed:
        changed = False
        for name in names:
            summary = summaries[name]
            for callee, depth in sorted(edges.get(name, {}).items()):
                summary = join_cost(
                    summary, lift(summaries.get(callee, BOTTOM), depth)
                )
            if summary != summaries[name]:
                summaries[name] = summary
                changed = True
    return summaries


# ---------------------------------------------------------------------------
# Hot-closure classification
# ---------------------------------------------------------------------------


def hot_entries(project: Project) -> List[FunctionInfo]:
    """The measured entry points, deterministic order: suffix-matched
    ``*.simulate``/``*Chip.run`` functions first (sorted), then every
    process-pool payload in dispatch order."""
    entries: List[FunctionInfo] = []
    seen: Set[str] = set()
    for qualname in sorted(project.functions):
        if any(qualname.endswith(s) for s in HOT_ENTRY_SUFFIXES):
            entries.append(project.functions[qualname])
            seen.add(qualname)
    for fn in project_worker_entries(project):
        if fn.qualname not in seen:
            seen.add(fn.qualname)
            entries.append(fn)
    return entries


def hot_closure(project: Project) -> Dict[str, str]:
    """``member qualname -> entry qualname`` over the hot entry closure.

    Each function maps to the first entry (in :func:`hot_entries` order)
    whose breadth-first closure reaches it, so the attribution is
    deterministic.
    """
    owners: Dict[str, str] = {}
    for entry in hot_entries(project):
        for fn in reachable(project, [entry]):
            owners.setdefault(fn.qualname, entry.qualname)
    return owners


@dataclass
class CostTable:
    """Per-function cost summaries plus the hot-closure attribution."""

    project: Project
    summaries: Dict[str, CostSummary]
    intrinsic: Dict[str, CostSummary]
    edges: Dict[str, Dict[str, int]]
    hot: Dict[str, str]

    def function_cost(self, qualname: str) -> CostSummary:
        return self.summaries.get(qualname, BOTTOM)

    def stage_of(self, qualname: str) -> Optional[str]:
        """Span name whose measured time covers ``qualname``, if hot."""
        entry = self.hot.get(qualname)
        return None if entry is None else stage_for_entry(entry)

    def report(self) -> Dict[str, Any]:
        """JSON-ready dump of the model (stable key order)."""
        return {
            "version": 1,
            "functions": {
                qualname: {
                    "depth": summary.depth,
                    "work": summary.work_name(),
                    "filters": summary.filters,
                    "hot_entry": self.hot.get(qualname),
                    "stage": self.stage_of(qualname),
                }
                for qualname, summary in sorted(self.summaries.items())
            },
            "hot_entries": sorted(set(self.hot.values())),
        }


def compute_costs(project: Project) -> CostTable:
    """Solve the cost fixpoint and hot closure for ``project``."""
    intrinsic = {
        qualname: intrinsic_cost(project, fn)
        for qualname, fn in project.functions.items()
    }
    edges = cost_call_edges(project)
    summaries = solve_costs(intrinsic, edges)
    return CostTable(
        project=project,
        summaries=summaries,
        intrinsic=intrinsic,
        edges=edges,
        hot=hot_closure(project),
    )


# ---------------------------------------------------------------------------
# The PERF pass
# ---------------------------------------------------------------------------


class CostPass:
    """PERF001–PERF005 over the hot closure of one analyzed project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.table = compute_costs(project)
        self.findings: List[Finding] = []
        #: ``(finding, function qualname, hot entry qualname)`` triples,
        #: parallel to :attr:`findings` — the join key ``simlint
        #: hotspots`` needs to map each finding to its measured stage.
        self.attributions: List[Tuple[Finding, str, str]] = []

    def _report(
        self, code: str, fn: FunctionInfo, node: ast.AST, message: str
    ) -> None:
        finding = fn.module.ctx.finding(get_rule(code), node, message)
        self.findings.append(finding)
        self.attributions.append(
            (finding, fn.qualname, self.table.hot.get(fn.qualname, ""))
        )

    # -- per-function audit -------------------------------------------------
    def _audit(self, fn: FunctionInfo, entry: str) -> None:
        ctx = fn.module.ctx
        list_locals = list_typed_locals(fn)
        types, self_name = local_types(self.project, fn)

        def filtered_callee(node: ast.Call) -> Optional[str]:
            """Label of a callee that (transitively) runs an IIR filter."""
            dotted = ctx.dotted_name(node.func)
            if dotted in FILTER_CALLS:
                return dotted
            resolved = self.project.resolve_callee(
                fn.module, node.func, types, fn.class_name, self_name
            )
            if isinstance(resolved, FunctionInfo):
                if self.table.function_cost(resolved.qualname).filters:
                    return resolved.qualname
                return None
            if resolved is None and isinstance(node.func, ast.Attribute):
                candidates = self.project.methods_by_name.get(
                    node.func.attr, []
                )
                if candidates and all(
                    self.table.function_cost(c.qualname).filters
                    for c in candidates
                ):
                    return f"*.{node.func.attr}"
            return None

        trace_stack: List[bool] = []

        def walk(node: ast.AST, depth: int) -> None:
            if isinstance(node, (ast.For, ast.AsyncFor)):
                trace_like = is_trace_iterable(node.iter)
                if trace_like and not isinstance(node, ast.AsyncFor):
                    self._report(
                        "PERF001", fn, node,
                        "Python-level loop over per-cycle iterable "
                        f"`{ast.unparse(node.iter)}` in hot function "
                        f"{fn.qualname} (reachable from {entry}); "
                        "vectorize over the whole trace with numpy",
                    )
                walk(node.target, depth)
                walk(node.iter, depth)
                trace_stack.append(trace_like)
                for child in node.body + node.orelse:
                    walk(child, depth + 1)
                trace_stack.pop()
                return
            if isinstance(node, ast.While):
                trace_stack.append(False)
                for child in [node.test, *node.body, *node.orelse]:
                    walk(child, depth + 1)
                trace_stack.pop()
                return
            if isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
            ):
                for gen in node.generators:
                    walk(gen.iter, depth)
                trace_stack.append(
                    any(
                        is_trace_iterable(gen.iter)
                        for gen in node.generators
                    )
                )
                inner = depth + len(node.generators)
                parts: List[ast.expr] = (
                    [node.key, node.value]
                    if isinstance(node, ast.DictComp)
                    else [node.elt]
                )
                for gen in node.generators:
                    parts.extend(gen.ifs)
                for part in parts:
                    walk(part, inner)
                trace_stack.pop()
                return

            in_loop = depth >= 1
            in_trace_loop = any(trace_stack)
            if isinstance(node, ast.Call) and in_loop:
                self._audit_loop_call(
                    fn, entry, node, list_locals, in_trace_loop,
                    filtered_callee,
                )
            elif (
                isinstance(node, (ast.List, ast.Dict, ast.Set))
                and in_trace_loop
            ):
                kind = type(node).__name__.lower()
                self._report(
                    "PERF004", fn, node,
                    f"{kind} literal allocated inside a per-cycle loop "
                    f"in hot function {fn.qualname}; hoist or "
                    "preallocate it outside the loop",
                )
            elif (
                isinstance(node, ast.Compare)
                and in_loop
                and any(
                    isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
                )
                and any(
                    isinstance(cmp, ast.Name) and cmp.id in list_locals
                    for cmp in node.comparators
                )
            ):
                target = next(
                    cmp.id for cmp in node.comparators
                    if isinstance(cmp, ast.Name) and cmp.id in list_locals
                )
                self._report(
                    "PERF005", fn, node,
                    f"membership test against list `{target}` inside a "
                    f"loop in hot function {fn.qualname} is O(n) per "
                    "iteration — O(n²) overall; use a set",
                )
            for child in ast.iter_child_nodes(node):
                walk(child, depth)

        for stmt in fn.node.body:
            walk(stmt, 0)

    def _audit_loop_call(
        self,
        fn: FunctionInfo,
        entry: str,
        node: ast.Call,
        list_locals: Set[str],
        in_trace_loop: bool,
        filtered_callee: Any,
    ) -> None:
        ctx = fn.module.ctx
        dotted = ctx.dotted_name(node.func)
        label = filtered_callee(node)
        if label is not None:
            self._report(
                "PERF003", fn, node,
                f"per-iteration call to `{label}` runs an IIR filter "
                f"inside a loop in hot function {fn.qualname}; stack "
                "the traces and filter the batch in one call",
            )
            return
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "append"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in list_locals
            and node.args
            and isinstance(node.args[0], (ast.Call, ast.BinOp))
        ):
            self._report(
                "PERF002", fn, node,
                f"`{node.func.value.id}.append(...)` accumulates "
                f"computed rows in a loop in hot function {fn.qualname}; "
                "the batch is numpy-stackable — build it with one "
                "vectorized expression or np.stack",
            )
            return
        if in_trace_loop and dotted in ALLOCATING_CALLS:
            self._report(
                "PERF004", fn, node,
                f"`{dotted}` allocates inside a per-cycle loop in hot "
                f"function {fn.qualname}; hoist or preallocate it "
                "outside the loop",
            )

    # -----------------------------------------------------------------------
    def run(self) -> List[Finding]:
        for qualname in sorted(self.table.hot):
            fn = self.project.functions.get(qualname)
            if fn is not None:
                self._audit(fn, self.table.hot[qualname])
        return self.findings


def run_cost_pass(project: Project) -> List[Finding]:
    """All PERF findings for an analyzed project."""
    return CostPass(project).run()
