"""Extension — split vs connected core supplies (paper footnote 3).

The paper restricts itself to the shared-rail design, citing IBM's POWER6
finding that "voltage swings are much larger when the cores operate
independently".  This extension experiment runs identical workload pairs
on the shared-rail chip and on a split-rail variant (each core owns half
the decoupling) and compares worst-case swings — reproducing the cited
observation and grounding the paper's global-recovery assumption.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.uarch.chip import Chip
from repro.uarch.split_supply import SplitSupplyChip
from repro.workloads.spec import spec_benchmark

PAIRS: Tuple[Tuple[str, str], ...] = (
    ("mcf", "mcf"),
    ("lbm", "namd"),
    ("libquantum", "sphinx"),
    ("gamess", "povray"),
)


def run(quick: bool = False, config: str = "Proc100") -> ExperimentResult:
    n_cycles = 25_000 if quick else 50_000
    repeats = 2 if quick else 3
    connected = Chip(config, with_ripple=True)
    split = SplitSupplyChip(config, with_ripple=True)

    result = ExperimentResult(
        experiment_id="Ext. A",
        title="Split vs connected core supplies (POWER6 comparison)",
        columns=("pair", "connected pk-pk (%)", "split pk-pk (%)",
                 "split/connected"),
    )
    ratios: List[float] = []
    for a, b in PAIRS:
        conn_vals, split_vals = [], []
        for rep in range(repeats):
            wa = spec_benchmark(a).sample_window(n_cycles, rng=10 * rep + 1)
            wb = spec_benchmark(b).sample_window(n_cycles, rng=10 * rep + 2)
            run_conn = connected.run([wa, wb], seed=rep)
            run_split = split.run([wa, wb], seed=rep)
            conn_vals.append(run_conn.voltage.peak_to_peak_fraction())
            split_vals.append(run_split.worst_peak_to_peak_fraction())
        conn = float(np.mean(conn_vals))
        spl = float(np.mean(split_vals))
        ratios.append(spl / conn)
        result.add_row(f"{a}+{b}", 100 * conn, 100 * spl, spl / conn)
    result.series["ratios"] = np.array(ratios)
    result.notes.append(
        f"mean split/connected swing ratio {np.mean(ratios):.2f}x "
        "(POWER6: swings 'much larger' with independent supplies)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=True).format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
