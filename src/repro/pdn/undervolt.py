"""Worst-case margin discovery by undervolting (Sec. II-C).

The paper: "In order to determine this value, we progressively undervolt
the processor while maintaining its clock frequency.  This ultimately
forces the processor into a functional error, which we detect when the
processor fails stress-testing under multiple copies of the power virus."

The simulator's version: the chip's critical path fails whenever the
instantaneous die voltage falls below :data:`CRITICAL_VOLTAGE` (the supply
at which the critical path no longer closes timing at 1.86 GHz — see the
ring-oscillator model for why frequency collapses near threshold).  The
experiment lowers the regulator set-point step by step while both cores
run the phase-locked power virus, and finds the first set-point whose
worst droop dips below the critical voltage.

Two numbers fall out:

* the **undervolt headroom** — how far below nominal the set-point can go
  before the virus kills the machine (small: the virus's own droop eats
  most of the guardband);
* the **worst-case operating margin** — ``(Vnom − V_crit)/Vnom``, the
  guardband the shipped part actually carries; the reproduction's
  ``WORST_CASE_MARGIN = 14 %`` constant is *this derived quantity*, not an
  assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.pdn import platform

#: Supply voltage below which the critical path misses timing at the
#: shipped 1.86 GHz clock.  1.118 V = 86 % of the 1.30 V nominal — the
#: complement of the 14 % guardband the paper measures.
CRITICAL_VOLTAGE = 1.118


@dataclass(frozen=True)
class UndervoltResult:
    """Outcome of one undervolting campaign."""

    config_name: str
    failing_undervolt: float
    virus_droop_fraction: float
    worst_case_margin: float
    set_points: np.ndarray
    min_voltages: np.ndarray

    @property
    def headroom(self) -> float:
        """Largest safe undervolt below nominal (fraction)."""
        return max(0.0, self.failing_undervolt)


def _virus_current(n_cycles: int) -> np.ndarray:
    """Chip current under two phase-locked power-virus copies."""
    from repro.uarch.core import Core
    from repro.workloads.virus import PowerVirus

    core = Core()
    virus = PowerVirus()
    window = virus.sample_window(n_cycles)
    activity = core.realize_activity(window)
    per_core = core.current_from_activity(activity)
    return 2.0 * per_core + 2.0  # both cores + uncore


def undervolt_to_failure(
    config: str = "Proc100",
    n_cycles: int = 60_000,
    step: float = 0.005,
    max_undervolt: float = 0.12,
    critical_voltage: float = CRITICAL_VOLTAGE,
    with_ripple: bool = True,
    seed: int = 0,
) -> UndervoltResult:
    """Walk the regulator set-point down until the virus causes failure.

    Parameters
    ----------
    config:
        Decap configuration under test.
    step:
        Undervolt granularity (fraction of nominal per step).
    max_undervolt:
        Search ceiling; exceeded means the model never failed (an error —
        the virus should always be able to kill the machine eventually).
    """
    if step <= 0:
        raise ConfigurationError("step must be positive")
    if not 0 < max_undervolt < 0.5:
        raise ConfigurationError("max_undervolt must be in (0, 0.5)")
    current = _virus_current(n_cycles)
    nominal = platform.NOMINAL_VOLTAGE

    set_points = []
    minima = []
    failing = None
    virus_droop = None
    undervolt = 0.0
    while undervolt <= max_undervolt + 1e-12:
        supply = nominal * (1.0 - undervolt)
        parameters = platform.PlatformParameters(nominal_voltage=supply)
        simulator = platform.build_simulator(
            config, parameters, with_ripple=with_ripple
        )
        trace = simulator.simulate(
            current, seed=seed, include_ripple=with_ripple
        )
        v_min = float(trace.samples.min())
        set_points.append(supply)
        minima.append(v_min)
        if virus_droop is None:  # first iteration: nominal set-point
            virus_droop = trace.max_droop_fraction()
        if v_min < critical_voltage:
            failing = undervolt
            break
        undervolt += step
    if failing is None:
        raise SimulationError(
            "virus stress never failed within the undervolt ceiling; "
            "the critical voltage is miscalibrated"
        )
    return UndervoltResult(
        config_name=config,
        failing_undervolt=failing,
        virus_droop_fraction=float(virus_droop),
        worst_case_margin=(nominal - critical_voltage) / nominal,
        set_points=np.array(set_points),
        min_voltages=np.array(minima),
    )
