"""The determinism battery: telemetry content is jobs-invariant.

The contract: for the same starting cache state, every *deterministic*
metric section and the trace's span-tree structure are bit-identical
between a serial campaign and a ``--jobs N`` one — only durations and
the quarantined ``runtime`` section may differ.
"""

from __future__ import annotations

import pytest

from repro import observability as obs
from repro.measurement import MeasurementCampaign

SUBSET = ("mcf", "lbm")
WINDOW_CYCLES = 4_000
SEED = 7


def run_sweep(jobs: int) -> obs.ObservabilitySession:
    """One cold (cache-less) mini-sweep under a fresh session."""
    with obs.capture() as session:
        campaign = MeasurementCampaign(
            "Proc3", n_cycles=WINDOW_CYCLES, seed=SEED, jobs=jobs
        )
        specs = [
            campaign.run_spec(name, kind="single") for name in SUBSET
        ] + [campaign.run_spec(*SUBSET, kind="multiprogram")]
        campaign.measure_specs(specs)
    return session


def deterministic_sections(session: obs.ObservabilitySession) -> dict:
    payload = session.metrics_payload()
    return {
        key: payload[key] for key in ("counters", "gauges", "histograms")
    }


@pytest.fixture(scope="module")
def serial_session():
    return run_sweep(jobs=1)


@pytest.fixture(scope="module")
def parallel_session():
    return run_sweep(jobs=2)


class TestMetricDeterminism:
    def test_counts_identical_serial_vs_parallel(
        self, serial_session, parallel_session
    ):
        assert deterministic_sections(serial_session) == (
            deterministic_sections(parallel_session)
        )

    def test_content_metrics_nonzero(self, serial_session):
        counters = serial_session.metrics_payload()["counters"]
        assert counters["repro_runs_total"] == len(SUBSET) + 1
        assert counters["repro_run_cycles_total"] == (
            (len(SUBSET) + 1) * WINDOW_CYCLES
        )
        assert counters["repro_chip_runs_total"] == len(SUBSET) + 1
        assert any(
            name.startswith("repro_droop_events_total") for name in counters
        )

    def test_runtime_section_reflects_execution_mode(
        self, serial_session, parallel_session
    ):
        serial_runtime = serial_session.metrics_payload()["runtime"]
        parallel_runtime = parallel_session.metrics_payload()["runtime"]
        assert serial_runtime.get("repro_parallel_batches_total", 0) == 0
        assert parallel_runtime["repro_parallel_batches_total"] >= 1
        assert any(
            name.startswith("repro_worker_runs_total")
            for name in parallel_runtime
        )


class TestTraceDeterminism:
    def test_span_structure_identical_serial_vs_parallel(
        self, serial_session, parallel_session
    ):
        assert serial_session.tracer.structure() == (
            parallel_session.tracer.structure()
        )

    def test_structure_stable_across_repeat_runs(self, serial_session):
        assert run_sweep(jobs=1).tracer.structure() == (
            serial_session.tracer.structure()
        )

    def test_worker_spans_marked_in_parallel_trace(
        self, serial_session, parallel_session
    ):
        serial_workers = sum(
            1 for span in serial_session.tracer.walk() if span.worker
        )
        parallel_workers = sum(
            1 for span in parallel_session.tracer.walk() if span.worker
        )
        assert serial_workers == 0
        assert parallel_workers > 0

    def test_trace_payload_span_count_consistent(self, parallel_session):
        payload = parallel_session.trace_payload()
        def count(node):
            return 1 + sum(count(c) for c in node.get("children", ()))
        assert payload["span_count"] == sum(
            count(root) for root in payload["roots"]
        )


class TestZeroOverheadDisabled:
    def test_no_span_objects_allocated_while_disabled(self, monkeypatch):
        """The off path may not allocate spans or read the span clock."""
        from repro.observability import spans as spans_module

        def forbidden(*args: object, **kwargs: object) -> None:
            raise AssertionError(
                "observability allocated while disabled"
            )

        monkeypatch.setattr(spans_module.SpanRecord, "__init__", forbidden)
        monkeypatch.setattr(spans_module.ActiveSpan, "__init__", forbidden)
        assert not obs.enabled()
        campaign = MeasurementCampaign(
            "Proc3", n_cycles=2_000, seed=0, jobs=1
        )
        measurement = campaign.measure("mcf")
        assert measurement.n_cycles == 2_000

    def test_disabled_span_is_shared_instance(self):
        assert obs.span("a") is obs.span("b")
