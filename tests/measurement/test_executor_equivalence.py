"""Equivalence test battery: serial vs parallel, cold vs warm cache.

The executor's central promise is that *how* a campaign is executed —
in-process or fanned out over worker processes, freshly simulated or
replayed from the persistent cache — never changes a single bit of any
:class:`RunMeasurement`.  These tests compare complete run lists
field-by-field (counters, droop/overshoot statistics, histograms, the
droops-per-1K metric) via :func:`diff_measurements`, which reports the
exact field on failure.
"""

import pytest

from repro.measurement.cache import ResultCache
from repro.measurement.campaign import MeasurementCampaign
from repro.measurement.record import diff_measurements

SUBSET = ("mcf", "namd", "sphinx")
PARSEC_SUBSET = ("canneal",)


def _assert_runs_identical(runs_a, runs_b):
    assert len(runs_a) == len(runs_b)
    for a, b in zip(runs_a, runs_b):
        diffs = diff_measurements(a, b)
        assert not diffs, (
            f"{a.spec.label}: measurements differ:\n  " + "\n  ".join(diffs)
        )


def _protocol(campaign):
    """The scaled-down 881-run protocol: ST + MT + pairing sweep."""
    return campaign.all_runs(SUBSET, PARSEC_SUBSET)


@pytest.mark.parametrize("seed", [0, 7, 123])
class TestSerialVsParallel:
    def test_quick_pairing_sweep_bit_identical(self, seed):
        serial = MeasurementCampaign(
            "Proc100", n_cycles=2000, seed=seed, jobs=1
        )
        parallel = MeasurementCampaign(
            "Proc100", n_cycles=2000, seed=seed, jobs=4
        )
        _assert_runs_identical(_protocol(serial), _protocol(parallel))

    def test_parallel_matches_across_configs(self, seed):
        serial = MeasurementCampaign("Proc3", n_cycles=2000, seed=seed, jobs=1)
        parallel = MeasurementCampaign(
            "Proc3", n_cycles=2000, seed=seed, jobs=2
        )
        _assert_runs_identical(
            serial.multiprogram_runs(SUBSET),
            parallel.multiprogram_runs(SUBSET),
        )


class TestColdVsWarmCache:
    def test_warm_replay_bit_identical(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = MeasurementCampaign(
            "Proc100", n_cycles=2000, seed=0,
            jobs=1, cache=ResultCache(cache_dir),
        )
        cold_runs = _protocol(cold)
        assert cold.executor.stats.simulated == len(cold_runs)

        warm = MeasurementCampaign(
            "Proc100", n_cycles=2000, seed=0,
            jobs=1, cache=ResultCache(cache_dir),
        )
        warm_runs = _protocol(warm)
        assert warm.executor.stats.simulated == 0, (
            "warm cache must serve every run without re-simulating"
        )
        _assert_runs_identical(cold_runs, warm_runs)

    def test_warm_parallel_replay_bit_identical(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = MeasurementCampaign(
            "Proc100", n_cycles=2000, seed=9,
            jobs=2, cache=ResultCache(cache_dir),
        )
        cold_runs = cold.multiprogram_runs(SUBSET)
        warm = MeasurementCampaign(
            "Proc100", n_cycles=2000, seed=9,
            jobs=2, cache=ResultCache(cache_dir),
        )
        warm_runs = warm.multiprogram_runs(SUBSET)
        assert warm.executor.stats.simulated == 0
        _assert_runs_identical(cold_runs, warm_runs)

    def test_uncached_matches_cached(self, tmp_path):
        plain = MeasurementCampaign("Proc100", n_cycles=2000, seed=4, jobs=1)
        cached = MeasurementCampaign(
            "Proc100", n_cycles=2000, seed=4,
            jobs=1, cache=ResultCache(tmp_path / "cache"),
        )
        _assert_runs_identical(
            plain.single_threaded_runs(SUBSET),
            cached.single_threaded_runs(SUBSET),
        )

    def test_different_seeds_never_share_entries(self, tmp_path):
        cache_dir = tmp_path / "cache"
        a = MeasurementCampaign(
            "Proc100", n_cycles=2000, seed=0,
            jobs=1, cache=ResultCache(cache_dir),
        )
        a.single_threaded_runs(SUBSET)
        b = MeasurementCampaign(
            "Proc100", n_cycles=2000, seed=1,
            jobs=1, cache=ResultCache(cache_dir),
        )
        b.single_threaded_runs(SUBSET)
        assert b.executor.stats.cache.hits == 0
        assert b.executor.stats.simulated == len(SUBSET)
