"""Unit tests for droop/overshoot excursion detection."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measurement.droops import (
    detect_droops,
    detect_overshoots,
    droop_samples_per_1k,
)
from repro.pdn.simulate import VoltageTrace


def trace_from_deviations(deviations, nominal=1.0):
    return VoltageTrace(
        nominal * (1.0 + np.asarray(deviations)), 1e-9, nominal
    )


class TestDetectDroops:
    def test_counts_distinct_excursions(self):
        dev = np.zeros(1000)
        dev[100:120] = -0.03
        dev[500:510] = -0.05
        stats = detect_droops(trace_from_deviations(dev), threshold=0.02)
        assert stats.count == 2
        assert sorted(np.round(stats.depths, 3)) == [0.03, 0.05]

    def test_durations_recorded(self):
        dev = np.zeros(1000)
        dev[100:150] = -0.04
        stats = detect_droops(trace_from_deviations(dev), threshold=0.02)
        assert stats.durations[0] == pytest.approx(50, abs=2)

    def test_hysteresis_merges_ringing(self):
        """Dips separated by partial recovery count as one excursion."""
        dev = np.zeros(1000)
        dev[100:110] = -0.05
        dev[110:115] = -0.015  # above enter (0.02) but below exit (0.012)
        dev[115:125] = -0.05
        stats = detect_droops(trace_from_deviations(dev), threshold=0.02)
        assert stats.count == 1

    def test_no_droops_in_flat_trace(self):
        stats = detect_droops(trace_from_deviations(np.zeros(100)))
        assert stats.count == 0
        assert stats.max_depth() == 0.0  # simlint: disable=HYG001 (exact by construction)

    def test_event_rate_at_margin(self):
        dev = np.zeros(10_000)
        for start in range(0, 10_000, 1000):
            dev[start : start + 10] = -0.03
        dev[5000:5010] = -0.08
        stats = detect_droops(trace_from_deviations(dev), threshold=0.02)
        assert stats.events_deeper_than(0.05) == 1
        assert stats.event_rate(0.025) == pytest.approx(10 / 10_000)

    def test_margin_below_threshold_rejected(self):
        stats = detect_droops(trace_from_deviations(np.zeros(10)), threshold=0.02)
        with pytest.raises(MeasurementError):
            stats.events_deeper_than(0.01)

    def test_excursion_open_at_trace_end(self):
        dev = np.zeros(100)
        dev[90:] = -0.05
        stats = detect_droops(trace_from_deviations(dev), threshold=0.02)
        assert stats.count == 1


class TestDetectOvershoots:
    def test_polarity(self):
        dev = np.zeros(1000)
        dev[100:110] = +0.04
        dev[500:520] = -0.04
        over = detect_overshoots(trace_from_deviations(dev), threshold=0.02)
        droop = detect_droops(trace_from_deviations(dev), threshold=0.02)
        assert over.count == 1
        assert droop.count == 1
        assert over.depths[0] == pytest.approx(0.04)


class TestDroopSamplesPer1k:
    def test_counting(self):
        dev = np.zeros(1000)
        dev[:50] = -0.05
        trace = trace_from_deviations(dev)
        assert droop_samples_per_1k(trace, margin=0.023) == pytest.approx(50.0)

    def test_bad_margin_rejected(self):
        with pytest.raises(MeasurementError):
            droop_samples_per_1k(trace_from_deviations(np.zeros(10)), margin=0)
