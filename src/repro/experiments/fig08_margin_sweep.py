"""Fig. 8 — typical-case improvement vs margin per recovery cost (Proc100).

Paper: each recovery cost has a single-peaked curve with its own optimal
margin; fine-grained recovery (1-10 cycles) tolerates the most aggressive
margins and peaks highest (~21 %), coarse-grained recovery peaks lower
(~13 %) at more relaxed margins; pushing the margin beyond the optimum
collapses performance into the "dead zone" (below the worst-case design).
"""

from __future__ import annotations

from repro.core.resilience import RECOVERY_COSTS, ResilientDesignModel
from repro.experiments.common import ExperimentResult
from repro.experiments.context import (
    get_campaign,
    parsec_names,
    spec_names,
    window_cycles,
)


def build_model(quick: bool, config: str = "Proc100") -> ResilientDesignModel:
    campaign = get_campaign(config, n_cycles=window_cycles(quick))
    runs = campaign.all_runs(spec_names(quick), parsec_names(quick))
    return ResilientDesignModel([r.tail_model() for r in runs])


def run(quick: bool = False, config: str = "Proc100") -> ExperimentResult:
    model = build_model(quick, config)
    result = ExperimentResult(
        experiment_id="Fig. 8",
        title=f"Improvement vs margin per recovery cost ({config})",
        columns=("recovery cost (cycles)", "optimal margin (%)",
                 "peak improvement (%)", "dead zone reached"),
    )
    sweeps = {}
    for cost in RECOVERY_COSTS:
        margins, improvements = model.margin_sweep(cost)
        sweeps[cost] = (margins, improvements)
        optimum = model.optimal_margin(cost)
        dead_zone = bool((improvements < 0).any())
        result.add_row(
            cost,
            100 * optimum.margin,
            100 * optimum.improvement,
            dead_zone,
        )
    result.series["sweeps"] = sweeps
    result.series["model"] = model
    result.notes.append(
        "paper (Proc100): gains between ~13% and ~21%, one peak per cost, "
        "aggressive margins beyond the optimum fall into the dead zone"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=True).format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
