"""Passive circuit elements and complex-impedance algebra.

These are the building blocks of the lumped power-delivery-network model.
Each element knows its complex impedance at a given angular frequency;
:func:`series` and :func:`parallel` combine impedance arrays so the ladder
network in :mod:`repro.pdn.network` can compute its driving-point impedance
analytically (used by Fig. 4's impedance-profile reproduction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


def _require_positive(name: str, value: float) -> None:
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


def _require_non_negative(name: str, value: float) -> None:
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")


@dataclass(frozen=True)
class Resistor:
    """An ideal resistor.

    Parameters
    ----------
    resistance:
        Resistance in ohms; must be non-negative (zero models an ideal wire).
    """

    resistance: float

    def __post_init__(self) -> None:
        _require_non_negative("resistance", self.resistance)

    def impedance(self, omega: np.ndarray | float) -> np.ndarray:
        """Complex impedance at angular frequency ``omega`` (rad/s)."""
        omega = np.asarray(omega, dtype=float)
        return self.resistance + 0j * omega


@dataclass(frozen=True)
class Inductor:
    """An ideal inductor with optional series resistance (ESR)."""

    inductance: float
    esr: float = 0.0

    def __post_init__(self) -> None:
        _require_positive("inductance", self.inductance)
        _require_non_negative("esr", self.esr)

    def impedance(self, omega: np.ndarray | float) -> np.ndarray:
        """Complex impedance ``esr + j*omega*L``."""
        omega = np.asarray(omega, dtype=float)
        return self.esr + 1j * omega * self.inductance


@dataclass(frozen=True)
class Capacitor:
    """An ideal capacitor with optional equivalent series resistance.

    A capacitor's impedance magnitude falls as ``1/(omega*C)`` until the ESR
    floor; decoupling banks exploit this to short high-frequency current
    transients to ground before they reach the die.
    """

    capacitance: float
    esr: float = 0.0

    def __post_init__(self) -> None:
        _require_positive("capacitance", self.capacitance)
        _require_non_negative("esr", self.esr)

    def impedance(self, omega: np.ndarray | float) -> np.ndarray:
        """Complex impedance ``esr + 1/(j*omega*C)``.

        ``omega`` must be strictly positive; DC impedance of an ideal
        capacitor is unbounded.
        """
        omega = np.asarray(omega, dtype=float)
        if np.any(omega <= 0):
            raise ConfigurationError("capacitor impedance requires omega > 0")
        return self.esr + 1.0 / (1j * omega * self.capacitance)

    def scaled(self, fraction: float) -> "Capacitor":
        """Return a copy with ``fraction`` of the capacitance remaining.

        Removing decoupling capacitors from a bank divides the total
        capacitance by the removed fraction and multiplies the effective ESR
        (parallel resistances) by the same factor, which is exactly how the
        paper's Proc100 → Proc3 processors are derived from one another.
        """
        _require_positive("fraction", fraction)
        return Capacitor(
            capacitance=self.capacitance * fraction,
            esr=self.esr / fraction,
        )


def series(*impedances: np.ndarray | complex) -> np.ndarray:
    """Combine impedances in series (plain sum)."""
    if not impedances:
        raise ConfigurationError("series() requires at least one impedance")
    total = np.asarray(impedances[0], dtype=complex)
    for z in impedances[1:]:
        total = total + np.asarray(z, dtype=complex)
    return total


def parallel(*impedances: np.ndarray | complex) -> np.ndarray:
    """Combine impedances in parallel (reciprocal of summed admittances)."""
    if not impedances:
        raise ConfigurationError("parallel() requires at least one impedance")
    admittance = np.zeros_like(np.asarray(impedances[0], dtype=complex))
    for z in impedances:
        admittance = admittance + 1.0 / np.asarray(z, dtype=complex)
    return 1.0 / admittance
