"""Unit tests for scheduling policies."""

import pytest

from repro.core.policies import (
    DroopPolicy,
    HybridPolicy,
    IPCPolicy,
    RandomPolicy,
    SPECratePolicy,
)
from repro.errors import ConfigurationError, SchedulingError


class FakeOracle:
    """Deterministic oracle for policy unit tests."""

    def __init__(self):
        self.droops = {("a", "b"): 1.0, ("a", "c"): 4.0}
        self.ipcs = {("a", "b"): 2.0, ("a", "c"): 3.0}

    def droop_metric(self, a, b):
        return self.droops[(a, b)]

    def ipc_metric(self, a, b):
        return self.ipcs[(a, b)]


class TestDroopPolicy:
    def test_prefers_fewer_droops(self):
        oracle = FakeOracle()
        policy = DroopPolicy()
        assert policy.score("a", "b", oracle) > policy.score("a", "c", oracle)


class TestIPCPolicy:
    def test_prefers_throughput(self):
        oracle = FakeOracle()
        policy = IPCPolicy()
        assert policy.score("a", "c", oracle) > policy.score("a", "b", oracle)


class TestHybridPolicy:
    def test_zero_exponent_is_pure_ipc(self):
        oracle = FakeOracle()
        policy = HybridPolicy(0.0)
        assert policy.score("a", "c", oracle) > policy.score("a", "b", oracle)

    def test_large_exponent_weighs_droops(self):
        oracle = FakeOracle()
        policy = HybridPolicy(4.0)
        assert policy.score("a", "b", oracle) > policy.score("a", "c", oracle)

    def test_exponent_grows_with_recovery_cost(self):
        fine = HybridPolicy.for_recovery_cost(1)
        coarse = HybridPolicy.for_recovery_cost(100_000)
        assert coarse.exponent > fine.exponent

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HybridPolicy(-1.0)
        with pytest.raises(ConfigurationError):
            HybridPolicy.for_recovery_cost(0)


class TestRandomPolicy:
    def test_deterministic_with_seed(self):
        oracle = FakeOracle()
        a = RandomPolicy(seed=1)
        b = RandomPolicy(seed=1)
        assert [a.score("a", "b", oracle) for _ in range(5)] == [
            b.score("a", "b", oracle) for _ in range(5)
        ]


class TestSPECratePolicy:
    def test_rejects_cross_pairs(self):
        with pytest.raises(SchedulingError):
            SPECratePolicy().score("a", "b", FakeOracle())

    def test_accepts_self_pairs(self):
        assert SPECratePolicy().score("a", "a", FakeOracle()) == 0.0  # simlint: disable=HYG001 (exact by construction)
