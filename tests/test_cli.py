"""Unit tests for the experiment CLI."""

import pytest

from repro.cli import DESCRIPTIONS, EXPERIMENTS, main


class TestCli:
    def test_every_experiment_described(self):
        assert set(EXPERIMENTS) == set(DESCRIPTIONS)

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for alias in EXPERIMENTS:
            assert alias in out

    def test_run_one(self, capsys):
        assert main(["run", "fig01"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert "finished in" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_aliases_resolve_to_modules(self):
        import importlib

        for name in EXPERIMENTS.values():
            importlib.import_module(f"repro.experiments.{name}")


class TestExecutionFlags:
    def test_jobs_and_cache_dir_configure_context(self, tmp_path, capsys):
        from repro.experiments import context

        assert main([
            "run", "fig01",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cli-cache"),
        ]) == 0
        assert context.execution_jobs() == 2
        cache = context.shared_cache()
        assert cache is not None
        assert cache.directory == tmp_path / "cli-cache"

    def test_no_cache_flag(self, capsys):
        from repro.experiments import context

        assert main(["run", "fig01", "--no-cache"]) == 0
        assert context.shared_cache() is None

    def test_stats_line_printed_after_campaign_run(self, tmp_path, capsys):
        # fig15 runs a real campaign (fig01 is analytic), so the executor
        # summary line must appear.
        assert main([
            "run", "fig15", "--cache-dir", str(tmp_path / "c"),
        ]) == 0
        out = capsys.readouterr().out
        assert "[executor]" in out
        assert "cache:" in out

    def test_warm_cache_rerun_skips_simulation(self, tmp_path, capsys):
        args = ["run", "fig15", "--cache-dir", str(tmp_path / "c")]
        assert main(args) == 0
        cold = capsys.readouterr().out

        from repro.experiments import context
        context.reset_campaigns()  # simulate a fresh process

        assert main(args) == 0
        warm = capsys.readouterr().out
        assert "0 hits" in cold
        assert " 0 runs simulated" in warm

    def test_fault_flags_configure_context(self, capsys):
        from repro.experiments import context

        assert main([
            "measure", "mcf", "--config", "Proc100", "--cycles", "2000",
            "--no-cache", "--max-retries", "4", "--run-timeout", "30",
            "--inject-faults", "exception:1.0,seed=5",
        ]) == 0
        policy = context.retry_policy()
        assert policy.max_retries == 4
        assert policy.run_timeout == 30.0  # simlint: disable=HYG001 (exact by construction)
        plan = context.fault_plan()
        assert plan is not None
        assert plan.rate("simulate.exception") == 1.0  # simlint: disable=HYG001 (exact by construction)
        out = capsys.readouterr().out
        assert "recovery:" in out  # exception:1.0 forces visible retries

    def test_bad_fault_plan_rejected(self, capsys):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main([
                "measure", "mcf", "--no-cache",
                "--inject-faults", "sigsegv:1.0",
            ])


class TestChaosCommand:
    ARGS = ["chaos", "mcf", "lbm", "--config", "Proc100",
            "--cycles", "2000", "--jobs", "1"]

    def test_recovers_bit_identical(self, capsys):
        assert main(self.ARGS + ["--plan", "exception:0.7,corrupt:1.0"]) == 0
        out = capsys.readouterr().out
        assert "cold pass:" in out
        assert "warm pass:" in out
        assert "bit-identical" in out
        assert "DIVERGED" not in out

    def test_default_plan(self, capsys):
        assert main(self.ARGS) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_disabled_plan_is_an_error(self, capsys):
        assert main(self.ARGS + ["--plan", "off"]) == 2
        assert "nothing to test" in capsys.readouterr().err

    def test_malformed_plan_is_an_error(self, capsys):
        assert main(self.ARGS + ["--plan", "sigsegv:1.0"]) == 2
        assert "chaos:" in capsys.readouterr().err


class TestArenaCommand:
    ARGS = ["arena", "--config", "Proc100", "--cycles", "2000"]

    def test_prints_ranked_markdown_table(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "# Policy arena" in out
        assert "oracle regret" in out
        assert "Oracle optimum:" in out

    def test_json_reruns_are_byte_identical(self, tmp_path, capsys):
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert main(self.ARGS + ["--json", str(first)]) == 0
        assert main(self.ARGS + ["--json", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        assert "wrote scorecards" in capsys.readouterr().out

    def test_jobs_flag_does_not_change_report(self, tmp_path, capsys):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        assert main(self.ARGS + ["--json", str(serial)]) == 0
        assert main(
            self.ARGS + ["--json", str(parallel), "--jobs", "2"]
        ) == 0
        assert serial.read_bytes() == parallel.read_bytes()

    def test_policy_subset_and_markdown_file(self, tmp_path, capsys):
        report = tmp_path / "report.md"
        assert main(
            self.ARGS
            + ["--policies", "droop,random", "--markdown", str(report)]
        ) == 0
        text = report.read_text(encoding="utf-8")
        assert "Droop" in text and "Random" in text
        assert "| 2 |" in text and "| 3 |" not in text

    def test_quad_core_runs(self, capsys):
        assert main(self.ARGS + ["--cores", "4"]) == 0
        assert "4 cores" in capsys.readouterr().out

    def test_unknown_suite_is_an_error(self, capsys):
        assert main(["arena", "--suite", "nope"]) == 2
        assert "arena:" in capsys.readouterr().err

    def test_unknown_policy_is_an_error(self, capsys):
        assert main(self.ARGS + ["--policies", "droop,nope"]) == 2
        assert "unknown policy" in capsys.readouterr().err


class TestUndervoltSweepCommand:
    ARGS = ["undervolt-sweep", "--workloads", "lbm,mcf",
            "--frequencies", "1.66,1.86", "--config", "Proc100",
            "--cycles", "2000", "--jobs", "1"]

    def test_prints_map_and_frontier(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "## Vmin map" in out
        assert "## Energy-efficiency frontier" in out
        assert "runs simulated" in out

    def test_reports_written_and_deterministic(self, tmp_path, capsys):
        payload = tmp_path / "frontier.json"
        report = tmp_path / "frontier.md"
        args = self.ARGS + ["--json", str(payload),
                            "--markdown", str(report)]
        assert main(args) == 0
        first = payload.read_bytes()
        assert report.read_text(encoding="utf-8").startswith(
            "# Undervolt sweep:"
        )
        assert main(args) == 0
        assert payload.read_bytes() == first
        capsys.readouterr()

    def test_probe_recovers_below_vmin(self, capsys):
        assert main(self.ARGS + ["--probe-depth-mv", "40"]) == 0
        out = capsys.readouterr().out
        assert "[probe]" in out
        assert "bit error(s) injected" in out
        assert "recovered bit-identical" in out

    def test_bad_workload_is_an_error(self, capsys):
        assert main(["undervolt-sweep", "--workloads", "nope",
                     "--cycles", "2000"]) == 2
        assert "undervolt-sweep:" in capsys.readouterr().err
