"""Known bug: the worker stamps each record with the wall clock.

A cached result would replay yesterday's timestamp, and two identical
(spec, config, seed) runs never compare bit-equal.  Timing belongs in
the telemetry side-channel, never in the record itself.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List


def stamped_record(index: int) -> Dict[str, float]:
    droop = 0.05 * index
    return {"droop": droop, "at": time.time()}  # expect: TNT001


def run_stamped_suite(indices: List[int]) -> List[Dict[str, float]]:
    with ProcessPoolExecutor() as pool:
        return list(pool.map(stamped_record, indices))
