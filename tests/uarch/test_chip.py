"""Unit tests for the dual-core chip."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.uarch.chip import Chip
from repro.uarch.window import ExecutionWindow
from repro.workloads.microbenchmarks import IdleLoop
from repro.workloads.spec import spec_benchmark

N = 20000


@pytest.fixture(scope="module")
def chip():
    return Chip("Proc100", with_ripple=False)


def idle_window(n=N, seed=0):
    return IdleLoop().sample_window(n, rng=seed)


class TestConstruction:
    def test_defaults(self, chip):
        assert chip.n_cores == 2
        assert chip.config_name == "Proc100"
        assert chip.nominal_voltage == pytest.approx(1.30)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Chip(n_cores=0)
        with pytest.raises(ConfigurationError):
            Chip(uncore_amps=-1)


class TestRun:
    def test_result_shapes(self, chip):
        run = chip.run([idle_window(seed=1), idle_window(seed=2)])
        assert run.n_cycles == N
        assert len(run.cores) == 2
        assert len(run.voltage) == N
        assert run.total_current_amps.shape == (N,)

    def test_missing_windows_idle_the_core(self, chip):
        run = chip.run([spec_benchmark("mcf").sample_window(N, rng=3)])
        assert run.cores[1].label == "(idle)"
        # The idle core draws much less than the busy one.
        assert run.cores[1].current_amps.mean() < run.cores[0].current_amps.mean()

    def test_total_current_is_sum_plus_uncore(self, chip):
        run = chip.run([idle_window(seed=1), idle_window(seed=2)])
        reconstructed = (
            run.cores[0].current_amps + run.cores[1].current_amps + 2.0
        )
        assert np.allclose(run.total_current_amps, reconstructed)

    def test_two_active_cores_draw_more_and_swing_more(self, chip):
        mcf = spec_benchmark("mcf")
        single = chip.run([mcf.sample_window(N, rng=1), idle_window(seed=9)])
        dual = chip.run(
            [mcf.sample_window(N, rng=1), mcf.sample_window(N, rng=2)]
        )
        assert dual.total_current_amps.mean() > single.total_current_amps.mean()
        assert (
            dual.voltage.peak_to_peak_fraction()
            > 0.9 * single.voltage.peak_to_peak_fraction()
        )

    def test_rejects_mismatched_lengths(self, chip):
        with pytest.raises(SimulationError):
            chip.run([idle_window(n=100), idle_window(n=200)])

    def test_rejects_too_many_windows(self, chip):
        with pytest.raises(SimulationError):
            chip.run([idle_window(), idle_window(), idle_window()])

    def test_rejects_all_none(self, chip):
        with pytest.raises(SimulationError):
            chip.run([None, None])

    def test_aggregate_counters(self, chip):
        run = chip.run(
            [spec_benchmark("mcf").sample_window(N, rng=1), idle_window(seed=2)]
        )
        total = run.aggregate_counters()
        assert total.cycles == 2 * N
        assert total.instructions == pytest.approx(
            run.counters(0).instructions + run.counters(1).instructions
        )

    def test_deterministic_given_seed(self):
        chip = Chip("Proc100", with_ripple=True)
        mcf = spec_benchmark("mcf")
        a = chip.run([mcf.sample_window(N, rng=5), idle_window(seed=6)], seed=7)
        b = chip.run([mcf.sample_window(N, rng=5), idle_window(seed=6)], seed=7)
        assert np.array_equal(a.voltage.samples, b.voltage.samples)

    def test_depleted_config_swings_more(self):
        mcf = spec_benchmark("mcf")
        w0, w1 = mcf.sample_window(N, rng=1), mcf.sample_window(N, rng=2)
        stock = Chip("Proc100", with_ripple=False).run([w0, w1])
        depleted = Chip("Proc3", with_ripple=False).run([w0, w1])
        assert (
            depleted.voltage.peak_to_peak_fraction()
            > stock.voltage.peak_to_peak_fraction()
        )
