"""The dual-core chip: cores on a shared power supply.

Both cores of the Core 2 Duo share one power delivery network (the paper
studies off-chip VRMs, the widespread design), so current edges from either
core superimpose on the same supply — the root of the cross-core
constructive/destructive interference of Sec. III-C and the reason a
voltage emergency anywhere forces a *global* recovery.

:class:`Chip` sums per-core current with an uncore floor and pushes the
total through the PDN transient simulator, yielding the chip-wide voltage
trace that all characterization and scheduling experiments consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro import observability as obs
from repro.errors import ConfigurationError, SimulationError
from repro.pdn import platform
from repro.pdn.decap import DecapConfiguration
from repro.pdn.simulate import VoltageTrace
from repro.random_utils import SeedLike, derive_generator
from repro.uarch.core import Core, CoreExecution, CoreParameters
from repro.uarch.counters import PerformanceCounters
from repro.uarch.window import ExecutionWindow

#: Current drawn by shared structures (L2, bus interface) irrespective of
#: core activity.
DEFAULT_UNCORE_AMPS = 2.0

#: Activity level of a hardware-idle core (the OS idle loop keeps a core
#: lightly busy even when nothing is scheduled on it).
IDLE_CORE_ACTIVITY = 0.03

#: Shared-resource slack pickup: when one core stalls, its claim on the
#: shared L2/bus frees up and an *actively running* sibling speeds up.
#: This coupling is the physical source of destructive interference — the
#: sibling's current rise partially fills the staller's current drop — and
#: what a noise-aware scheduler exploits (Sec. IV-B).
SLACK_PICKUP_COUPLING = 0.35

#: A sibling only picks up slack while it is actually executing.
SLACK_PICKUP_GATE = 0.30


@dataclass(frozen=True)
class ChipRun:
    """The outcome of running one multi-core window on the chip."""

    voltage: VoltageTrace
    cores: Tuple[CoreExecution, ...]
    total_current_amps: np.ndarray
    config_name: str

    @property
    def n_cycles(self) -> int:
        return int(self.total_current_amps.size)

    def counters(self, core_index: int) -> PerformanceCounters:
        return self.cores[core_index].counters

    def aggregate_counters(self) -> PerformanceCounters:
        """Chip-wide counter totals (cycles stay per-core, i.e. one window)."""
        merged = self.cores[0].counters
        for execution in self.cores[1:]:
            merged = merged.merged_with(execution.counters)
        return merged


class Chip:
    """An N-core processor on one decap configuration.

    Parameters
    ----------
    config:
        Decap configuration (``"Proc100"`` … ``"Proc0"`` or a
        :class:`~repro.pdn.decap.DecapConfiguration`).
    n_cores:
        Number of cores sharing the supply (the paper's machine has 2).
    core_parameters:
        Electrical calibration shared by all cores.
    platform_parameters:
        PDN calibration; defaults to the reference platform.
    with_ripple:
        Superimpose VRM switching ripple (on for realism, off for clean
        analytical experiments).
    """

    def __init__(
        self,
        config: DecapConfiguration | str = "Proc100",
        n_cores: int = 2,
        core_parameters: Optional[CoreParameters] = None,
        platform_parameters: platform.PlatformParameters = platform.DEFAULT_PARAMETERS,
        uncore_amps: float = DEFAULT_UNCORE_AMPS,
        with_ripple: bool = True,
        slack_coupling: float = SLACK_PICKUP_COUPLING,
    ) -> None:
        if n_cores < 1:
            raise ConfigurationError("n_cores must be >= 1")
        if uncore_amps < 0:
            raise ConfigurationError("uncore_amps must be non-negative")
        if not 0 <= slack_coupling < 1:
            raise ConfigurationError("slack_coupling must be in [0, 1)")
        self._config_name = config if isinstance(config, str) else config.name
        self._simulator = platform.build_simulator(
            config, platform_parameters, with_ripple=with_ripple
        )
        self._cores = tuple(
            Core(core_parameters, core_id=i) for i in range(n_cores)
        )
        self._uncore_amps = float(uncore_amps)
        self._slack_coupling = float(slack_coupling)

    @property
    def n_cores(self) -> int:
        return len(self._cores)

    @property
    def config_name(self) -> str:
        return self._config_name

    @property
    def nominal_voltage(self) -> float:
        return self._simulator.network.nominal_voltage

    @property
    def simulator(self):
        return self._simulator

    def _apply_slack_coupling(
        self,
        activities: np.ndarray,
        windows: Sequence[ExecutionWindow],
    ) -> np.ndarray:
        """Let active cores pick up a stalled sibling's shared-resource slack.

        Each core's *deficit* is how far its realized activity has fallen
        below its own program's nominal level.  A fraction of the mean
        sibling deficit is added to every core that is actively running
        (above :data:`SLACK_PICKUP_GATE`).  When one core stalls while the
        other runs, the other's current rises — damping the chip-wide
        current swing (destructive interference).  When both stall
        together (aligned bursts, barriers, SPECrate phase alignment),
        nobody can pick up the slack and the full swing goes through
        (constructive interference).

        ``activities`` is the (n_cores, n_cycles) realized-activity
        matrix; a coupled copy is returned (or the input when coupling
        is off or the chip has one core).
        """
        n = activities.shape[0]
        if self._slack_coupling == 0 or n < 2:
            return activities
        from repro.uarch.activity import MAX_ACTIVITY

        nominal = np.array([w.baseline_activity.mean() for w in windows])
        deficits = np.maximum(0.0, nominal[:, None] - activities)
        adjusted = np.empty_like(activities)
        for i in range(n):
            sibling_deficit = np.mean(
                deficits[np.arange(n) != i], axis=0
            )
            pickup = (
                self._slack_coupling
                * sibling_deficit
                * (activities[i] > SLACK_PICKUP_GATE)
            )
            adjusted[i] = np.clip(
                activities[i] + pickup, 0.0, MAX_ACTIVITY
            )
        return adjusted

    def _idle_window(self, n_cycles: int) -> ExecutionWindow:
        return ExecutionWindow(
            baseline_activity=np.full(n_cycles, IDLE_CORE_ACTIVITY),
            events=[],
            base_ipc=0.3,
            label="(idle)",
        )

    def _prepare(
        self, windows: Sequence[Optional[ExecutionWindow]]
    ) -> Tuple[list, int]:
        """Validate one run's windows and pad idle cores."""
        if len(windows) > self.n_cores:
            raise SimulationError(
                f"{len(windows)} windows for {self.n_cores} cores"
            )
        concrete = [w for w in windows if w is not None]
        if not concrete:
            raise SimulationError("at least one core must run a workload")
        n_cycles = concrete[0].n_cycles
        if any(w.n_cycles != n_cycles for w in concrete):
            raise SimulationError("all windows must have the same length")

        padded: list[ExecutionWindow] = []
        for i in range(self.n_cores):
            window = windows[i] if i < len(windows) else None
            padded.append(window if window is not None else self._idle_window(n_cycles))
        return padded, n_cycles

    def _coupled_activities(
        self, padded: Sequence[ExecutionWindow]
    ) -> np.ndarray:
        """Realized, slack-coupled activity — one (n_cores, T) matrix."""
        activities = np.stack([
            core.realize_activity(window)
            for core, window in zip(self._cores, padded)
        ])
        return self._apply_slack_coupling(activities, padded)

    def run(
        self,
        windows: Sequence[Optional[ExecutionWindow]],
        seed: SeedLike = None,
    ) -> ChipRun:
        """Run one window per core and return the chip-wide result.

        ``windows`` supplies one :class:`ExecutionWindow` per core
        (``None`` idles that core); fewer entries than cores idles the
        rest.  All windows must be the same length.
        """
        padded, n_cycles = self._prepare(windows)
        with obs.span(
            "chip.run", config=self._config_name, cycles=int(n_cycles)
        ):
            obs.increment("repro_chip_runs_total")
            obs.increment("repro_chip_cycles_total", int(n_cycles))
            activities = self._coupled_activities(padded)
            executions = tuple(
                self._cores[0].finalize_batch(padded, activities)
            )
            total_current = self._uncore_amps + sum(
                execution.current_amps for execution in executions
            )
            ripple_rng = derive_generator(seed, "vrm", self._config_name)
            voltage = self._simulator.simulate(total_current, seed=ripple_rng)
        return ChipRun(
            voltage=voltage,
            cores=executions,
            total_current_amps=total_current,
            config_name=self._config_name,
        )

    def run_batch(
        self,
        window_groups: Sequence[Sequence[Optional[ExecutionWindow]]],
        seeds: Optional[Sequence[SeedLike]] = None,
    ) -> list:
        """Run many multi-core window groups through one batched solve.

        The per-core slow-gating EMA of *every* run is computed by a
        single ``lfilter`` call over a stacked activity matrix, and all
        runs' total-current traces go through the PDN in one batched
        ``sosfilt`` (see ``TransientSimulator.simulate_batch``).  Each
        returned :class:`ChipRun` is bit-identical to what :meth:`run`
        produces for the same windows and seed — pinned by the batching
        equivalence tests.  All runs must share one window length.

        This is the uninstrumented fast path: it emits no per-run
        tracing spans (metric counters are still incremented), so the
        executor only routes runs here when observability is disabled.
        """
        if seeds is None:
            seeds = [None] * len(window_groups)
        if len(seeds) != len(window_groups):
            raise SimulationError("one seed per window group required")
        prepared = [self._prepare(windows) for windows in window_groups]
        if len({n_cycles for _, n_cycles in prepared}) > 1:
            raise SimulationError(
                "all batched runs must have the same window length"
            )
        coupled = [
            self._coupled_activities(padded) for padded, _ in prepared
        ]
        # One EMA filter over every core of every run at once.
        currents = self._cores[0].current_from_activity(np.vstack(coupled))
        n_cores = self.n_cores
        executions = [
            tuple(self._cores[0].finalize_batch(
                padded,
                coupled[index],
                currents=currents[index * n_cores:(index + 1) * n_cores],
            ))
            for index, (padded, _) in enumerate(prepared)
        ]
        totals = [
            self._uncore_amps + sum(
                execution.current_amps for execution in cores
            )
            for cores in executions
        ]
        ripple_rngs = [
            derive_generator(seed, "vrm", self._config_name)
            for seed in seeds
        ]
        voltages = self._simulator.simulate_batch(
            np.stack(totals), seeds=ripple_rngs
        )
        for _, n_cycles in prepared:
            obs.increment("repro_chip_runs_total")
            obs.increment("repro_chip_cycles_total", int(n_cycles))
        return [
            ChipRun(
                voltage=voltages[index],
                cores=executions[index],
                total_current_amps=totals[index],
                config_name=self._config_name,
            )
            for index in range(len(prepared))
        ]
