"""Fixture: a module the flow engine must report zero findings for."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List

from repro import units
from repro.random_utils import as_generator

LINE_RESISTANCE_OHMS = 4.0 * units.MILLI_OHM
BULK_CAPACITANCE_FARADS = 220.0 * units.MICRO_FARAD


def time_constant_seconds(
    resistance_ohms: float, capacitance_farads: float
) -> float:
    return resistance_ohms * capacitance_farads


def corner_frequency_hz(period_seconds: float) -> float:
    return 1.0 / period_seconds


def seeded_worker(seed: int) -> float:
    rng = as_generator(seed)
    return float(rng.random())


def run_campaign(seeds: List[int]) -> List[float]:
    with ProcessPoolExecutor() as pool:
        return list(pool.map(seeded_worker, seeds))


def nominal_tau_seconds() -> float:
    return time_constant_seconds(
        LINE_RESISTANCE_OHMS, BULK_CAPACITANCE_FARADS
    )
