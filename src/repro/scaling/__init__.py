"""Technology-scaling projections (the paper's Figs. 1 and 2).

* :mod:`repro.scaling.itrs` — ITRS-style Vdd scaling across process nodes
  and the projected growth of peak-to-peak voltage swings (Fig. 1),
  computed by re-running the PDN step-response with per-node current
  stimuli at constant power budget.
* :mod:`repro.scaling.ring_oscillator` — an alpha-power-law FO4
  ring-oscillator delay model giving peak clock frequency versus operating
  voltage margin per node (Fig. 2).
"""

from repro.scaling.itrs import (
    TECHNOLOGY_NODES,
    TechnologyNode,
    projected_voltage_swings,
)
from repro.scaling.ring_oscillator import (
    RingOscillatorModel,
    frequency_vs_margin,
)

__all__ = [
    "TECHNOLOGY_NODES",
    "TechnologyNode",
    "projected_voltage_swings",
    "RingOscillatorModel",
    "frequency_vs_margin",
]
