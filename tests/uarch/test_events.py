"""Unit tests for stall events and their profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.uarch.events import (
    EVENT_PROFILES,
    EventProfile,
    StallEvent,
    profile_for,
)


class TestStallEvent:
    def test_all_five_paper_events_exist(self):
        assert {e.label for e in StallEvent} == {"L1", "L2", "TLB", "BR", "EXCP"}

    def test_every_event_has_a_profile(self):
        for event in StallEvent:
            assert profile_for(event) is EVENT_PROFILES[event]


class TestEventProfile:
    def test_footprint_covers_all_segments(self):
        profile = EventProfile(
            stall_cycles=10, drain_cycles=2, refill_cycles=3,
            drop_fraction=0.5, surge_factor=1.2, surge_decay_cycles=5.0,
        )
        assert profile.footprint_cycles == 2 + 10 + 3 + 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"stall_cycles": 0},
            {"drain_cycles": 0},
            {"refill_cycles": 0},
            {"drop_fraction": 0.0},
            {"drop_fraction": 1.5},
            {"surge_factor": 0.9},
            {"surge_decay_cycles": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        base = dict(
            stall_cycles=10, drain_cycles=2, refill_cycles=3,
            drop_fraction=0.5, surge_factor=1.2, surge_decay_cycles=5.0,
        )
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            EventProfile(**base)


class TestCalibration:
    """Relations between profiles that the paper's figures depend on."""

    def test_flush_events_drain_in_one_cycle(self):
        # BR and EXCP flush the pipeline abruptly (sharpest dI/dt).
        assert profile_for(StallEvent.BRANCH_MISPREDICT).drain_cycles == 1
        assert profile_for(StallEvent.EXCEPTION).drain_cycles == 1

    def test_flush_events_drain_completely(self):
        assert profile_for(StallEvent.BRANCH_MISPREDICT).drop_fraction == 1.0  # simlint: disable=HYG001 (exact by construction)
        assert profile_for(StallEvent.EXCEPTION).drop_fraction == 1.0  # simlint: disable=HYG001 (exact by construction)

    def test_l1_miss_is_the_mildest_event(self):
        l1 = profile_for(StallEvent.L1_MISS)
        for event in StallEvent:
            if event is StallEvent.L1_MISS:
                continue
            other = profile_for(event)
            assert l1.drop_fraction <= other.drop_fraction
            assert l1.surge_factor <= other.surge_factor

    def test_memory_hierarchy_latency_ordering(self):
        l1 = profile_for(StallEvent.L1_MISS).stall_cycles
        tlb = profile_for(StallEvent.TLB_MISS).stall_cycles
        l2 = profile_for(StallEvent.L2_MISS).stall_cycles
        assert l1 < tlb < l2

    def test_exception_is_longest_with_largest_energy(self):
        excp = profile_for(StallEvent.EXCEPTION)
        assert excp.stall_cycles == max(
            profile_for(e).stall_cycles for e in StallEvent
        )
        # Deep-drop duration x surge: the exception carries the most
        # charge displacement of any single event.
        def energy(e):
            p = profile_for(e)
            return p.drop_fraction * p.stall_cycles * p.surge_factor

        assert energy(StallEvent.EXCEPTION) == max(
            energy(e) for e in StallEvent
        )
