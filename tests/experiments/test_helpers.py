"""Unit tests for experiment-module helper functions."""

import numpy as np
import pytest

from repro.experiments.context import (
    QUICK_PARSEC_SUBSET,
    QUICK_SPEC_SUBSET,
    get_campaign,
    parsec_names,
    spec_names,
    window_cycles,
)
from repro.experiments.fig04_impedance import loop_reconstructed_impedance
from repro.experiments.fig10_heatmaps import coarsest_cost_for_target
from repro.pdn.impedance import ImpedanceProfile
from repro.pdn.platform import build_network


class TestContext:
    def test_quick_subsets_are_valid_names(self):
        from repro.workloads.parsec import PARSEC
        from repro.workloads.spec import SPEC_CPU2006

        assert set(QUICK_SPEC_SUBSET) <= set(SPEC_CPU2006)
        assert set(QUICK_PARSEC_SUBSET) <= set(PARSEC)

    def test_quick_subset_spans_noise_spectrum(self):
        """The quick subset must include both memory-bound and
        compute-dense programs or the quick sweeps lose their contrast."""
        assert {"mcf", "lbm"} & set(QUICK_SPEC_SUBSET)
        assert {"namd", "povray"} & set(QUICK_SPEC_SUBSET)

    def test_name_helpers(self):
        assert spec_names(quick=True) == QUICK_SPEC_SUBSET
        assert len(spec_names(quick=False)) == 29
        assert parsec_names(quick=True) == QUICK_PARSEC_SUBSET
        assert len(parsec_names(quick=False)) == 11
        assert window_cycles(True) < window_cycles(False)

    def test_campaign_cache_shared(self):
        a = get_campaign("Proc100", n_cycles=12_000, seed=0)
        b = get_campaign("Proc100", n_cycles=12_000, seed=0)
        assert a is b
        c = get_campaign("Proc3", n_cycles=12_000, seed=0)
        assert c is not a


class TestFig04Helper:
    def test_loop_reconstruction_matches_analytic(self):
        """The software-loop |Z| reconstruction tracks the ladder closely
        (this is the validation the paper does against Intel data)."""
        freqs = np.array([5e5, 2e6])
        reconstructed = loop_reconstructed_impedance(freqs, n_cycles=60_000)
        profile = ImpedanceProfile.from_network(build_network("Proc100"))
        analytic = np.array([profile.at(float(f)) for f in freqs])
        assert np.all(np.abs(reconstructed / analytic - 1.0) < 0.25)


class TestFig10Helper:
    def test_coarsest_cost_for_target(self):
        margins = np.linspace(0.02, 0.14, 5)
        costs = np.array([1.0, 100.0, 10_000.0])
        grid = np.array([
            [0.20, 0.18, 0.16, 0.14, 0.12],   # cost 1: hits 15%
            [0.16, 0.15, 0.12, 0.10, 0.08],   # cost 100: hits 15%
            [0.10, 0.08, 0.05, 0.02, 0.00],   # cost 10k: misses
        ])
        assert coarsest_cost_for_target(margins, costs, grid, 0.15) == 100.0  # simlint: disable=HYG001 (exact by construction)

    def test_no_feasible_cost(self):
        margins = np.linspace(0.02, 0.14, 3)
        costs = np.array([1.0])
        grid = np.array([[0.05, 0.04, 0.03]])
        assert coarsest_cost_for_target(margins, costs, grid, 0.15) == 0.0  # simlint: disable=HYG001 (exact by construction)
