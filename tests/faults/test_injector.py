"""The fault injector: deterministic decisions, actions, accounting."""

import pytest

from repro import observability as obs
from repro.faults import (
    BitErrorFault,
    FaultInjector,
    InjectedFault,
    garble_file,
    parse_plan,
)

ALL_SITES_ON = "crash:1.0,hang:1.0,exception:1.0,corrupt:1.0,corrupt-read:1.0"


class TestDecisions:
    def test_same_plan_same_decisions(self):
        spec = "crash:0.3,corrupt:0.6,seed=11"
        a, b = FaultInjector(spec), FaultInjector(spec)
        decisions_a = [
            a.fires(site, key, occurrence)
            for site in ("worker.crash", "cache.store")
            for key in ("mcf@Proc3", "lbm@Proc3", "deadbeef")
            for occurrence in range(4)
        ]
        decisions_b = [
            b.fires(site, key, occurrence)
            for site in ("worker.crash", "cache.store")
            for key in ("mcf@Proc3", "lbm@Proc3", "deadbeef")
            for occurrence in range(4)
        ]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_decisions_are_order_independent(self):
        spec = "crash:0.5,seed=4"
        forward = FaultInjector(spec)
        backward = FaultInjector(spec)
        keys = [f"run{i}" for i in range(16)]
        want = {
            key: forward.fires("worker.crash", key, 0) for key in keys
        }
        got = {
            key: backward.fires("worker.crash", key, 0)
            for key in reversed(keys)
        }
        assert got == want

    def test_seed_changes_the_pattern(self):
        keys = [f"run{i}" for i in range(64)]
        one = FaultInjector("crash:0.5,seed=1")
        two = FaultInjector("crash:0.5,seed=2")
        pattern_one = [one.fires("worker.crash", k, 0) for k in keys]
        pattern_two = [two.fires("worker.crash", k, 0) for k in keys]
        assert pattern_one != pattern_two

    def test_rate_zero_never_fires(self):
        injector = FaultInjector("crash:0.0,hang:1.0")
        assert not any(
            injector.fires("worker.crash", f"run{i}", 0) for i in range(50)
        )

    def test_rate_one_always_fires(self):
        injector = FaultInjector("crash:1.0")
        assert all(
            injector.fires("worker.crash", f"run{i}", 0) for i in range(10)
        )

    def test_unplanned_site_never_fires(self):
        injector = FaultInjector("crash:1.0")
        assert not injector.fires("cache.store", "key", 0)

    def test_implicit_occurrence_counts_per_key(self):
        # Auto-counted occurrences must reproduce explicit 0, 1, 2, ...
        spec = "corrupt:0.5,seed=7"
        implicit = FaultInjector(spec)
        explicit = FaultInjector(spec)
        for occurrence in range(6):
            assert implicit.fires("cache.store", "key") == explicit.fires(
                "cache.store", "key", occurrence
            )

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector("off")


class TestActions:
    def test_raise_transient(self):
        injector = FaultInjector("exception:1.0")
        with pytest.raises(InjectedFault):
            injector.raise_transient("mcf@Proc3", 0)

    def test_raise_transient_quiet_when_off(self):
        FaultInjector("crash:1.0").raise_transient("mcf@Proc3", 0)

    def test_hang_worker_counts_and_returns(self):
        injector = FaultInjector("hang:1.0,hang-seconds=0.0")
        injector.hang_worker("mcf@Proc3", 0)
        assert injector.injected["worker.hang"] == 1

    def test_crash_worker_quiet_when_off(self):
        # rate 0 → must NOT call os._exit (the test surviving proves it).
        FaultInjector("hang:1.0").crash_worker("mcf@Proc3", 0)

    def test_garble_file_keeps_entry_but_destroys_content(self, tmp_path):
        victim = tmp_path / "record.json.gz"
        victim.write_bytes(b"\x1f\x8b" + b"x" * 40)
        garble_file(victim)
        assert victim.exists()
        assert not victim.read_bytes().startswith(b"\x1f\x8b")


class TestAccounting:
    def test_summary_counts_fired_faults(self):
        injector = FaultInjector("exception:1.0")
        assert injector.summary() == "no faults injected"
        for attempt in range(3):
            with pytest.raises(InjectedFault):
                injector.raise_transient("mcf@Proc3", attempt)
        assert injector.summary() == "injected simulate.exception x3"
        assert injector.injected == {"simulate.exception": 3}

    def test_fired_decisions_hit_the_metrics_registry(self):
        injector = FaultInjector(ALL_SITES_ON)
        with obs.capture() as session:
            injector.fires("worker.crash", "run0", 0)
            injector.fires("cache.store", "deadbeef", 0)
        assert (
            session.metrics.counter_value(
                "repro_faults_injected_total", site="worker.crash"
            )
            == 1
        )
        assert (
            session.metrics.counter_value(
                "repro_faults_injected_total", site="cache.store"
            )
            == 1
        )

    def test_plan_accessible_and_canonical(self):
        injector = FaultInjector("crash:0.5,seed=3")
        assert injector.plan == parse_plan("crash:0.5,seed=3")


class TestBitErrors:
    DEEP = "biterror:1.0,undervolt-depth=0.2"

    def test_fault_type_travels_the_retry_path(self):
        assert issubclass(BitErrorFault, InjectedFault)

    def test_zero_depth_is_inert_even_at_full_rate(self):
        injector = FaultInjector("biterror:1.0")
        for attempt in range(20):
            injector.bit_error("mcf@Proc3", attempt)
        assert injector.injected == {}

    def test_deep_undervolt_fires_and_renders_the_flip(self):
        injector = FaultInjector(self.DEEP)
        with pytest.raises(BitErrorFault) as excinfo:
            injector.bit_error("mcf@Proc3", 0)
        message = str(excinfo.value)
        assert "bit" in message and "flipped" in message
        assert "200 mV below Vmin" in message
        assert injector.injected["vmin.biterror"] == 1

    def test_decisions_are_deterministic_across_injectors(self):
        def decisions(injector):
            outcome = []
            for attempt in range(8):
                try:
                    injector.bit_error("lbm@Proc3", attempt)
                    outcome.append(None)
                except BitErrorFault as fault:
                    outcome.append(str(fault))
            return outcome

        first = decisions(FaultInjector(self.DEEP))
        assert first == decisions(FaultInjector(self.DEEP))
        assert any(first)  # 86% per-decision rate: some attempts fire

    def test_rate_scales_with_depth(self):
        shallow = FaultInjector("biterror:1.0,undervolt-depth=0.001")
        fired = 0
        for attempt in range(200):
            try:
                shallow.bit_error("mcf@Proc3", attempt)
            except BitErrorFault:
                fired += 1
        # ~4% per decision at 1 mV depth: far fewer than the deep plan's
        # ~100 %, but the curve is live (not the zero-depth short-circuit).
        assert 0 < fired < 50


class TestScaledDecisions:
    def test_zero_probability_never_fires(self):
        injector = FaultInjector(ALL_SITES_ON)
        assert not any(
            injector.fires_scaled("worker.crash", "run0", 0.0, attempt)
            for attempt in range(50)
        )
        assert injector.injected == {}

    def test_full_probability_always_fires(self):
        injector = FaultInjector(ALL_SITES_ON)
        assert all(
            injector.fires_scaled("worker.crash", "run0", 1.0, attempt)
            for attempt in range(10)
        )

    def test_fires_delegates_to_the_scaled_stream(self):
        # Same plan seed → the draw is fixed; fires() is just
        # fires_scaled() at the plan rate, so both agree decision by
        # decision.
        a = FaultInjector("exception:0.4,seed=7")
        b = FaultInjector("exception:0.4,seed=7")
        for attempt in range(32):
            assert a.fires(
                "simulate.exception", "run0", attempt
            ) == b.fires_scaled(
                "simulate.exception", "run0", 0.4, attempt
            )

    def test_omitted_occurrence_counts_per_site_and_key(self):
        injector = FaultInjector("corrupt:1.0")
        assert injector.fires("cache.store", "record")
        assert injector.fires("cache.store", "record")
        assert injector.injected["cache.store"] == 2
