"""Unit tests for the ring-oscillator margin/frequency model (Fig. 2)."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scaling.itrs import node_by_name
from repro.scaling.ring_oscillator import (
    RingOscillatorModel,
    frequency_vs_margin,
)


class TestRingOscillatorModel:
    def test_zero_margin_is_unity(self):
        model = RingOscillatorModel(node_by_name("45nm"))
        assert model.relative_frequency(0.0) == pytest.approx(1.0)

    def test_frequency_falls_with_margin(self):
        model = RingOscillatorModel(node_by_name("45nm"))
        values = [model.relative_frequency(m) for m in (0.0, 0.1, 0.2, 0.3)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_paper_calibration_point(self):
        """20% margin at 45 nm costs ~25% of peak frequency."""
        model = RingOscillatorModel(node_by_name("45nm"))
        loss = 1.0 - model.relative_frequency(0.20)
        assert 0.18 <= loss <= 0.30

    def test_low_vdd_node_hit_harder(self):
        hi = RingOscillatorModel(node_by_name("45nm"))
        lo = RingOscillatorModel(node_by_name("16nm"))
        assert lo.relative_frequency(0.25) < hi.relative_frequency(0.25)

    def test_16nm_loses_more_than_half_at_40pct(self):
        """The paper: doubled swings by 16 nm imply >50% frequency loss."""
        model = RingOscillatorModel(node_by_name("16nm"))
        assert model.relative_frequency(0.40) < 0.50

    def test_stops_at_threshold(self):
        model = RingOscillatorModel(node_by_name("16nm"))
        # 0.7 V * (1 - 0.65) = 0.245 V < Vth -> NaN (device stops).
        assert math.isnan(model.relative_frequency(0.65))

    def test_validation(self):
        model = RingOscillatorModel(node_by_name("45nm"))
        with pytest.raises(ConfigurationError):
            model.relative_frequency(-0.1)
        with pytest.raises(ConfigurationError):
            model.stage_delay(0.1)
        with pytest.raises(ConfigurationError):
            RingOscillatorModel(node_by_name("45nm"), alpha=0)


class TestFrequencyVsMargin:
    def test_curves_for_four_nodes(self):
        curves = frequency_vs_margin(np.linspace(0, 0.4, 9))
        assert set(curves) == {"45nm", "32nm", "22nm", "16nm"}
        for values in curves.values():
            assert values.shape == (9,)
            assert values[0] == pytest.approx(100.0)

    def test_node_ordering_preserved_at_every_margin(self):
        margins = np.linspace(0.05, 0.35, 7)
        curves = frequency_vs_margin(margins)
        for i in range(margins.size):
            column = [curves[n][i] for n in ("45nm", "32nm", "22nm", "16nm")]
            assert all(a >= b for a, b in zip(column, column[1:]))
