#!/usr/bin/env python
"""Noise-aware thread scheduling (Sec. IV of the paper).

Builds the pairing oracle on the noisy Proc3 processor, lets each policy
construct a batch schedule from a CPU2006 job pool, and compares the
resulting droop/performance trade-off against the SPECrate baseline —
the Fig. 18 experiment — plus each benchmark's preferred partner under
the Droop policy.

Run:  python examples/noise_aware_scheduling.py
"""

from repro import (
    BatchScheduler,
    DroopPolicy,
    HybridPolicy,
    IPCPolicy,
    MeasurementCampaign,
    PairOracle,
)
from repro.core.policies import RandomPolicy

POOL = (
    "astar", "gamess", "lbm", "libquantum", "mcf",
    "namd", "povray", "sjeng", "sphinx", "tonto",
)
N_PAIRS = 20


def main() -> None:
    campaign = MeasurementCampaign("Proc3", n_cycles=30_000, seed=0)
    oracle = PairOracle(campaign)
    scheduler = BatchScheduler(oracle, programs=POOL)

    baseline = scheduler.evaluate(
        scheduler.specrate_schedule(), policy_name="SPECrate"
    )
    print(f"SPECrate baseline: {baseline.mean_droops:.2f} droop events/1K, "
          f"{baseline.mean_ipc:.2f} IPC")
    print()
    print("== Policy comparison (Fig. 18 coordinates; SPECrate = 1.0/1.0) ==")
    policies = [
        DroopPolicy(),
        IPCPolicy(),
        HybridPolicy(1.0),
        HybridPolicy.for_recovery_cost(100_000),
        RandomPolicy(seed=7),
    ]
    for policy in policies:
        evaluation = scheduler.run_policy(policy, n_pairs=N_PAIRS, seed=3)
        droops, perf = evaluation.normalized_to(baseline)
        print(f"  {policy.name:18s} droops {droops:5.2f}x   perf {perf:5.2f}x")
    print()

    print("== Droop policy's preferred partners ==")
    partners = scheduler.partner_map(DroopPolicy(), seed=5)
    for program in POOL:
        partner = partners[program]
        rate = oracle.droop_metric(program, partner)
        self_rate = oracle.droop_metric(program, program)
        print(f"  {program:11s} -> {partner:11s} "
              f"({rate:5.2f} vs {self_rate:5.2f} events/1K self-paired)")
    print()
    print("Droop-aware pairing exploits destructive interference that the")
    print("IPC-only scheduler cannot see (paper: Fig. 18, Q1).")


if __name__ == "__main__":
    main()
