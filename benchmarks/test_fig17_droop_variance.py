"""Bench: Fig. 17 — droop variance across co-schedules per benchmark."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig17_droop_variance


def test_fig17_droop_variance(benchmark, quick):
    result = run_once(benchmark, lambda: fig17_droop_variance.run(quick=quick))
    boxes = result.series["boxes"]
    single = result.series["single"]
    specrate = result.series["specrate"]

    # Co-schedule choice matters: for most benchmarks the box spans a
    # meaningful range (partner identity changes the droop count).
    spans = [boxes[a].max() - boxes[a].min() for a in boxes]
    medians = [float(np.median(boxes[a])) for a in boxes]
    wide = sum(s > 0.3 * max(m, 1.0) for s, m in zip(spans, medians))
    assert wide >= len(boxes) // 2

    # Destructive interference exists: some benchmarks have co-schedules
    # at or below their single-core droop level.
    destructive = result.series["benchmarks_with_destructive"]
    assert destructive >= 1

    # Room over the baseline: a large share of co-schedules beat SPECrate
    # (paper: over half when using SPECrate as the reference).
    assert result.series["fraction_below_specrate"] >= 0.35

    # Dual-core runs generally exceed single-core noise (the motivation
    # for mitigating multi-core interference in the first place).
    higher = sum(
        float(np.median(boxes[a])) > single[a] for a in boxes
    )
    assert higher >= len(boxes) // 2
    print("\n" + result.format_table())
