"""Text and JSON reporters for simlint findings."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.analysis.findings import Finding, Severity


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [f.format() for f in findings]
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    if findings:
        by_code = Counter(f.code for f in findings)
        breakdown = ", ".join(
            f"{code}×{count}" for code, count in sorted(by_code.items())
        )
        lines.append("")
        lines.append(
            f"simlint: {errors} error(s), {warnings} warning(s) "
            f"({breakdown})"
        )
    else:
        lines.append("simlint: clean")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (consumed by CI and the baseline tests)."""
    payload = {
        "version": 1,
        "summary": {
            "total": len(findings),
            "errors": sum(
                1 for f in findings if f.severity is Severity.ERROR
            ),
            "warnings": sum(
                1 for f in findings if f.severity is Severity.WARNING
            ),
        },
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render(findings: Sequence[Finding], fmt: str) -> str:
    """Dispatch on ``fmt`` (``"text"`` or ``"json"``)."""
    if fmt == "json":
        return render_json(findings)
    if fmt == "text":
        return render_text(findings)
    raise ValueError(f"unknown report format {fmt!r}")
