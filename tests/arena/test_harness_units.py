"""Arena harness units: scoring arithmetic, ranking, baseline, reports.

Everything here runs against the fake oracle — these are contracts of
the harness itself (docs/arena.md), independent of the simulator.
"""

import numpy as np
import pytest

from repro.arena import (
    ArenaResult,
    OracleBaseline,
    Schedule,
    exhaustive_baseline,
    iter_partitions,
    json_payload,
    json_report,
    markdown_report,
    score_schedule,
)
from repro.arena.harness import rank
from repro.arena.oracle import ORACLE_KEY
from repro.arena.policies import WORST_CASE_MARGIN
from repro.errors import SchedulingError

from tests.arena.conftest import FakeOracle

POOL = ("gamess", "lbm", "mcf", "namd", "povray", "sphinx")


def _schedule(policy="droop", n_cores=2, groups=None):
    if groups is None:
        groups = (("gamess", "lbm"), ("mcf", "namd"), ("povray", "sphinx"))
    return Schedule(policy=policy, n_cores=n_cores, groups=groups)


class TestScoreSchedule:
    def test_metric_arithmetic(self):
        oracle = FakeOracle()
        schedule = _schedule()
        card = score_schedule(
            schedule, oracle, "Droop", recovery_cost=100.0, baseline=None
        )
        droops = [oracle.droop_metric(*g) for g in schedule.groups]
        assert card.droops_per_1k == pytest.approx(float(np.mean(droops)))
        assert card.recovery_overhead == pytest.approx(
            card.droops_per_1k * 100.0 / 1000.0
        )
        assert card.mean_ipc == pytest.approx(
            float(np.mean([oracle.ipc_metric(*g) for g in schedule.groups]))
        )
        assert card.oracle_regret is None

    def test_energy_proxy_below_worst_case_guardband(self):
        """Fake max droops stay inside the 14 % margin, so every group
        could undervolt below the shipped set-point: proxy < 1."""
        card = score_schedule(
            _schedule(), FakeOracle(), "Droop", 100.0, baseline=None
        )
        assert 0.0 < card.energy_proxy < 1.0
        assert max(
            FakeOracle().max_droop_metric(*g) for g in _schedule().groups
        ) < WORST_CASE_MARGIN

    def test_regret_clamped_at_zero(self):
        """A policy may legitimately beat the canonical-shape oracle
        (balanced bins); regret never goes negative."""
        oracle = FakeOracle()
        schedule = _schedule()
        generous = OracleBaseline(
            schedule=_schedule(policy=ORACLE_KEY),
            droops_per_1k=1e9,
            partitions_searched=1,
        )
        card = score_schedule(schedule, oracle, "Droop", 100.0, generous)
        assert card.oracle_regret == 0.0  # simlint: disable=HYG001 (clamped exact zero)
        stingy = OracleBaseline(
            schedule=_schedule(policy=ORACLE_KEY),
            droops_per_1k=0.0,
            partitions_searched=1,
        )
        card = score_schedule(schedule, oracle, "Droop", 100.0, stingy)
        assert card.oracle_regret == pytest.approx(card.droops_per_1k)


class TestRank:
    def test_orders_by_droop_then_ipc_then_key(self):
        oracle = FakeOracle()

        def card(policy, droops, ipc):
            base = score_schedule(
                _schedule(policy=policy), oracle, policy, 100.0, None
            )
            return type(base)(
                policy=policy,
                name=policy,
                schedule=base.schedule,
                mean_ipc=ipc,
                droops_per_1k=droops,
                recovery_overhead=base.recovery_overhead,
                energy_proxy=base.energy_proxy,
                oracle_regret=None,
            )

        ranked = rank([
            card("c", 1.0, 2.0),
            card("b", 1.0, 3.0),
            card("a", 0.5, 1.0),
            card("d", 1.0, 3.0),
        ])
        assert [c.policy for c in ranked] == ["a", "b", "d", "c"]


class TestExhaustiveBaseline:
    def test_finds_the_minimum_over_all_partitions(self):
        oracle = FakeOracle()
        baseline = exhaustive_baseline(POOL, 2, oracle)
        assert baseline is not None
        assert baseline.partitions_searched == 15
        means = [
            float(np.mean([oracle.droop_metric(*g) for g in partition]))
            for partition in iter_partitions(POOL, 2)
        ]
        assert baseline.droops_per_1k == pytest.approx(min(means))
        assert baseline.schedule.policy == ORACLE_KEY
        assert baseline.schedule.canonical() == baseline.schedule

    def test_budget_exhaustion_returns_none(self):
        assert exhaustive_baseline(POOL, 2, FakeOracle(), limit=3) is None


class TestReports:
    @pytest.fixture
    def result(self):
        oracle = FakeOracle()
        cards = [
            score_schedule(
                _schedule(policy=key), oracle, key.title(), 100.0, None
            )
            for key in ("droop", "ipc")
        ]
        return ArenaResult(
            suite="micro",
            programs=POOL,
            n_cores=2,
            config="Proc3",
            n_cycles=12_000,
            seed=0,
            recovery_cost=100.0,
            oracle=None,
            scorecards=rank(cards),
        )

    def test_json_report_is_byte_stable(self, result):
        text = json_report(result)
        assert text == json_report(result)
        assert text.endswith("\n")
        payload = json_payload(result)
        assert payload["schema_version"] == 1
        assert payload["oracle"] is None
        assert [c["policy"] for c in payload["scorecards"]] == [
            card.policy for card in result.scorecards
        ]

    def test_markdown_report_has_required_columns(self, result):
        text = markdown_report(result)
        for column in (
            "droops/1k", "recovery overhead", "mean IPC",
            "energy proxy", "oracle regret",
        ):
            assert column in text
        assert "| 1 |" in text and "| 2 |" in text
        assert "n/a" in text  # regret without an oracle baseline

    def test_scorecard_lookup(self, result):
        assert result.scorecard("droop").policy == "droop"
        with pytest.raises(SchedulingError):
            result.scorecard("nope")
