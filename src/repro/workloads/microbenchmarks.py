"""Hand-crafted microbenchmarks that isolate single stall events.

Sec. III-C: "we hand-crafted the following microbenchmarks that cause the
processor to stall: L1 (only) and L2 cache misses, TLB misses, branch
mispredictions (BR) and exceptions (EXCP).  Each microbenchmark is run in a
loop, so that activity recurs long enough to measure its effect on core
voltage."

:class:`EventLoopMicrobenchmark` is that loop: a steady, highly active
kernel that triggers exactly one event kind at a fixed recurrence period
(with slight jitter — real loops drift).  :class:`IdleLoop` is the paper's
baseline: an idling OS, where only VRM ripple is visible.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.random_utils import SeedLike, as_generator
from repro.uarch.events import StallEvent
from repro.uarch.window import ExecutionWindow
from repro.workloads.base import Workload

#: Recurrence period (cycles) of each microbenchmark's event loop.  Each
#: period is a little over the event's own footprint, so the loop spends
#: most of its time stalling and re-ramping — maximum dI/dt per unit time,
#: as the paper's kernels are designed to do.
DEFAULT_PERIODS: Mapping[StallEvent, int] = {
    StallEvent.L1_MISS: 26,
    StallEvent.L2_MISS: 390,
    StallEvent.TLB_MISS: 65,
    StallEvent.BRANCH_MISPREDICT: 26,
    StallEvent.EXCEPTION: 400,
}


class EventLoopMicrobenchmark(Workload):
    """A loop that triggers one stall event once per iteration.

    Parameters
    ----------
    event:
        The stall event this kernel isolates.
    period_cycles:
        Loop iteration length; defaults to the calibrated per-event value.
    jitter_cycles:
        Standard deviation of per-iteration period jitter.
    activity:
        Baseline activity of the loop body (these kernels run hot).
    """

    def __init__(
        self,
        event: StallEvent,
        period_cycles: int | None = None,
        jitter_cycles: float = 1.0,
        activity: float = 0.92,
    ) -> None:
        if period_cycles is None:
            period_cycles = DEFAULT_PERIODS[event]
        if period_cycles < 2:
            raise ConfigurationError("period_cycles must be >= 2")
        if jitter_cycles < 0:
            raise ConfigurationError("jitter_cycles must be non-negative")
        if not 0 < activity <= 1:
            raise ConfigurationError("activity must be in (0, 1]")
        self.event = event
        self.period_cycles = int(period_cycles)
        self.jitter_cycles = float(jitter_cycles)
        self.activity = float(activity)
        self.name = f"ubench-{event.label}"
        self.duration_seconds = 60.0

    def sample_window(
        self,
        n_cycles: int,
        rng: SeedLike = None,
        at_time_s: float = 0.0,
    ) -> ExecutionWindow:
        if n_cycles <= 0:
            raise ConfigurationError("n_cycles must be positive")
        generator = as_generator(rng)
        baseline = np.full(n_cycles, self.activity)
        # Event times: a periodic train with a random initial phase and
        # small per-iteration jitter.
        n_events = n_cycles // self.period_cycles + 1
        phase = generator.integers(0, self.period_cycles)
        times = phase + np.arange(n_events) * self.period_cycles
        if self.jitter_cycles > 0:
            times = times + np.rint(
                generator.normal(0, self.jitter_cycles, size=n_events)
            ).astype(int)
        times = times[(times >= 0) & (times < n_cycles)]
        events = [(int(t), self.event) for t in np.sort(times)]
        return ExecutionWindow(
            baseline_activity=baseline,
            events=events,
            base_ipc=1.8,
            label=self.name,
        )


class IdleLoop(Workload):
    """The operating system's idle loop — the paper's noise baseline."""

    def __init__(self, activity: float = 0.03) -> None:
        if not 0 < activity <= 1:
            raise ConfigurationError("activity must be in (0, 1]")
        self.activity = float(activity)
        self.name = "idle"
        self.duration_seconds = 60.0

    def sample_window(
        self,
        n_cycles: int,
        rng: SeedLike = None,
        at_time_s: float = 0.0,
    ) -> ExecutionWindow:
        if n_cycles <= 0:
            raise ConfigurationError("n_cycles must be positive")
        generator = as_generator(rng)
        # A sliver of background OS activity, no stall events of note.
        baseline = np.clip(
            self.activity + generator.normal(0, 0.003, size=n_cycles),
            0.01,
            1.0,
        )
        return ExecutionWindow(
            baseline_activity=baseline, events=[], base_ipc=0.3, label=self.name
        )


#: One ready-made microbenchmark per stall event.
MICROBENCHMARKS: Dict[StallEvent, EventLoopMicrobenchmark] = {
    event: EventLoopMicrobenchmark(event) for event in StallEvent
}


def microbenchmark_for(event: StallEvent) -> EventLoopMicrobenchmark:
    """The calibrated kernel isolating ``event``."""
    return MICROBENCHMARKS[event]
