"""Extension bench: split vs connected core supplies (paper footnote 3)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import ext_split_supply


def test_ext_split_supply(benchmark, quick):
    result = run_once(benchmark, lambda: ext_split_supply.run(quick=quick))
    ratios = result.series["ratios"]
    # Splitting the rail worsens swings for every pair tested, and by a
    # nontrivial mean factor (POWER6: "much larger").
    assert np.all(ratios > 1.0)
    assert ratios.mean() > 1.1
    print("\n" + result.format_table())
