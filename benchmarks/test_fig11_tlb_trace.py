"""Bench: Fig. 11 — TLB-miss overshoot spikes riding the VRM ripple."""

from benchmarks.conftest import run_once
from repro.experiments import fig11_tlb_trace


def test_fig11_tlb_trace(benchmark, quick):
    result = run_once(benchmark, lambda: fig11_tlb_trace.run(quick=quick))
    rows = {row[0]: row[1] for row in result.rows}
    # The TLB kernel produces far more overshoot spikes than the idle
    # machine (whose ripple must not register as spikes).
    assert rows["overshoot spikes (TLB run)"] > 5 * max(
        rows["overshoot spikes (idle run)"], 1
    )
    # Spike count tracks the recurrence of the misses (same order of
    # magnitude as the number of misses in the window).
    assert (
        0.1 * rows["TLB misses in window"]
        <= rows["overshoot spikes (TLB run)"]
        <= 2.0 * rows["TLB misses in window"]
    )
    # And the overall swing exceeds idle.
    assert rows["pk-pk, TLB run (%)"] > rows["pk-pk, idle (%)"]
    print("\n" + result.format_table())
