"""Unit tests for microbenchmarks and the idle loop."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.uarch.events import StallEvent
from repro.workloads.microbenchmarks import (
    DEFAULT_PERIODS,
    EventLoopMicrobenchmark,
    IdleLoop,
    MICROBENCHMARKS,
    microbenchmark_for,
)


class TestEventLoop:
    def test_one_kernel_per_event(self):
        assert set(MICROBENCHMARKS) == set(StallEvent)
        for event in StallEvent:
            assert microbenchmark_for(event).event is event

    def test_event_train_periodicity(self):
        ub = EventLoopMicrobenchmark(
            StallEvent.TLB_MISS, period_cycles=100, jitter_cycles=0.0
        )
        window = ub.sample_window(10_000, rng=3)
        cycles = np.array([c for c, _ in window.events])
        gaps = np.diff(cycles)
        assert np.all(gaps == 100)

    def test_event_count_matches_period(self):
        for event in StallEvent:
            ub = microbenchmark_for(event)
            window = ub.sample_window(50_000, rng=1)
            expected = 50_000 / ub.period_cycles
            assert window.event_count(event) == pytest.approx(expected, rel=0.1)

    def test_only_its_own_event_kind(self):
        window = microbenchmark_for(StallEvent.L2_MISS).sample_window(20_000, rng=2)
        kinds = {e for _, e in window.events}
        assert kinds == {StallEvent.L2_MISS}

    def test_period_exceeds_event_footprint_duty(self):
        """Each kernel's period leaves room for the activity to recover."""
        for event, period in DEFAULT_PERIODS.items():
            assert period > 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EventLoopMicrobenchmark(StallEvent.L1_MISS, period_cycles=1)
        with pytest.raises(ConfigurationError):
            EventLoopMicrobenchmark(StallEvent.L1_MISS, jitter_cycles=-1)
        with pytest.raises(ConfigurationError):
            EventLoopMicrobenchmark(StallEvent.L1_MISS, activity=0)
        with pytest.raises(ConfigurationError):
            microbenchmark_for(StallEvent.L1_MISS).sample_window(0)


class TestIdleLoop:
    def test_low_activity_no_events(self):
        window = IdleLoop().sample_window(10_000, rng=0)
        assert window.baseline_activity.mean() < 0.06
        assert not window.events

    def test_activity_parameter(self):
        window = IdleLoop(activity=0.1).sample_window(10_000, rng=0)
        assert window.baseline_activity.mean() == pytest.approx(0.1, abs=0.02)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IdleLoop(activity=0.0)
