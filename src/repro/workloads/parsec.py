"""Synthetic models of the 11 PARSEC multi-threaded benchmarks.

The paper's multi-threaded runs put one thread of the same program on each
core.  Unlike independent multi-program pairs, sibling threads are
*correlated*: they execute the same code regions and synchronize at
barriers, so their stall bursts align far more often — one reason
multi-threaded workloads show strong constructive interference.

:class:`ParsecWorkload` models this with a shared :class:`StatProfile`
plus a barrier process: at Poisson-distributed barrier points, *both*
threads take an aligned long stall (modelled as an exception-class drain)
within a few cycles of each other.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from repro.errors import ConfigurationError, WorkloadError
from repro.random_utils import SeedLike, as_generator, derive_generator
from repro.uarch.events import EventTrace, StallEvent, event_code
from repro.uarch.window import ExecutionWindow
from repro.workloads.base import (
    StatProfile,
    Workload,
    synthesize_window,
    synthesize_windows,
)


class ParsecWorkload(Workload):
    """A multi-threaded workload: correlated sibling threads + barriers.

    Parameters
    ----------
    name:
        Benchmark name.
    profile:
        Per-thread statistical profile.
    barrier_rate_per_cycle:
        Poisson rate of synchronization barriers.
    barrier_skew_cycles:
        How far apart (std. dev.) the two threads hit the same barrier.
    duration_seconds:
        Program duration.
    """

    def __init__(
        self,
        name: str,
        profile: StatProfile,
        barrier_rate_per_cycle: float = 2e-4,
        barrier_skew_cycles: float = 30.0,
        duration_seconds: float = 600.0,
    ) -> None:
        if barrier_rate_per_cycle < 0:
            raise ConfigurationError("barrier_rate_per_cycle must be >= 0")
        if barrier_skew_cycles < 0:
            raise ConfigurationError("barrier_skew_cycles must be >= 0")
        if duration_seconds <= 0:
            raise ConfigurationError("duration_seconds must be positive")
        self.name = name
        self.profile = profile
        self.barrier_rate_per_cycle = float(barrier_rate_per_cycle)
        self.barrier_skew_cycles = float(barrier_skew_cycles)
        self.duration_seconds = float(duration_seconds)

    def sample_window(
        self,
        n_cycles: int,
        rng: SeedLike = None,
        at_time_s: float = 0.0,
    ) -> ExecutionWindow:
        """A single thread's window (used when only one core runs it)."""
        return synthesize_window(self.profile, n_cycles, rng, label=self.name)

    def sample_thread_windows(
        self,
        n_threads: int,
        n_cycles: int,
        rng: SeedLike = None,
        at_time_s: float = 0.0,
    ) -> Tuple[ExecutionWindow, ...]:
        """Correlated windows for ``n_threads`` sibling threads."""
        if n_threads < 1:
            raise ConfigurationError("n_threads must be >= 1")
        generator = as_generator(rng)
        # One batched synthesis call for every sibling thread: the
        # per-thread RNGs are derived in the original order, so each
        # base window is bit-identical to the per-thread calls this
        # replaced.
        base_windows = synthesize_windows(
            self.profile,
            n_cycles,
            [derive_generator(generator, "thread", i) for i in range(n_threads)],
            labels=[f"{self.name}#t{i}" for i in range(n_threads)],
        )
        # Barrier process shared by all threads: aligned deep stalls.
        n_barriers = generator.poisson(self.barrier_rate_per_cycle * n_cycles)
        barrier_cycles = np.sort(generator.integers(0, n_cycles, size=n_barriers))
        # One vectorized normal draw per thread replaces the scalar
        # per-barrier draws (identical stream), and np.rint applies the
        # same banker's rounding as round().
        skews = [
            generator.normal(0.0, self.barrier_skew_cycles, size=n_barriers)
            for _ in range(n_threads)
        ]
        return tuple(
            _with_barriers(window, barrier_cycles, skews[i], n_cycles)
            for i, window in enumerate(base_windows)
        )


def _with_barriers(
    window: ExecutionWindow,
    barrier_cycles: np.ndarray,
    skews: np.ndarray,
    n_cycles: int,
) -> ExecutionWindow:
    """Merge skewed barrier exceptions into one thread's window."""
    offsets = np.rint(skews).astype(np.int64)
    cycles = np.clip(barrier_cycles + offsets, 0, n_cycles - 1)
    base = EventTrace.coerce(window.events)
    merged = EventTrace(
        np.concatenate([base.cycles, cycles]),
        np.concatenate([
            base.codes,
            np.full(
                cycles.size, event_code(StallEvent.EXCEPTION), dtype=np.uint8
            ),
        ]),
    ).sorted_by_cycle()
    return ExecutionWindow(
        baseline_activity=window.baseline_activity,
        events=merged,
        base_ipc=window.base_ipc,
        label=window.label,
    )


def _rates(
    l1: float = 0.0,
    l2: float = 0.0,
    tlb: float = 0.0,
    br: float = 0.0,
) -> Dict[StallEvent, float]:
    rates = {
        StallEvent.L1_MISS: l1,
        StallEvent.L2_MISS: l2,
        StallEvent.TLB_MISS: tlb,
        StallEvent.BRANCH_MISPREDICT: br,
    }
    return {event: rate for event, rate in rates.items() if rate > 0}


def _workload(
    name: str,
    duration_s: float,
    activity: float,
    ipc: float,
    rates: Dict[StallEvent, float],
    barrier_rate: float,
) -> ParsecWorkload:
    profile = StatProfile(
        mean_activity=activity,
        activity_sigma=0.05,
        activity_tau_cycles=3500.0,
        event_rates=rates,
        base_ipc=ipc,
    )
    return ParsecWorkload(
        name,
        profile,
        barrier_rate_per_cycle=barrier_rate,
        duration_seconds=duration_s,
    )


#: The 11 PARSEC benchmarks the paper runs multi-threaded.
PARSEC: Mapping[str, ParsecWorkload] = {
    w.name: w
    for w in (
        _workload("blackscholes", 300, 0.88, 2.00,
                  _rates(l1=0.005, l2=0.0002, br=0.002), barrier_rate=5e-5),
        _workload("bodytrack", 420, 0.74, 1.40,
                  _rates(l1=0.009, l2=0.0005, br=0.006), barrier_rate=3e-4),
        _workload("canneal", 520, 0.52, 0.60,
                  _rates(l1=0.010, l2=0.0013, tlb=0.0006, br=0.005),
                  barrier_rate=8e-5),
        _workload("dedup", 380, 0.68, 1.20,
                  _rates(l1=0.011, l2=0.0007, br=0.006), barrier_rate=2e-4),
        _workload("facesim", 650, 0.70, 1.25,
                  _rates(l1=0.008, l2=0.0007, br=0.002), barrier_rate=4e-4),
        _workload("ferret", 480, 0.72, 1.35,
                  _rates(l1=0.009, l2=0.0006, br=0.005), barrier_rate=2e-4),
        _workload("fluidanimate", 600, 0.72, 1.30,
                  _rates(l1=0.008, l2=0.0006, br=0.002), barrier_rate=6e-4),
        _workload("streamcluster", 550, 0.58, 0.80,
                  _rates(l1=0.007, l2=0.0012, br=0.001), barrier_rate=5e-4),
        _workload("swaptions", 350, 0.90, 2.10,
                  _rates(l1=0.005, l2=0.0001, br=0.003), barrier_rate=4e-5),
        _workload("vips", 400, 0.78, 1.60,
                  _rates(l1=0.008, l2=0.0004, br=0.004), barrier_rate=2e-4),
        _workload("x264", 450, 0.80, 1.70,
                  _rates(l1=0.009, l2=0.0004, br=0.005), barrier_rate=3e-4),
    )
}


def parsec_benchmark(name: str) -> ParsecWorkload:
    """Look up a PARSEC model by name (e.g. ``"canneal"``)."""
    try:
        return PARSEC[name]
    except KeyError:
        raise WorkloadError(
            f"unknown PARSEC benchmark {name!r}; have {sorted(PARSEC)}"
        ) from None
