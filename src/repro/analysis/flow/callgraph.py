"""Shared call-graph machinery for the flow passes.

The concurrency pass (``CON*``), the effect-inference pass, and the
determinism-taint pass (``TNT*``) all need the same three answers:

* *which functions does this function call* (:func:`callees`, built on
  the project symbol table's resolution plus a unique-method-name
  fallback that keeps the closure sound when a receiver's type cannot
  be inferred);
* *which functions are shipped to a process pool as payloads*
  (:func:`worker_entries`, after unwrapping ``functools.partial``);
* *which functions can run inside a pool worker at all* — the
  breadth-first **worker-reachable closure** over those entries
  (:func:`reachable`).

This module owns those answers so the passes cannot drift apart: the
set of functions CON audits for seed provenance is by construction the
same set the effect table marks worker-reachable and the taint pass
treats as the result path.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.flow.symbols import (
    PROCESS_POOLS,
    ClassInfo,
    FunctionInfo,
    Project,
)

#: Method names that mutate their receiver in place (CON003 / the
#: ``global-write`` effect).
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)

#: Pool methods that take a payload callable as their first argument.
DISPATCH_METHODS = frozenset({"map", "submit", "apply", "apply_async",
                              "imap", "imap_unordered", "starmap"})


def local_types(
    project: Project, fn: FunctionInfo
) -> Tuple[Dict[str, str], Optional[str]]:
    """Class types of locals constructed in ``fn`` (+ its ``self`` name)."""
    self_name = fn.params[0] if (fn.is_method and fn.params) else None
    types: Dict[str, str] = {}
    for node in ast.walk(fn.node):
        target: Optional[str] = None
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name):
            target, value = node.targets[0].id, node.value
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            target, value = node.target.id, node.value
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name) and isinstance(
                    item.context_expr, ast.Call
                ):
                    resolved = project.resolve_callee(
                        fn.module, item.context_expr.func, types,
                        fn.class_name, self_name,
                    )
                    if isinstance(resolved, ClassInfo):
                        types[item.optional_vars.id] = resolved.qualname
            continue
        if target is None or not isinstance(value, ast.Call):
            continue
        resolved = project.resolve_callee(
            fn.module, value.func, types, fn.class_name, self_name
        )
        if isinstance(resolved, ClassInfo):
            types[target] = resolved.qualname
    return types, self_name


def callees(project: Project, fn: FunctionInfo) -> Set[str]:
    """Qualnames of functions ``fn`` may call (call-graph edges)."""
    types, self_name = local_types(project, fn)
    edges: Set[str] = set()
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        resolved = project.resolve_callee(
            fn.module, node.func, types, fn.class_name, self_name
        )
        if isinstance(resolved, FunctionInfo):
            edges.add(resolved.qualname)
        elif isinstance(resolved, ClassInfo):
            for ctor in ("__init__", "__post_init__"):
                if ctor in resolved.methods:
                    edges.add(resolved.methods[ctor].qualname)
        elif isinstance(node.func, ast.Attribute):
            # Unique-method-name fallback: keeps the worker closure sound
            # when the receiver's type could not be inferred.
            candidates = project.methods_by_name.get(node.func.attr, [])
            if len(candidates) == 1:
                edges.add(candidates[0].qualname)
    return edges


def call_edges(project: Project) -> Dict[str, Set[str]]:
    """The whole project's call graph, restricted to known functions."""
    return {
        qualname: {
            callee
            for callee in callees(project, fn)
            if callee in project.functions
        }
        for qualname, fn in project.functions.items()
    }


def pool_locals(fn: FunctionInfo) -> Set[str]:
    """Names bound to a process pool inside ``fn``."""
    pools: Set[str] = set()
    ctx = fn.module.ctx

    def maybe_pool(value: ast.AST, name: str) -> None:
        if isinstance(value, ast.Call):
            dotted = ctx.dotted_name(value.func)
            if dotted in PROCESS_POOLS:
                pools.add(name)

    for node in ast.walk(fn.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if isinstance(item.optional_vars, ast.Name):
                    maybe_pool(item.context_expr, item.optional_vars.id)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name):
            maybe_pool(node.value, node.targets[0].id)
    return pools


def iter_dispatch_payloads(
    fn: FunctionInfo,
) -> Iterator[Tuple[ast.Call, ast.expr]]:
    """Yield ``(dispatch_call, payload_expr)`` for every pool dispatch.

    Payload expressions wrapped in ``functools.partial`` are unwrapped
    to the underlying callable.  Every positional argument of the
    dispatch is yielded (``pool.submit(fn, arg)`` ships both).
    """
    pools = pool_locals(fn)
    if not pools:
        return
    ctx = fn.module.ctx
    for node in ast.walk(fn.node):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in pools
            and node.func.attr in DISPATCH_METHODS
        ):
            continue
        for arg in node.args:
            payload = arg
            if isinstance(payload, ast.Call):
                dotted = ctx.dotted_name(payload.func)
                if dotted in ("functools.partial", "partial"):
                    payload = payload.args[0] if payload.args else payload
            yield node, payload


def worker_entries(project: Project, fn: FunctionInfo) -> List[FunctionInfo]:
    """Project functions ``fn`` ships to a process pool as payloads."""
    entries: List[FunctionInfo] = []
    self_name = fn.params[0] if (fn.is_method and fn.params) else None
    for _call, payload in iter_dispatch_payloads(fn):
        if not isinstance(payload, ast.Name):
            continue
        resolved = project.resolve_callee(
            fn.module, payload, None, fn.class_name, self_name
        )
        if isinstance(resolved, FunctionInfo):
            entries.append(resolved)
    return entries


def project_worker_entries(project: Project) -> List[FunctionInfo]:
    """Every pool-payload function in the project, dispatch order."""
    entries: List[FunctionInfo] = []
    seen: Set[str] = set()
    for fn in project.functions.values():
        for entry in worker_entries(project, fn):
            if entry.qualname not in seen:
                seen.add(entry.qualname)
                entries.append(entry)
    return entries


def reachable(
    project: Project, entries: Iterable[FunctionInfo]
) -> List[FunctionInfo]:
    """Breadth-first worker-reachable closure over the call graph."""
    seen: Set[str] = set()
    order: List[FunctionInfo] = []
    queue = list(entries)
    while queue:
        fn = queue.pop(0)
        if fn.qualname in seen:
            continue
        seen.add(fn.qualname)
        order.append(fn)
        for callee in sorted(callees(project, fn)):
            target = project.functions.get(callee)
            if target is not None and target.qualname not in seen:
                queue.append(target)
    return order


def worker_closure(project: Project) -> List[FunctionInfo]:
    """The worker-reachable closure of every pool dispatch in the project."""
    return reachable(project, project_worker_entries(project))


def param_derived_names(fn: FunctionInfo) -> Set[str]:
    """Flow-insensitive parameter-derivation closure over local names.

    A name is *derived* when it is a parameter or was ever assigned an
    expression mentioning a derived name — the seed-provenance notion
    shared by CON001 and the taint pass's sanctioned-RNG check.
    """
    derived: Set[str] = set(fn.params)
    derived.update(a.arg for a in fn.node.args.kwonlyargs)
    changed = True
    while changed:
        changed = False
        for node in ast.walk(fn.node):
            targets: List[str] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                value = node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                targets, value = [node.target.id], node.value
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Name
            ):
                targets, value = [node.target.id], node.value
            elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
                node.target, ast.Name
            ):
                targets, value = [node.target.id], node.iter
            if not targets or value is None:
                continue
            if any(
                isinstance(sub, ast.Name) and sub.id in derived
                for sub in ast.walk(value)
            ):
                for name in targets:
                    if name not in derived:
                        derived.add(name)
                        changed = True
    return derived
