"""Compressed voltage-sample histograms (the scope's storage format).

The Agilent scope in the paper accumulates voltage samples into an
internal histogram so that minutes of execution fit in memory; all of the
paper's distribution figures (Figs. 7 and 9) are drawn from these
histograms.  :class:`CompressedHistogram` reproduces that storage: fixed
uniform bins over a deviation range, constant memory regardless of trace
length, mergeable across measurement intervals.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError, MeasurementError


class CompressedHistogram:
    """A fixed-bin histogram of voltage deviations (fractions of nominal).

    Parameters
    ----------
    lo / hi:
        Deviation range covered, e.g. -0.20 … +0.20.  Samples outside the
        range accumulate in saturating edge bins (like a real scope).
    n_bins:
        Number of uniform bins.
    """

    def __init__(self, lo: float = -0.20, hi: float = 0.20, n_bins: int = 4000) -> None:
        if not lo < hi:
            raise ConfigurationError("need lo < hi")
        if n_bins < 2:
            raise ConfigurationError("need at least two bins")
        self._lo = float(lo)
        self._hi = float(hi)
        self._counts = np.zeros(n_bins, dtype=np.int64)
        self._width = (hi - lo) / n_bins

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------
    def add(self, deviations: np.ndarray) -> None:
        """Accumulate deviation samples (values clip into edge bins)."""
        deviations = np.asarray(deviations, dtype=float)
        if deviations.size == 0:
            return
        if np.any(~np.isfinite(deviations)):
            raise MeasurementError("deviations contain non-finite values")
        idx = ((deviations - self._lo) / self._width).astype(int)
        idx = np.clip(idx, 0, self._counts.size - 1)
        np.add.at(self._counts, idx, 1)

    def merge(self, other: "CompressedHistogram") -> "CompressedHistogram":
        """Combine two histograms with identical binning."""
        if (self._lo, self._hi, self._counts.size) != (
            other._lo, other._hi, other._counts.size,
        ):
            raise MeasurementError("histograms have different binning")
        merged = CompressedHistogram(self._lo, self._hi, self._counts.size)
        merged._counts = self._counts + other._counts
        return merged

    @classmethod
    def from_counts(
        cls, lo: float, hi: float, counts: np.ndarray
    ) -> "CompressedHistogram":
        """Rebuild a histogram from stored bin counts (cache/fixture decode)."""
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 1:
            raise MeasurementError("counts must be one-dimensional")
        if np.any(counts < 0):
            raise MeasurementError("counts must be non-negative")
        histogram = cls(lo, hi, int(counts.size))
        histogram._counts = counts.copy()
        return histogram

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def lo(self) -> float:
        return self._lo

    @property
    def hi(self) -> float:
        return self._hi

    @property
    def n_bins(self) -> int:
        return int(self._counts.size)

    @property
    def total(self) -> int:
        return int(self._counts.sum())

    @property
    def bin_centers(self) -> np.ndarray:
        edges = np.linspace(self._lo, self._hi, self._counts.size + 1)
        return (edges[:-1] + edges[1:]) / 2.0

    @property
    def counts(self) -> np.ndarray:
        return self._counts.copy()

    def fraction_below(self, deviation: float) -> float:
        """Fraction of samples with deviation < the given value."""
        if self.total == 0:
            raise MeasurementError("histogram is empty")
        idx = int(np.floor((deviation - self._lo) / self._width))
        idx = max(min(idx, self._counts.size), 0)
        return float(self._counts[:idx].sum() / self.total)

    def fraction_above(self, deviation: float) -> float:
        """Fraction of samples with deviation > the given value."""
        return 1.0 - self.fraction_below(deviation)

    def quantile(self, q: float) -> float:
        """Approximate deviation at cumulative fraction ``q``."""
        if not 0 <= q <= 1:
            raise MeasurementError("q must be in [0, 1]")
        if self.total == 0:
            raise MeasurementError("histogram is empty")
        if q == 0:
            return self.min_deviation()
        cumulative = np.cumsum(self._counts)
        idx = int(np.searchsorted(cumulative, q * self.total))
        idx = min(idx, self._counts.size - 1)
        return float(self.bin_centers[idx])

    def min_deviation(self) -> float:
        """Smallest (most negative) populated deviation bin."""
        populated = np.flatnonzero(self._counts)
        if populated.size == 0:
            raise MeasurementError("histogram is empty")
        return float(self.bin_centers[populated[0]])

    def max_deviation(self) -> float:
        """Largest populated deviation bin."""
        populated = np.flatnonzero(self._counts)
        if populated.size == 0:
            raise MeasurementError("histogram is empty")
        return float(self.bin_centers[populated[-1]])

    def cdf(self) -> Tuple[np.ndarray, np.ndarray]:
        """(deviations, cumulative fraction) — the Fig. 7/9 curves."""
        if self.total == 0:
            raise MeasurementError("histogram is empty")
        return self.bin_centers, np.cumsum(self._counts) / self.total

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"CompressedHistogram({self.total} samples, "
            f"[{self._lo:+.2%}, {self._hi:+.2%}], {self._counts.size} bins)"
        )
