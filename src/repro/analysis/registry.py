"""Rule base class and the global rule registry.

A rule is a small stateless object with a unique ``code`` (e.g.
``DET001``), a severity, and one or both of two hooks:

* :meth:`Rule.check` — called once per AST node whose type appears in
  :attr:`Rule.node_types`;
* :meth:`Rule.check_module` — called once per module with the full tree
  (for whole-file invariants such as a required ``__future__`` import).

Rules register themselves with the :func:`register` decorator; the
engine asks :func:`all_rules` for the active set.  Codes group into
families by prefix: ``DET`` (determinism), ``UNI`` (unit-safety),
``HYG`` (simulation hygiene).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple, Type, TypeVar

from repro.analysis.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.engine import FileContext


class Rule:
    """Base class for simlint rules.  Subclass and :func:`register`."""

    #: Unique rule code, e.g. ``"DET001"``.
    code: str = ""
    #: Short human name, e.g. ``"stdlib-random"``.
    name: str = ""
    severity: Severity = Severity.ERROR
    #: One-line rationale shown by ``--list-rules`` and the docs.
    description: str = ""
    #: AST node types :meth:`check` wants to see; empty means none.
    node_types: Tuple[Type[ast.AST], ...] = ()
    #: True for rules emitted by the dataflow engine (``--flow``) rather
    #: than the single-file visitor; they never fire through :meth:`check`.
    flow: bool = False

    def check(self, node: ast.AST, ctx: "FileContext") -> Iterator[Finding]:
        """Yield findings for one node of a registered type."""
        return iter(())

    def check_module(
        self, tree: ast.Module, ctx: "FileContext"
    ) -> Iterator[Finding]:
        """Yield module-level findings (runs once per file)."""
        return iter(())


_REGISTRY: Dict[str, Rule] = {}

#: Analysis-logic version per rule family.  Bump a family's version
#: whenever its pass's *semantics* change (new sources, sinks, or
#: propagation behavior) so cached lint results keyed on the registry
#: signature are invalidated even though rule codes stayed the same.
FAMILY_VERSIONS: Dict[str, int] = {
    "DET": 1,
    "UNI": 1,
    "HYG": 1,
    "OBS": 1,
    "SIM": 1,
    # The flow passes share the call-graph module; its extraction (and
    # the effect/taint machinery built on it) is analysis version 2.
    "DIM": 2,
    "CON": 2,
    "TNT": 1,
    "PERF": 1,
}


def family_of(code: str) -> str:
    """The family prefix of a rule code (``"PERF001"`` -> ``"PERF"``)."""
    return code.rstrip("0123456789")


def family_version(code: str) -> int:
    """Analysis version of the family ``code`` belongs to (default 1)."""
    return FAMILY_VERSIONS.get(family_of(code), 1)


R = TypeVar("R", bound=Type[Rule])


def register(rule_class: R) -> R:
    """Class decorator: instantiate and index a rule by its code."""
    rule = rule_class()
    if not rule.code:
        raise ValueError(f"{rule_class.__name__} has no code")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return rule_class


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by code (imports rule modules)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    """Look up one rule by code (:func:`all_rules` semantics)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    if code not in _REGISTRY:
        raise KeyError(f"unknown rule code {code!r}")
    return _REGISTRY[code]
