"""Rule modules; importing this package registers every rule.

Families:

* :mod:`repro.analysis.rules.determinism` — ``DET0xx``: every stochastic
  or time-dependent value must flow from an injectable seed.
* :mod:`repro.analysis.rules.units` — ``UNI0xx``: physical quantities in
  SI base units built from :mod:`repro.units` constants, never raw
  scale-prefix literals.
* :mod:`repro.analysis.rules.hygiene` — ``HYG0xx``: simulation-code
  hygiene (float equality, mutable defaults, overbroad excepts, frozen
  config dataclasses, ``__future__`` annotations).
* :mod:`repro.analysis.rules.observability` — ``OBS0xx``: telemetry
  discipline (all monotonic-clock timing goes through
  :mod:`repro.observability`).
* :mod:`repro.analysis.flow.rules` — ``DIM0xx``/``CON0xx``: the dataflow
  families (dimensional analysis, concurrency safety), emitted by the
  ``--flow`` engine rather than the single-file visitor.
"""

from __future__ import annotations

from repro.analysis.flow import rules as flow_rules
from repro.analysis.rules import determinism, hygiene, observability, units

__all__ = ["determinism", "flow_rules", "hygiene", "observability", "units"]
