"""Orchestration for the flow analyses: files in, findings out.

:func:`flow_sources` is the in-memory core (used heavily by the test
suite); :func:`flow_paths` adds file loading and the per-file result
cache.  Both return plain :class:`~repro.analysis.findings.Finding`
lists, already suppression-filtered and sorted, so the CLI can merge
them with the line engine's output and feed any reporter or baseline.

Pass ordering matters: the dimension pass runs first because its
abstract interpretation fills in the class attribute-type tables
(``self.chip = Chip(...)``) that the other passes' shared call-graph
resolution reuses; the concurrency and taint passes then audit the
worker-reachable closure that resolution produces, and the loop-cost
pass classifies the hot-entry closure last using the same tables.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.engine import iter_python_files
from repro.analysis.findings import Finding
from repro.analysis.flow.cache import (
    LintCache,
    project_digest,
    registry_signature,
    rules_signature,
    source_digest,
)
from repro.analysis.flow.concurrency import run_concurrency_pass
from repro.analysis.flow.cost import run_cost_pass
from repro.analysis.flow.inference import run_dimension_pass
from repro.analysis.flow.symbols import Project
from repro.analysis.flow.taint import run_taint_pass
from repro.analysis.registry import Rule, all_rules


def flow_rules() -> List[Rule]:
    """Every registered flow rule (``DIM*``/``CON*``/``TNT*``/``PERF*``)."""
    return [rule for rule in all_rules() if rule.flow]


def flow_sources(
    sources: Mapping[str, str],
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Analyze ``{path: source}`` as one project; return flow findings."""
    active = {
        rule.code for rule in (rules if rules is not None else flow_rules())
        if rule.flow
    }
    if not active:
        return []
    project = Project.build(sources)
    findings = run_dimension_pass(project)
    findings.extend(run_concurrency_pass(project))
    findings.extend(run_taint_pass(project))
    findings.extend(run_cost_pass(project))
    findings = [f for f in findings if f.code in active]

    surviving = []
    seen = set()
    for finding in findings:
        module = next(
            (m for m in project.modules.values() if m.path == finding.path),
            None,
        )
        if module is not None and module.ctx.is_suppressed(finding):
            continue
        identity = (finding.path, finding.line, finding.column,
                    finding.code, finding.message)
        if identity in seen:
            continue
        seen.add(identity)
        surviving.append(finding)
    surviving.sort(key=lambda f: (f.path, f.line, f.column, f.code))
    return surviving


def flow_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    cache: Optional[LintCache] = None,
    exclude: Sequence[str] = (),
) -> List[Finding]:
    """Analyze every ``.py`` file under ``paths`` as one project."""
    sources: Dict[str, str] = {}
    for filename in iter_python_files(paths, exclude=exclude):
        with open(filename, "r", encoding="utf-8") as handle:
            sources[filename] = handle.read()

    if cache is None:
        return flow_sources(sources, rules=rules)

    signature = rules_signature(
        rule.code for rule in (rules if rules is not None else flow_rules())
        if rule.flow
    )
    digests = {path: source_digest(text) for path, text in sources.items()}
    project_sig = project_digest(digests)
    registry_sig = registry_signature()
    keys = {
        path: (
            f"flow:{digests[path]}:{project_sig}:{signature}:{registry_sig}"
        )
        for path in sources
    }
    if all(cache.peek(key) for key in keys.values()):
        findings: List[Finding] = []
        for path in sorted(keys):
            cached = cache.get(keys[path])
            if cached is None:  # pragma: no cover - raced/corrupt entry
                break
            findings.extend(cached)
        else:
            findings.sort(key=lambda f: (f.path, f.line, f.column, f.code))
            return findings

    findings = flow_sources(sources, rules=rules)
    by_path: Dict[str, List[Finding]] = {path: [] for path in sources}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    for path, key in keys.items():
        cache.misses += 1
        cache.put(key, by_path.get(path, []))
    return findings
