"""Arena policy registry: fixed membership, fixed iteration order."""

import pytest

from repro.arena import build_policies, registered_keys
from repro.arena.registry import register
from repro.errors import ConfigurationError


class TestRegistry:
    def test_registered_keys_sorted_and_complete(self):
        keys = registered_keys()
        assert keys == tuple(sorted(keys))
        assert keys == (
            "droop", "dvfs-margin", "hybrid", "ipc",
            "ipc-packing", "random", "random-n", "stall",
        )

    def test_build_all_by_default(self):
        policies = build_policies()
        assert tuple(p.key for p in policies) == registered_keys()

    def test_explicit_keys_keep_given_order(self):
        policies = build_policies(["stall", "droop"])
        assert tuple(p.key for p in policies) == ("stall", "droop")

    def test_unknown_key_lists_choices(self):
        with pytest.raises(ConfigurationError, match="droop.*stall"):
            build_policies(["nope"])

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register("droop", object)
