"""Unit tests for activity-envelope synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.uarch.activity import MAX_ACTIVITY, event_envelope, synthesize_activity
from repro.uarch.events import StallEvent, profile_for


class TestEventEnvelope:
    def test_drop_reaches_floor(self):
        profile = profile_for(StallEvent.L2_MISS)
        drop, _ = event_envelope(profile)
        assert drop.min() == pytest.approx(1.0 - profile.drop_fraction)

    def test_surge_peak(self):
        profile = profile_for(StallEvent.BRANCH_MISPREDICT)
        _, surge = event_envelope(profile)
        assert surge.max() == pytest.approx(profile.surge_factor - 1.0)

    def test_surge_zero_during_stall(self):
        profile = profile_for(StallEvent.L2_MISS)
        _, surge = event_envelope(profile)
        stall_span = profile.drain_cycles + profile.stall_cycles
        assert np.all(surge[:stall_span] == 0.0)  # simlint: disable=HYG001 (exact by construction)

    def test_same_length_arrays(self):
        for event in StallEvent:
            drop, surge = event_envelope(profile_for(event))
            assert drop.shape == surge.shape


class TestSynthesize:
    def test_no_events_passthrough(self):
        baseline = np.full(100, 0.7)
        out = synthesize_activity(baseline, [])
        assert np.allclose(out, baseline)

    def test_event_causes_dip_then_surge(self):
        baseline = np.full(2000, 0.8)
        out = synthesize_activity(baseline, [(100, StallEvent.L2_MISS)])
        profile = profile_for(StallEvent.L2_MISS)
        stall_region = out[100 + profile.drain_cycles : 100 + profile.drain_cycles + 10]
        assert np.all(stall_region < 0.2)
        # Post-refill surge exceeds baseline.
        refill_at = 100 + profile.drain_cycles + profile.stall_cycles + profile.refill_cycles
        assert out[refill_at : refill_at + 10].max() > 0.8

    def test_surge_is_absolute_not_multiplicative(self):
        """A low-occupancy program still surges toward full activity."""
        low = synthesize_activity(np.full(2000, 0.3), [(100, StallEvent.L2_MISS)])
        surge_gain_low = low.max() - 0.3
        profile = profile_for(StallEvent.L2_MISS)
        # Roughly the absolute surge amplitude, not 0.3 * factor.
        assert surge_gain_low > 0.6 * (profile.surge_factor - 1.0)

    def test_overlapping_events_stack_multiplicatively(self):
        baseline = np.full(1000, 0.9)
        one = synthesize_activity(baseline, [(100, StallEvent.L1_MISS)])
        two = synthesize_activity(
            baseline, [(100, StallEvent.L1_MISS), (102, StallEvent.L1_MISS)]
        )
        assert two.min() < one.min()

    def test_truncation_at_window_end(self):
        baseline = np.full(50, 0.9)
        out = synthesize_activity(baseline, [(48, StallEvent.EXCEPTION)])
        assert out.shape == (50,)

    def test_out_of_range_event_rejected(self):
        with pytest.raises(ConfigurationError):
            synthesize_activity(np.full(10, 0.5), [(10, StallEvent.L1_MISS)])

    def test_empty_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            synthesize_activity(np.array([]), [])

    @settings(max_examples=25, deadline=None)
    @given(
        base=st.floats(min_value=0.05, max_value=1.0),
        cycles=st.lists(
            st.integers(min_value=0, max_value=1999), min_size=0, max_size=30
        ),
        event=st.sampled_from(list(StallEvent)),
    )
    def test_bounds_invariant(self, base, cycles, event):
        """Realized activity always stays within [0, MAX_ACTIVITY]."""
        out = synthesize_activity(
            np.full(2000, base), [(c, event) for c in cycles]
        )
        assert out.min() >= 0.0
        assert out.max() <= MAX_ACTIVITY + 1e-12
