"""Lint-cache behavior: cold fills, warm skips, edits invalidate."""

from __future__ import annotations

from repro.analysis import flow_paths, lint_paths
from repro.analysis.flow.cache import (
    LintCache,
    project_digest,
    registry_signature,
    rules_signature,
    source_digest,
)

DIRTY = (
    "from __future__ import annotations\n"
    "import random\n"
    "def f():\n"
    "    return random.random()\n"
)
CLEAN = (
    "from __future__ import annotations\n"
    "RAIL_VOLTS = 1.0\n"
)
FLOW_DIRTY = (
    "RAIL_OHMS = 1.0\n"
    "RAIL_VOLTS = 1.0\n"
    "bad = RAIL_OHMS + RAIL_VOLTS\n"
)


def make_tree(tmp_path):
    (tmp_path / "dirty.py").write_text(DIRTY, encoding="utf-8")
    (tmp_path / "clean.py").write_text(CLEAN, encoding="utf-8")
    (tmp_path / "flow_dirty.py").write_text(FLOW_DIRTY, encoding="utf-8")
    return str(tmp_path)


class TestDigests:
    def test_source_digest_is_content_addressed(self):
        assert source_digest("a = 1\n") == source_digest("a = 1\n")
        assert source_digest("a = 1\n") != source_digest("a = 2\n")

    def test_rules_signature_is_order_independent(self):
        assert rules_signature(["A1", "B2"]) == rules_signature(["B2", "A1"])
        assert rules_signature(["A1"]) != rules_signature(["A1", "B2"])

    def test_project_digest_sees_every_file(self):
        base = {"a.py": "d1", "b.py": "d2"}
        assert project_digest(base) == project_digest(dict(reversed(list(base.items()))))
        assert project_digest(base) != project_digest({"a.py": "d1", "b.py": "dX"})


class TestLineRuleCache:
    def test_cold_then_warm(self, tmp_path):
        tree = make_tree(tmp_path)
        cache_file = str(tmp_path / "cache.json")

        cold = LintCache(cache_file)
        cold_findings = lint_paths([tree], cache=cold)
        assert cold.hits == 0 and cold.misses == 3
        cold.save()

        warm = LintCache(cache_file)
        warm_findings = lint_paths([tree], cache=warm)
        assert warm.hits == 3 and warm.misses == 0
        assert [(f.code, f.path, f.line) for f in warm_findings] == [
            (f.code, f.path, f.line) for f in cold_findings
        ]

    def test_editing_one_file_invalidates_only_it(self, tmp_path):
        tree = make_tree(tmp_path)
        cache_file = str(tmp_path / "cache.json")
        cold = LintCache(cache_file)
        lint_paths([tree], cache=cold)
        cold.save()

        (tmp_path / "clean.py").write_text(
            CLEAN + "OTHER_VOLTS = 2.0\n", encoding="utf-8"
        )
        warm = LintCache(cache_file)
        lint_paths([tree], cache=warm)
        assert warm.hits == 2 and warm.misses == 1


class TestFlowCache:
    def test_cold_then_warm(self, tmp_path):
        tree = make_tree(tmp_path)
        cache_file = str(tmp_path / "cache.json")

        cold = LintCache(cache_file)
        cold_findings = flow_paths([tree], cache=cold)
        assert cold.hits == 0 and cold.misses == 3
        assert [f.code for f in cold_findings] == ["DIM001"]
        cold.save()

        warm = LintCache(cache_file)
        warm_findings = flow_paths([tree], cache=warm)
        assert warm.hits == 3 and warm.misses == 0
        assert [(f.code, f.path, f.line) for f in warm_findings] == [
            (f.code, f.path, f.line) for f in cold_findings
        ]

    def test_any_edit_invalidates_flow_results(self, tmp_path):
        """Interprocedural results fold in the whole-project digest."""
        tree = make_tree(tmp_path)
        cache_file = str(tmp_path / "cache.json")
        cold = LintCache(cache_file)
        flow_paths([tree], cache=cold)
        cold.save()

        (tmp_path / "clean.py").write_text(
            CLEAN + "OTHER_VOLTS = 2.0\n", encoding="utf-8"
        )
        warm = LintCache(cache_file)
        warm_findings = flow_paths([tree], cache=warm)
        assert warm.misses == 3
        assert [f.code for f in warm_findings] == ["DIM001"]

    def test_findings_survive_a_round_trip_intact(self, tmp_path):
        tree = make_tree(tmp_path)
        cache_file = str(tmp_path / "cache.json")
        cold = LintCache(cache_file)
        [finding] = flow_paths([tree], cache=cold)
        cold.save()
        warm = LintCache(cache_file)
        [revived] = flow_paths([tree], cache=warm)
        assert revived == finding
        assert revived.source_line == finding.source_line
        assert revived.fingerprint == finding.fingerprint


class TestRegistryStaleness:
    """Landing a rule family must invalidate cached flow results.

    A plain ``--flow`` run selects "all rules" both before and after a
    new family lands, so the active-rule signature alone cannot tell
    the runs apart — the registry signature (codes + per-family
    analysis versions) has to.  The regression here: before the
    signature existed, a warm cache silently replayed pre-family
    results that had never seen the new rules.
    """

    def test_family_version_bump_invalidates_flow_cache(
        self, tmp_path, monkeypatch
    ):
        tree = make_tree(tmp_path)
        cache_file = str(tmp_path / "cache.json")
        cold = LintCache(cache_file)
        flow_paths([tree], cache=cold)
        assert cold.misses == 3
        cold.save()

        warm = LintCache(cache_file)
        flow_paths([tree], cache=warm)
        assert warm.hits == 3 and warm.misses == 0

        from repro.analysis import registry

        monkeypatch.setitem(
            registry.FAMILY_VERSIONS,
            "TNT",
            registry.FAMILY_VERSIONS["TNT"] + 1,
        )
        stale = LintCache(cache_file)
        stale_findings = flow_paths([tree], cache=stale)
        assert stale.misses == 3
        assert [f.code for f in stale_findings] == ["DIM001"]

    def test_registry_signature_sees_codes_and_versions(self, monkeypatch):
        from repro.analysis import registry

        before = registry_signature()
        monkeypatch.setitem(
            registry.FAMILY_VERSIONS,
            "DIM",
            registry.FAMILY_VERSIONS["DIM"] + 1,
        )
        assert registry_signature() != before

    def test_registry_signature_sees_new_rule_codes(self, monkeypatch):
        from repro.analysis import registry
        from repro.analysis.registry import Rule

        before = registry_signature()

        class Phantom(Rule):
            code = "TNT999"
            name = "phantom"
            description = "synthetic rule for the staleness test"
            flow = True

        monkeypatch.setitem(registry._REGISTRY, "TNT999", Phantom())
        assert registry_signature() != before


class TestRobustness:
    def test_corrupt_cache_file_is_discarded(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        cache_file.write_text("{not json", encoding="utf-8")
        cache = LintCache(str(cache_file))
        assert cache.get("anything") is None
        assert cache.misses == 1

    def test_version_skew_is_discarded(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        cache_file.write_text(
            '{"version": 999, "entries": {"k": []}}', encoding="utf-8"
        )
        cache = LintCache(str(cache_file))
        assert not cache.peek("k")

    def test_save_is_a_noop_when_clean(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        cache = LintCache(str(cache_file))
        cache.save()
        assert not cache_file.exists()

    def test_corrupt_entry_is_evicted(self, tmp_path):
        cache_file = tmp_path / "cache.json"
        cache_file.write_text(
            '{"version": 1, "entries": {"k": [{"bogus": true}]}}',
            encoding="utf-8",
        )
        cache = LintCache(str(cache_file))
        assert cache.get("k") is None
        assert not cache.peek("k")
