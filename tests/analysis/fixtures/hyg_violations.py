"""Fixture: simulation-hygiene violations (HYG001-HYG004).

Never imported — parsed by simlint only.  ``# expect: CODE`` markers are
collected by tests/analysis/test_rules.py.  (HYG005 has its own fixture:
hyg_missing_future.py.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


def float_eq(voltage: float) -> bool:
    return voltage == 0.0  # expect: HYG001


def float_ne(droop: float) -> bool:
    return droop != 1.5  # expect: HYG001


def float_close(voltage: float) -> bool:
    return math.isclose(voltage, 0.0)  # ok: tolerance-aware


def ordered_guard(undervolt: float) -> bool:
    return undervolt <= 0.0  # ok: ordered comparison


def int_eq(count: int) -> bool:
    return count == 0  # ok: integer literal


def mutable_default(samples=[]):  # expect: HYG002
    return samples


def factory_default(samples=None):  # ok
    return samples or []


def swallow_everything() -> float:
    try:
        return 1.0 / 0.0
    except Exception:  # expect: HYG003
        return 0.0


def bare_handler() -> float:
    try:
        return 1.0 / 0.0
    except:  # expect: HYG003  # noqa: E722
        return 0.0


def narrow_handler() -> float:
    try:
        return 1.0 / 0.0
    except ZeroDivisionError:  # ok: specific
        return 0.0


@dataclass  # expect: HYG004
class SweepParameters:
    step: float = 0.005
    ceiling: float = 0.12


@dataclass(frozen=True)  # ok: frozen config
class ProbeConfig:
    bandwidth: float = 1.5


@dataclass
class RunningTally:  # ok: not a config-suffixed name
    values: list = field(default_factory=list)
