"""Fixture: observability violations (OBS001).

Never imported — parsed by simlint only.  Ad-hoc monotonic-clock timing
outside :mod:`repro.observability` must route through the sanctioned
layer (spans or ``monotonic_seconds()``).
"""

from __future__ import annotations

import time
from time import perf_counter

from repro.observability import monotonic_seconds, span


def hand_rolled_timing() -> float:
    started = time.perf_counter()  # expect: OBS001
    work = sum(range(100))
    del work
    return time.perf_counter() - started  # expect: OBS001


def hand_rolled_ns() -> int:
    return time.perf_counter_ns()  # expect: OBS001


def from_import_timing() -> float:
    return perf_counter()  # expect: OBS001


def monotonic_read() -> float:
    return time.monotonic()  # expect: OBS001


def sanctioned_timing() -> float:
    started = monotonic_seconds()  # ok: the one sanctioned clock wrapper
    with span("fixture.stage"):  # ok: span timing
        pass
    return monotonic_seconds() - started
