"""Baseline round-trip: write, reload, filter; fingerprints are stable."""

from __future__ import annotations

import json

import pytest

from repro.analysis import lint_paths
from repro.analysis.baseline import Baseline, load, save
from repro.analysis.findings import Finding, Severity

from tests.analysis.conftest import FIXTURES


def fixture_findings():
    return lint_paths([str(FIXTURES / "hyg_violations.py")])


def test_round_trip_filters_everything(tmp_path):
    findings = fixture_findings()
    assert findings
    target = tmp_path / "baseline.json"
    save(str(target), findings)
    baseline = load(str(target))
    assert baseline.filter(findings) == []


def test_new_findings_survive_baseline(tmp_path):
    findings = fixture_findings()
    target = tmp_path / "baseline.json"
    save(str(target), findings[:-1])
    baseline = load(str(target))
    assert baseline.filter(findings) == [findings[-1]]


def test_fingerprint_survives_line_shift():
    base = Finding(
        code="HYG001",
        message="m",
        path="p.py",
        line=10,
        column=4,
        severity=Severity.ERROR,
        source_line="if undervolt == 0.0:",
    )
    shifted = Finding(
        code="HYG001",
        message="m",
        path="p.py",
        line=42,
        column=4,
        severity=Severity.ERROR,
        source_line="if undervolt == 0.0:",
    )
    baseline = Baseline.from_findings([base])
    assert shifted in baseline


def test_fingerprint_expires_when_line_text_changes():
    base = Finding(
        code="HYG001",
        message="m",
        path="p.py",
        line=10,
        column=4,
        severity=Severity.ERROR,
        source_line="if undervolt == 0.0:",
    )
    edited = Finding(
        code="HYG001",
        message="m",
        path="p.py",
        line=10,
        column=4,
        severity=Severity.ERROR,
        source_line="if undervolt == 0.5:",
    )
    baseline = Baseline.from_findings([base])
    assert edited not in baseline


def test_saved_file_is_stable_json(tmp_path):
    findings = fixture_findings()
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    save(str(first), findings)
    save(str(second), list(reversed(findings)))
    assert first.read_text() == second.read_text()
    payload = json.loads(first.read_text())
    assert payload["version"] == 1
    assert all(
        set(item) - {"justification"}
        == {"path", "code", "line", "message", "fingerprint"}
        for item in payload["findings"]
    )


def test_prune_splits_stale_entries(tmp_path):
    findings = fixture_findings()
    assert len(findings) >= 2
    target = tmp_path / "baseline.json"
    save(str(target), findings)
    baseline = load(str(target))
    kept, removed = baseline.prune(findings[:-1])
    assert len(kept) == len(findings) - 1
    assert len(removed) == 1
    assert removed[0]["fingerprint"] == findings[-1].fingerprint


def test_prune_keeps_justifications(tmp_path):
    findings = fixture_findings()
    target = tmp_path / "baseline.json"
    reason = "kept on purpose for the test"
    save(
        str(target),
        findings,
        justifications={findings[0].fingerprint: reason},
    )
    baseline = load(str(target))
    kept, _ = baseline.prune(findings)
    by_print = {item["fingerprint"]: item for item in kept}
    assert by_print[findings[0].fingerprint]["justification"] == reason


def test_unjustified_reports_blank_and_missing(tmp_path):
    findings = fixture_findings()
    target = tmp_path / "baseline.json"
    save(
        str(target),
        findings,
        justifications={findings[0].fingerprint: "a real reason"},
    )
    baseline = load(str(target))
    missing = baseline.unjustified()
    assert len(missing) == len(findings) - 1
    assert all(
        item["fingerprint"] != findings[0].fingerprint for item in missing
    )


def test_bad_baseline_rejected(tmp_path):
    target = tmp_path / "bad.json"
    target.write_text('{"not": "a baseline"}')
    with pytest.raises(ValueError):
        load(str(target))
    target.write_text('{"version": 99, "findings": []}')
    with pytest.raises(ValueError):
        load(str(target))


def test_shipped_baseline_grandfathers_only_known_debt():
    """The shipped baseline carries exactly two kinds of entries: the
    wall-clock comparison in examples/parallel_sweep.py (OBS001), which
    measures the speedup the example exists to demonstrate, and the PERF
    vectorization worklist over src/repro (ROADMAP item 2).  Everything
    else gets fixed, not baselined — and every entry says why it stays."""
    from pathlib import Path

    repo_root = Path(__file__).resolve().parents[2]
    payload = json.loads(
        (repo_root / "simlint-baseline.json").read_text(encoding="utf-8")
    )
    assert payload["findings"], "expected grandfathered entries"
    for item in payload["findings"]:
        if item["code"] == "OBS001":
            assert item["path"] == "examples/parallel_sweep.py"
        else:
            assert item["code"].startswith("PERF")
            assert item["path"].startswith("src/repro/")
        assert str(item.get("justification", "")).strip(), (
            f"{item['path']}:{item['line']} {item['code']} lacks a "
            "justification"
        )


def test_shipped_baseline_is_current(monkeypatch):
    """The grandfathered lines still exist verbatim (no stale entries)."""
    from pathlib import Path

    repo_root = Path(__file__).resolve().parents[2]
    payload = json.loads(
        (repo_root / "simlint-baseline.json").read_text(encoding="utf-8")
    )
    # Fingerprints hash the repo-relative path the baseline was written
    # with, so lint from the repo root using the same relative path.
    monkeypatch.chdir(repo_root)
    live = {
        (f.code, f.fingerprint)
        for f in lint_paths(["examples/parallel_sweep.py"])
        if f.code == "OBS001"
    }
    baselined = {
        (item["code"], item["fingerprint"])
        for item in payload["findings"]
        if item["code"] == "OBS001"
    }
    assert live == baselined
    # The PERF half of the baseline is held current by
    # tests/analysis/test_self_check.py, which runs the flow engine.
