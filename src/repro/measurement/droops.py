"""Droop and overshoot excursion detection.

Two related quantities recur throughout the paper:

* **droops per 1K cycles** (Figs. 14-17) — how much of the time the supply
  sits below a characterization margin (2.3 % in Sec. IV-A, chosen so an
  idle machine never crosses it);
* **emergencies** (Sec. III-B) — distinct excursions below an *operating*
  margin, each of which triggers one hardware rollback/recovery in a
  resilient design.

:func:`detect_droops` extracts distinct excursions with their depths and
durations using hysteresis; the emergency rate at any margin ``m`` is then
the count of excursions whose depth exceeds ``m``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError
from repro.pdn.simulate import VoltageTrace

#: The characterization margin of Sec. IV-A: all idle-machine activity
#: (VRM ripple) stays inside it.
CHARACTERIZATION_MARGIN = 0.023

#: Excursions are detected below this base threshold; depths are recorded
#: per excursion so rates at any deeper margin can be derived afterwards.
DETECTION_THRESHOLD = 0.010

#: Hysteresis: an excursion ends once the deviation recovers above this
#: fraction of the entry threshold (prevents ripple-rate double counting).
HYSTERESIS_RATIO = 0.6


@dataclass(frozen=True)
class DroopStatistics:
    """All excursions of one polarity found in a trace.

    ``depths`` holds each excursion's maximum deviation magnitude (a
    positive fraction of nominal voltage), ``durations`` the number of
    cycles each excursion spent beyond the detection threshold.
    """

    depths: np.ndarray
    durations: np.ndarray
    n_cycles: int
    threshold: float

    @property
    def count(self) -> int:
        return int(self.depths.size)

    def events_deeper_than(self, margin: float) -> int:
        """Number of excursions exceeding ``margin`` (fraction of nominal)."""
        if margin < self.threshold:
            raise MeasurementError(
                f"margin {margin} is below the detection threshold "
                f"{self.threshold}; shallower events were never recorded"
            )
        return int(np.count_nonzero(self.depths > margin))

    def event_rate(self, margin: float) -> float:
        """Excursions deeper than ``margin`` per cycle."""
        return self.events_deeper_than(margin) / self.n_cycles

    def max_depth(self) -> float:
        return float(self.depths.max()) if self.count else 0.0


def _detect_excursions(
    magnitude: np.ndarray,
    n_cycles: int,
    threshold: float,
) -> DroopStatistics:
    """Hysteresis excursion detector over a positive-magnitude series."""
    enter = threshold
    exit_level = threshold * HYSTERESIS_RATIO
    above_enter = magnitude > enter
    above_exit = magnitude > exit_level

    depths = []
    durations = []
    inside = False
    start = 0
    peak = 0.0
    for i in range(magnitude.size):
        if not inside:
            if above_enter[i]:
                inside = True
                start = i
                peak = magnitude[i]
        else:
            if above_exit[i]:
                if magnitude[i] > peak:
                    peak = magnitude[i]
            else:
                inside = False
                depths.append(peak)
                durations.append(i - start)
    if inside:
        depths.append(peak)
        durations.append(magnitude.size - start)
    return DroopStatistics(
        depths=np.asarray(depths, dtype=float),
        durations=np.asarray(durations, dtype=int),
        n_cycles=n_cycles,
        threshold=threshold,
    )


def _detect_excursions_fast(
    magnitude: np.ndarray,
    n_cycles: int,
    threshold: float,
) -> DroopStatistics:
    """Vectorized variant of :func:`_detect_excursions`.

    Uses the exit level to segment the trace, then takes each segment's
    peak; equivalent to the scalar detector for every trace whose
    excursions are separated by recovery above the exit level.
    """
    exit_level = threshold * HYSTERESIS_RATIO
    above_exit = magnitude > exit_level
    # Segment boundaries where above_exit flips.
    flips = np.flatnonzero(np.diff(above_exit.astype(np.int8)))
    starts = np.concatenate([[0], flips + 1])
    ends = np.concatenate([flips + 1, [magnitude.size]])
    keep = above_exit[starts]
    seg_starts = starts[keep]
    seg_ends = ends[keep]
    depths = np.empty(0, dtype=float)
    durations = np.empty(0, dtype=int)
    if seg_starts.size:
        # Interleave [start, end) bounds and take each segment's peak
        # with one reduceat; the odd slots reduce the gaps between
        # excursions and are discarded.  A trailing end equal to the
        # trace length is dropped — reduceat's final segment already
        # runs to the end of the array.
        bounds = np.empty(2 * seg_starts.size, dtype=np.intp)
        bounds[0::2] = seg_starts
        bounds[1::2] = seg_ends
        if bounds[-1] == magnitude.size:
            bounds = bounds[:-1]
        peaks = np.maximum.reduceat(magnitude, bounds)[0::2]
        deep = peaks > threshold
        depths = peaks[deep].astype(float)
        durations = (seg_ends - seg_starts)[deep].astype(int)
    return DroopStatistics(
        depths=depths,
        durations=durations,
        n_cycles=n_cycles,
        threshold=threshold,
    )


def detect_droops(
    trace: VoltageTrace,
    threshold: float = DETECTION_THRESHOLD,
) -> DroopStatistics:
    """Distinct droop excursions (voltage below nominal) in a trace."""
    if threshold <= 0:
        raise MeasurementError("threshold must be positive")
    magnitude = np.maximum(0.0, -trace.deviations_fraction())
    return _detect_excursions_fast(magnitude, len(trace), threshold)


def detect_overshoots(
    trace: VoltageTrace,
    threshold: float = DETECTION_THRESHOLD,
) -> DroopStatistics:
    """Distinct overshoot excursions (voltage above nominal) in a trace."""
    if threshold <= 0:
        raise MeasurementError("threshold must be positive")
    magnitude = np.maximum(0.0, trace.deviations_fraction())
    return _detect_excursions_fast(magnitude, len(trace), threshold)


def droop_samples_per_1k(
    trace: VoltageTrace,
    margin: float = CHARACTERIZATION_MARGIN,
) -> float:
    """Samples below ``-margin`` per 1000 cycles — the Fig. 14-17 metric."""
    if margin <= 0:
        raise MeasurementError("margin must be positive")
    below = trace.deviations_fraction() < -margin
    return float(below.mean() * 1000.0)
