"""Unit tests for the measurement campaign (the 881-run protocol)."""

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.measurement.campaign import MeasurementCampaign


@pytest.fixture(scope="module")
def campaign():
    return MeasurementCampaign("Proc100", n_cycles=12_000, seed=3)


SUBSET = ("mcf", "namd", "sphinx")


class TestMeasure:
    def test_single_run_kind_inference(self, campaign):
        run = campaign.measure("mcf")
        assert run.spec.kind == "single"
        assert run.spec.workloads == ("mcf",)
        assert run.n_cycles == 12_000

    def test_parsec_runs_multithreaded(self, campaign):
        run = campaign.measure("canneal")
        assert run.spec.kind == "multithread"

    def test_pair_run(self, campaign):
        run = campaign.measure("mcf", "namd")
        assert run.spec.kind == "multiprogram"
        assert len(run.counters) == 2

    def test_caching_returns_same_object(self, campaign):
        a = campaign.measure("mcf", "namd")
        b = campaign.measure("mcf", "namd")
        assert a is b

    def test_unknown_workload_rejected(self, campaign):
        with pytest.raises(WorkloadError):
            campaign.measure("crysis")

    def test_too_many_workloads_rejected(self, campaign):
        with pytest.raises(ConfigurationError):
            campaign.measure("mcf", "namd", "lbm")

    def test_derived_metrics(self, campaign):
        run = campaign.measure("mcf", "namd")
        assert 0 < run.throughput_ipc < 5
        assert 0 <= run.mean_stall_ratio <= 1
        assert run.max_droop >= 0
        assert run.histogram.total == 12_000


class TestSuites:
    def test_single_threaded_subset(self, campaign):
        runs = campaign.single_threaded_runs(SUBSET)
        assert [r.spec.workloads[0] for r in runs] == list(SUBSET)

    def test_multiprogram_is_cartesian(self, campaign):
        runs = campaign.multiprogram_runs(SUBSET)
        assert len(runs) == 9

    def test_specrate_is_diagonal(self, campaign):
        runs = campaign.specrate_runs(SUBSET)
        assert all(r.spec.workloads[0] == r.spec.workloads[1] for r in runs)

    def test_all_runs_protocol_size(self, campaign):
        runs = campaign.all_runs(SUBSET, ("canneal",))
        assert len(runs) == 3 + 1 + 9

    def test_full_protocol_would_be_881(self):
        """29 ST + 11 MT + 29*29 MP = 881 runs, the paper's number."""
        from repro.workloads.parsec import PARSEC
        from repro.workloads.spec import SPEC_CPU2006

        assert len(SPEC_CPU2006) + len(PARSEC) + len(SPEC_CPU2006) ** 2 == 881


class TestDeterminism:
    def test_same_seed_same_measurements(self):
        a = MeasurementCampaign("Proc100", n_cycles=10_000, seed=9)
        b = MeasurementCampaign("Proc100", n_cycles=10_000, seed=9)
        ra = a.measure("lbm")
        rb = b.measure("lbm")
        assert ra.droop_samples_per_1k == rb.droop_samples_per_1k
        assert ra.max_droop == rb.max_droop

    def test_different_seed_differs(self):
        a = MeasurementCampaign("Proc100", n_cycles=10_000, seed=9)
        b = MeasurementCampaign("Proc100", n_cycles=10_000, seed=10)
        assert a.measure("lbm").max_droop != b.measure("lbm").max_droop

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MeasurementCampaign("Proc100", n_cycles=10)
