"""Undervolt-sweep reports: deterministic JSON and markdown.

The JSON payload (Vmin map + frontier) is the sweep's machine-readable
contract: keys sorted, floats rendered by :func:`json.dumps`'s
shortest-repr, cells and frontier points in canonical (core-count,
workload/frequency) order — so equal-seed sweeps are byte-identical
whatever the executor's job count or cache temperature.  Probe outcomes
and runtime statistics deliberately stay *out* of this payload (they
describe one execution, not the characterized physics) so the CI
determinism gate can ``cmp`` the files directly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.undervolt.sweep import FrontierPoint, VminCell, VminMap

#: Schema version of the JSON payload; bump on breaking shape changes.
UNDERVOLT_SCHEMA_VERSION = 1


def _cell_payload(cell: VminCell) -> Dict[str, Any]:
    return {
        "workload": cell.workload,
        "kind": cell.kind,
        "n_cores": cell.n_cores,
        "frequency_ghz": cell.frequency_ghz,
        "critical_volt": cell.critical_volt,
        "droop_volt": cell.droop_volt,
        "vmin_volt": cell.vmin_volt,
        "guardband_fraction": cell.guardband_fraction,
        "energy_savings_fraction": cell.energy_savings_fraction,
    }


def _frontier_payload(point: FrontierPoint) -> Dict[str, Any]:
    return {
        "n_cores": point.n_cores,
        "frequency_ghz": point.frequency_ghz,
        "vmin_volt": point.vmin_volt,
        "limiting_workload": point.limiting_workload,
        "guardband_fraction": point.guardband_fraction,
        "energy_savings_fraction": point.energy_savings_fraction,
    }


def json_payload(vmin_map: VminMap) -> Dict[str, Any]:
    """The Vmin map as one JSON-serializable dict."""
    return {
        "schema_version": UNDERVOLT_SCHEMA_VERSION,
        "config": vmin_map.config,
        "n_cycles": vmin_map.n_cycles,
        "seed": vmin_map.seed,
        "nominal_volt": vmin_map.nominal_volt,
        "workloads": list(vmin_map.workloads),
        "frequencies_ghz": list(vmin_map.frequencies_ghz),
        "core_counts": list(vmin_map.core_counts),
        "cells": [_cell_payload(cell) for cell in vmin_map.cells],
        "frontier": [
            _frontier_payload(point) for point in vmin_map.frontier
        ],
    }


def json_report(vmin_map: VminMap) -> str:
    """Byte-stable JSON rendering (sorted keys, trailing newline)."""
    return (
        json.dumps(json_payload(vmin_map), indent=2, sort_keys=True) + "\n"
    )


def markdown_report(vmin_map: VminMap) -> str:
    """Vmin map and energy frontier as markdown tables."""
    lines: List[str] = [
        f"# Undervolt sweep: `{vmin_map.config}`",
        "",
        f"Workloads: {', '.join(vmin_map.workloads)} — "
        f"{vmin_map.n_cycles} cycles/run, seed {vmin_map.seed}, "
        f"nominal {vmin_map.nominal_volt:.3f} V.",
        "",
        "## Vmin map",
        "",
        "| workload | cores | GHz | critical V | droop V | Vmin V "
        "| guardband | energy saved |",
        "|---|---:|---:|---:|---:|---:|---:|---:|",
    ]
    for cell in vmin_map.cells:
        lines.append(
            f"| {cell.workload} | {cell.n_cores} "
            f"| {cell.frequency_ghz:g} | {cell.critical_volt:.4f} "
            f"| {cell.droop_volt:.4f} | {cell.vmin_volt:.4f} "
            f"| {cell.guardband_fraction:.2%} "
            f"| {cell.energy_savings_fraction:.2%} |"
        )
    lines += [
        "",
        "## Energy-efficiency frontier",
        "",
        "Worst-case (limiting-workload) Vmin per operating point — the "
        "set-point you could ship at, and what it saves vs the "
        "full-guardband nominal.",
        "",
        "| cores | GHz | Vmin V | limiting workload | guardband "
        "| energy saved |",
        "|---:|---:|---:|---|---:|---:|",
    ]
    for point in vmin_map.frontier:
        lines.append(
            f"| {point.n_cores} | {point.frequency_ghz:g} "
            f"| {point.vmin_volt:.4f} | {point.limiting_workload} "
            f"| {point.guardband_fraction:.2%} "
            f"| {point.energy_savings_fraction:.2%} |"
        )
    return "\n".join(lines) + "\n"
