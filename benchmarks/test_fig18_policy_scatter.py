"""Bench: Fig. 18 — policy impact relative to SPECrate."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig18_policy_scatter


def test_fig18_policy_scatter(benchmark, quick):
    result = run_once(
        benchmark, lambda: fig18_policy_scatter.run(quick=quick)
    )
    points = result.series["points"]
    random_mean = result.series["random_mean"]

    droop_d, droop_p = points["Droop"]
    ipc_d, ipc_p = points["IPC"]
    hybrid_d, hybrid_p = points["IPC/Droop^1"]

    # Droop policy minimizes droops (Q1: fewer droops than baseline with
    # at least no performance loss — the paper even sees a slight gain).
    assert droop_d < 0.95
    assert droop_p >= 0.98
    # IPC policy maximizes performance but is droop-oblivious: its droop
    # level is near the random schedules' level, well above Droop's.
    assert ipc_p > droop_p
    assert abs(ipc_d - random_mean[0]) < 0.25
    assert ipc_d > droop_d
    # The hybrid sits between the two extremes on droops.
    assert droop_d <= hybrid_d <= ipc_d + 0.05
    # Random scheduling mimics the baseline.
    assert abs(random_mean[0] - 1.0) < 0.15
    assert abs(random_mean[1] - 1.0) < 0.15
    # Individual random schedules cluster (no policy-like outliers).
    random_points = np.array(result.series["random_points"])
    assert random_points[:, 0].std() < 0.2
    print("\n" + result.format_table())
