"""Unit-safety rules (``UNI0xx``).

All internal computation uses SI base units; :mod:`repro.units` exists so
magnitudes are written as ``22 * units.MICRO_FARAD`` rather than
``22e-6``.  A bare ``1e-9`` bound to ``bulk_inductance_henries`` is a
latent nano/pico bug waiting for a reviewer to miss it; these rules make
the convention mechanical.

A name is *unit-suffixed* when any ``_``-separated segment names an SI
unit used by the repro (``seconds``, ``volts``, ``farads``, ``henries``,
``ohms``, ``hertz``/``hz``, ``amps``/``amperes``).  A literal is a *scale
literal* when it is a nonzero float written in exponent notation
(``1e-6``, ``5e-10``, ``1.5e9``) or smaller in magnitude than 1e-3 —
i.e. a value normally written with an SI prefix, never a plain
base-unit magnitude like ``600.0``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.engine import FileContext
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, register

_UNIT_WORDS: Set[str] = {
    "seconds",
    "second",
    "volts",
    "volt",
    "farads",
    "farad",
    "henries",
    "henry",
    "ohms",
    "ohm",
    "hertz",
    "hz",
    "amps",
    "amperes",
    "ampere",
}

#: Nonzero magnitudes at or below this read as an SI-prefixed scale even
#: when written in plain decimal (0.0004 volts is really 0.4 mV).
_SMALL_MAGNITUDE = 1e-3


def is_unit_name(name: str) -> bool:
    """True when any underscore segment of ``name`` is an SI unit word."""
    return any(seg in _UNIT_WORDS for seg in name.lower().split("_"))


def is_scale_literal(node: ast.AST, ctx: FileContext) -> bool:
    """True for float constants that should be an SI-prefix product."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    if not isinstance(node, ast.Constant):
        return False
    value = node.value
    if not isinstance(value, float):
        return False
    magnitude = abs(value)
    if not magnitude > 0.0:
        return False
    text = ast.get_source_segment(ctx.source, node) or repr(value)
    return "e" in text.lower() or magnitude <= _SMALL_MAGNITUDE


def _suggestion(name: str) -> str:
    return (
        f"`{name}` holds a physical quantity; write the magnitude as a "
        "product with a repro.units constant (e.g. 22 * units.MICRO_FARAD)"
    )


@register
class RawScaleLiteralRule(Rule):
    """UNI001: scale-prefix literal bound to a unit-suffixed name."""

    code = "UNI001"
    name = "raw-scale-literal"
    severity = Severity.ERROR
    description = (
        "a raw scale-prefix literal (1e-6, 5e-10, 1.5e9) assigned or "
        "passed to a *_seconds/*_volts/*_farads/... name hides its SI "
        "prefix; use repro.units constants"
    )
    node_types = (
        ast.Assign,
        ast.AnnAssign,
        ast.FunctionDef,
        ast.AsyncFunctionDef,
        ast.Call,
    )

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                name = _bound_name(target)
                if name and is_unit_name(name) and is_scale_literal(node.value, ctx):
                    yield ctx.finding(self, node.value, _suggestion(name))
        elif isinstance(node, ast.AnnAssign):
            name = _bound_name(node.target)
            if (
                name
                and node.value is not None
                and is_unit_name(name)
                and is_scale_literal(node.value, ctx)
            ):
                yield ctx.finding(self, node.value, _suggestion(name))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from self._check_defaults(node, ctx)
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if (
                    keyword.arg
                    and is_unit_name(keyword.arg)
                    and is_scale_literal(keyword.value, ctx)
                ):
                    yield ctx.finding(
                        self, keyword.value, _suggestion(keyword.arg)
                    )

    def _check_defaults(
        self, node: ast.FunctionDef, ctx: FileContext
    ) -> Iterator[Finding]:
        positional = list(node.args.posonlyargs) + list(node.args.args)
        defaults = list(node.args.defaults)
        for arg, default in zip(positional[len(positional) - len(defaults):],
                                defaults):
            if is_unit_name(arg.arg) and is_scale_literal(default, ctx):
                yield ctx.finding(self, default, _suggestion(arg.arg))
        for arg, kw_default in zip(node.args.kwonlyargs,
                                   node.args.kw_defaults):
            if (
                kw_default is not None
                and is_unit_name(arg.arg)
                and is_scale_literal(kw_default, ctx)
            ):
                yield ctx.finding(self, kw_default, _suggestion(arg.arg))


@register
class ManualScaleConversionRule(Rule):
    """UNI002: unit-suffixed name scaled by a raw power-of-ten literal."""

    code = "UNI002"
    name = "manual-scale-conversion"
    severity = Severity.WARNING
    description = (
        "multiplying/dividing a *_seconds/*_volts/... value by a raw "
        "scale literal (t_seconds * 1e9) is a hand-rolled unit "
        "conversion; divide by a repro.units constant instead"
    )
    node_types = (ast.BinOp,)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, ast.BinOp)
        if not isinstance(node.op, (ast.Mult, ast.Div)):
            return
        for value, other in ((node.left, node.right),
                             (node.right, node.left)):
            name = _terminal_name(value)
            if name and is_unit_name(name) and is_scale_literal(other, ctx):
                yield ctx.finding(
                    self,
                    node,
                    f"`{name}` is scaled by a raw power-of-ten literal; "
                    "express the conversion with a repro.units constant",
                )
                return


def _bound_name(target: ast.AST) -> Optional[str]:
    """Name bound by an assignment target (``x`` or ``self.x``)."""
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


def _terminal_name(node: ast.AST) -> Optional[str]:
    """Trailing identifier of a name/attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None
