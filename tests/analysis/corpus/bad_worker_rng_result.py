"""Known bug: event jitter is drawn from the process-global stream.

The stdlib global RNG is seeded per process, so every pool worker and
every retry draws different jitter — the record is irreproducible and
a parallel campaign is never bit-identical to the serial one.  Jitter
must come from a stream derived via ``derive_generator``.
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor
from typing import List


def jittered_record(index: int) -> float:
    jitter = random.gauss(0.0, 1.0)
    return jitter + 0.1 * index  # expect: TNT002


def run_jittered_suite(indices: List[int]) -> List[float]:
    with ProcessPoolExecutor() as pool:
        return list(pool.map(jittered_record, indices))
