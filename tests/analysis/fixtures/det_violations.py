"""Fixture: determinism violations (DET001-DET004).

Never imported — parsed by simlint only.  Each ``# expect: CODE`` marker
declares that simlint must report exactly that code on that line; the
test suite collects the markers and compares against actual findings.
"""

from __future__ import annotations

import random  # expect: DET001

import numpy as np
from random import choice  # expect: DET001


def roll() -> float:
    return random.random() + float(choice([1, 2]))


def legacy_seed() -> None:
    np.random.seed(1234)  # expect: DET002


def legacy_draw() -> float:
    return float(np.random.rand(3).sum())  # expect: DET002


def seeded_ok() -> float:
    rng = np.random.default_rng(7)  # ok: seeded Generator API
    return float(rng.random())


def wall_clock() -> float:
    import time

    return time.time()  # expect: DET003


def wall_clock_datetime() -> str:
    import datetime

    return datetime.datetime.now().isoformat()  # expect: DET003


class UnseededNoise:
    def __init__(self, scale: float) -> None:
        self.scale = scale
        self.rng_stream = np.random.default_rng()  # expect: DET004


class SeededNoise:
    def __init__(self, scale: float, seed: int | None = None) -> None:
        self.scale = scale
        self.rng_stream = np.random.default_rng(seed)  # ok: seed param
