"""Pins for the V/F and bit-error models behind the undervolt sweep."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.pdn import platform
from repro.pdn.undervolt import CRITICAL_VOLTAGE
from repro.undervolt import model


class TestCriticalVoltage:
    def test_anchored_at_shipped_operating_point(self):
        # The model is calibrated, not assumed: at the shipped clock the
        # inversion must land on the measured critical voltage.
        assert model.critical_voltage(
            model.SHIPPED_FREQUENCY_GHZ
        ) == pytest.approx(CRITICAL_VOLTAGE, abs=1e-9)

    def test_bit_stable(self):
        assert model.critical_voltage(1.46) == model.critical_voltage(1.46)

    def test_monotone_in_frequency(self):
        voltages = [model.critical_voltage(f) for f in (1.0, 1.46, 1.66, 1.86, 2.4)]
        assert voltages == sorted(voltages)
        assert all(
            later > earlier
            for earlier, later in zip(voltages, voltages[1:])
        )

    def test_reduced_clock_needs_less_than_critical_voltage(self):
        assert model.critical_voltage(1.46) < CRITICAL_VOLTAGE

    def test_overclock_needs_more_than_critical_voltage(self):
        assert model.critical_voltage(2.2) > CRITICAL_VOLTAGE

    def test_always_above_threshold(self):
        assert model.critical_voltage(0.05) > model.EFFECTIVE_THRESHOLD_VOLT

    @pytest.mark.parametrize("bad_ghz", [0.0, -1.0])
    def test_non_positive_frequency_rejected(self, bad_ghz):
        with pytest.raises(ConfigurationError):
            model.critical_voltage(bad_ghz)

    def test_unattainable_frequency_rejected(self):
        with pytest.raises(ConfigurationError, match="unattainable"):
            model.critical_voltage(1e6)


class TestUndervoltDepth:
    def test_zero_at_and_above_vmin(self):
        assert model.undervolt_depth(1.2, 1.2) == 0.0  # simlint: disable=HYG001 (exact by construction)
        assert model.undervolt_depth(1.3, 1.2) == 0.0  # simlint: disable=HYG001 (exact by construction)

    def test_positive_below_vmin(self):
        assert model.undervolt_depth(1.15, 1.2) == pytest.approx(0.05)


class TestBitErrorRate:
    def test_exactly_zero_at_zero_depth(self):
        assert model.bit_error_rate_at_depth(0.0) == 0.0  # simlint: disable=HYG001 (exact by construction)

    def test_one_decay_constant_reaches_1_minus_1_over_e(self):
        assert model.bit_error_rate_at_depth(
            model.BER_DECAY_VOLT
        ) == pytest.approx(1.0 - 1.0 / math.e)

    @given(depth=st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=50, deadline=None)
    def test_bounded(self, depth):
        rate = model.bit_error_rate_at_depth(depth)
        assert 0.0 <= rate < 1.0

    @given(
        shallow=st.floats(min_value=0.0, max_value=0.5),
        extra=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_non_decreasing_in_depth(self, shallow, extra):
        assert model.bit_error_rate_at_depth(
            shallow + extra
        ) >= model.bit_error_rate_at_depth(shallow)

    @given(
        vmin=st.floats(min_value=0.5, max_value=1.5),
        margin=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_zero_at_and_above_vmin(self, vmin, margin):
        assert model.bit_error_rate(vmin + margin, vmin) == 0.0  # simlint: disable=HYG001 (exact by construction)

    @given(
        vmin=st.floats(min_value=0.5, max_value=1.5),
        depth=st.floats(min_value=1e-4, max_value=0.4),
    )
    @settings(max_examples=50, deadline=None)
    def test_strictly_positive_below_vmin(self, vmin, depth):
        assert model.bit_error_rate(vmin - depth, vmin) > 0.0

    def test_negative_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            model.bit_error_rate_at_depth(-0.01)

    def test_non_positive_decay_rejected(self):
        with pytest.raises(ConfigurationError):
            model.bit_error_rate_at_depth(0.01, decay_volt=0.0)

    def test_non_positive_vmin_rejected(self):
        with pytest.raises(ConfigurationError):
            model.bit_error_rate(1.0, 0.0)


class TestEnergySavings:
    def test_zero_at_nominal(self):
        assert model.energy_savings_fraction(
            platform.NOMINAL_VOLTAGE
        ) == pytest.approx(0.0)

    def test_squared_set_point_proxy(self):
        # Running at 90 % of nominal saves 1 - 0.9^2 = 19 % dynamic energy.
        assert model.energy_savings_fraction(
            0.9 * platform.NOMINAL_VOLTAGE
        ) == pytest.approx(0.19)

    def test_negative_above_nominal(self):
        assert model.energy_savings_fraction(
            1.1 * platform.NOMINAL_VOLTAGE
        ) < 0.0

    def test_non_positive_nominal_rejected(self):
        with pytest.raises(ConfigurationError):
            model.energy_savings_fraction(1.0, nominal_volt=0.0)
