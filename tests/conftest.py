"""Shared test configuration.

The executor layer persists run records under ``~/.cache/repro`` by
default.  Tests must be hermetic: they may not read a developer's warm
cache (which would mask simulation drift) nor leave entries behind, so
the whole suite is pointed at a throwaway per-session cache directory.
Tests that need a specific cache location build their own
:class:`~repro.measurement.cache.ResultCache` on a ``tmp_path``.
"""

import pytest


@pytest.fixture(scope="session", autouse=True)
def _hermetic_result_cache(tmp_path_factory):
    from repro.measurement.cache import CACHE_DIR_ENV

    directory = tmp_path_factory.mktemp("repro-cache")
    mp = pytest.MonkeyPatch()
    mp.setenv(CACHE_DIR_ENV, str(directory))
    yield
    mp.undo()


@pytest.fixture(autouse=True)
def _fresh_execution_settings():
    """Reset runtime executor overrides that a test may have configured."""
    yield
    from repro.experiments import context

    if (
        context._jobs_override is not None
        or context._cache_dir_override is not None
        or context._no_cache_override is not None
        or context._max_retries_override is not None
        or context._run_timeout_override is not None
        or context._fault_plan_override is not None
    ):
        context.configure_execution()
