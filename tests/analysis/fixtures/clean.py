"""Fixture: a module simlint must report zero findings for."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import units
from repro.random_utils import SeedLike, as_generator


@dataclass(frozen=True)
class WindowConfig:
    duration_seconds: float = 600.0
    bandwidth_hz: float = 1.5 * units.GIGA_HERTZ


def jitter(n: int, seed: SeedLike = None) -> float:
    rng = as_generator(seed)
    total = float(rng.random()) * n
    if math.isclose(total, 0.0):
        return 0.0
    return total
