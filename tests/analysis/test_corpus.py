"""The known-bug corpus gate: sixteen wrong snippets, all caught.

Acceptance criterion for the flow engine: analyzing each corpus snippet
yields **exactly** the finding set its ``# expect`` markers declare —
every planted bug found, no extra noise on the surrounding code.
"""

from __future__ import annotations

import pytest

from repro.analysis import flow_paths

from tests.analysis.conftest import CORPUS, expected_findings

SNIPPETS = [
    "bad_rc_sum.py",
    "bad_tau_division.py",
    "bad_resonance_args.py",
    "bad_droop_ratio.py",
    "bad_campaign_seed.py",
    "bad_campaign_payload.py",
    "bad_result_timestamp.py",
    "bad_worker_rng_result.py",
    "bad_set_reduction.py",
    "bad_completion_order.py",
    "bad_env_cache_key.py",
    "bad_cycle_loop.py",
    "bad_append_accumulation.py",
    "bad_unbatched_filter.py",
    "bad_hot_allocation.py",
    "bad_membership_scan.py",
]


def test_corpus_is_complete():
    found = {path.name for path in CORPUS.glob("*.py")}
    assert found == set(SNIPPETS)


@pytest.mark.parametrize("snippet", SNIPPETS)
def test_snippet_yields_exactly_the_expected_findings(snippet):
    expected = expected_findings(CORPUS / snippet)
    assert expected, f"{snippet} declares no expectations"
    actual = {(f.code, f.line) for f in flow_paths([str(CORPUS / snippet)])}
    assert actual == expected


def test_whole_corpus_as_one_project():
    """Co-analyzing all snippets neither loses nor invents findings."""
    expected = set()
    for snippet in SNIPPETS:
        expected |= {
            (str(CORPUS / snippet), code, line)
            for code, line in expected_findings(CORPUS / snippet)
        }
    actual = {
        (f.path, f.code, f.line) for f in flow_paths([str(CORPUS)])
    }
    assert actual == expected


@pytest.mark.parametrize("snippet", SNIPPETS)
def test_every_snippet_documents_its_bug(snippet):
    text = (CORPUS / snippet).read_text(encoding="utf-8")
    assert text.startswith('"""Known bug:'), snippet
