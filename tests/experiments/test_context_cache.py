"""Regression tests for the experiment-context cache coherence fix.

The old ``get_campaign`` was a bare ``lru_cache`` keyed by
``(config, n_cycles, seed)``: nothing outlived the process, and runtime
execution settings could not invalidate already-memoized campaigns.
These tests pin the fixed behavior: campaigns route through the shared
persistent executor cache (so a "new process" — simulated here by
dropping the memo — replays results instead of re-simulating), and
:func:`configure_execution` rebuilds campaigns instead of handing back
stale ones.
"""

import pytest

from repro.experiments import context


@pytest.fixture(autouse=True)
def _isolated_context(tmp_path):
    """Route the context at a private cache dir and reset it afterwards."""
    context.configure_execution(cache_dir=str(tmp_path / "ctx-cache"))
    yield
    context.configure_execution()


SUBSET = ("mcf", "namd")


class TestSharedPersistentCache:
    def test_campaigns_share_one_cache_instance(self):
        a = context.get_campaign("Proc100", n_cycles=2000, seed=0)
        b = context.get_campaign("Proc3", n_cycles=2000, seed=0)
        assert a.executor.cache is b.executor.cache
        assert a.executor.cache is context.shared_cache()

    def test_results_survive_process_restart(self, tmp_path):
        """The regression: results must outlive the lru_cache memo."""
        first = context.get_campaign("Proc100", n_cycles=2000, seed=0)
        first.single_threaded_runs(SUBSET)
        assert first.executor.stats.simulated == len(SUBSET)

        # Simulate a fresh process: drop every in-memory memo; the
        # configured cache directory (the "disk") survives.
        context.reset_campaigns()
        reborn = context.get_campaign("Proc100", n_cycles=2000, seed=0)
        assert reborn is not first
        reborn.single_threaded_runs(SUBSET)
        assert reborn.executor.stats.simulated == 0
        assert reborn.executor.stats.cache.hits == len(SUBSET)

    def test_mutated_settings_do_not_alias_old_campaigns(self, tmp_path):
        """The lru_cache key now includes the execution settings, so a
        campaign built under old settings is never handed back."""
        stale = context.get_campaign("Proc100", n_cycles=2000, seed=0)
        context.configure_execution(
            jobs=2, cache_dir=str(tmp_path / "elsewhere")
        )
        fresh = context.get_campaign("Proc100", n_cycles=2000, seed=0)
        assert fresh is not stale
        assert fresh.executor.jobs == 2
        assert fresh.executor.cache.directory == tmp_path / "elsewhere"

    def test_no_cache_disables_persistence(self):
        context.configure_execution(no_cache=True)
        campaign = context.get_campaign("Proc100", n_cycles=2000, seed=0)
        assert context.shared_cache() is None
        assert campaign.executor.cache is None

    def test_memo_still_shared_within_process(self):
        a = context.get_campaign("Proc100", n_cycles=2000, seed=0)
        b = context.get_campaign("Proc100", n_cycles=2000, seed=0)
        assert a is b


class TestEnvironmentDefaults:
    def test_env_no_cache(self, monkeypatch):
        context.configure_execution()
        monkeypatch.setenv(context.NO_CACHE_ENV, "1")
        assert not context.cache_enabled()
        assert context.shared_cache() is None

    def test_env_jobs(self, monkeypatch):
        context.configure_execution()
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert context.execution_jobs() == 4
        campaign = context.get_campaign("Proc100", n_cycles=2000, seed=0)
        assert campaign.executor.jobs == 4

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "4")
        context.configure_execution(jobs=2)
        assert context.execution_jobs() == 2


class TestCacheKeyedCampaigns:
    def test_distinct_seeds_distinct_campaigns(self):
        a = context.get_campaign("Proc100", n_cycles=2000, seed=0)
        b = context.get_campaign("Proc100", n_cycles=2000, seed=1)
        assert a is not b

    def test_shared_cache_reused_across_rebuilds(self):
        first = context.shared_cache()
        assert first is not None
        assert context.shared_cache() is first
