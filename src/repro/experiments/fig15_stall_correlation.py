"""Fig. 15 — droop activity vs stall ratio across CPU2006.

Paper (Proc3): droop counts vary widely across the suite — a
heterogeneous noise mix — and are strongly linearly correlated with the
stall ratio read from commodity performance counters (r = 0.97), which is
what licenses a coarse-grained software scheduler to act on fine-grained
voltage noise.
"""

from __future__ import annotations

from repro.core.stall_ratio import stall_droop_correlation
from repro.experiments.common import ExperimentResult
from repro.experiments.context import get_campaign, spec_names, window_cycles


def run(quick: bool = False, config: str = "Proc3") -> ExperimentResult:
    campaign = get_campaign(config, n_cycles=window_cycles(quick))
    correlation = stall_droop_correlation(campaign, spec_names(quick))

    result = ExperimentResult(
        experiment_id="Fig. 15",
        title=f"Droops/1K cycles and stall ratio per benchmark ({config})",
        columns=("benchmark", "stall ratio", "droops/1K cycles"),
    )
    for name, stall, droops in correlation.rows():
        result.add_row(name, stall, droops)
    result.series["correlation"] = correlation
    result.series["pearson_r"] = correlation.pearson_r
    result.notes.append(
        f"pearson r = {correlation.pearson_r:.2f} "
        f"(spearman {correlation.spearman_rho:.2f}); paper reports 0.97"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=True).format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
