"""Unit tests for the recovery-mechanism catalog."""

import numpy as np
import pytest

from repro.core.recovery import (
    MECHANISMS,
    RecoveryGranularity,
    RecoveryMechanism,
    evaluate_mechanisms,
    mechanism_by_name,
    non_intrusive_mechanisms,
)
from repro.core.resilience import ResilientDesignModel
from repro.errors import ConfigurationError
from repro.measurement.droops import DroopStatistics
from repro.measurement.tail import DroopTailModel


def model():
    rng = np.random.default_rng(0)
    depths = 0.012 + rng.exponential(0.01, size=2000)
    stats = DroopStatistics(
        depths=depths,
        durations=np.full(depths.size, 10, dtype=int),
        n_cycles=2_000_000,
        threshold=0.01,
    )
    return ResilientDesignModel([DroopTailModel(stats)])


class TestCatalog:
    def test_paper_reference_points_present(self):
        names = {m.name for m in MECHANISMS}
        assert "Razor" in names
        assert "DeCoR" in names
        costs = sorted(m.cost_cycles for m in MECHANISMS)
        assert costs == [1, 10, 100, 1_000, 10_000, 100_000]

    def test_ordered_fine_to_coarse(self):
        costs = [m.cost_cycles for m in MECHANISMS]
        assert costs == sorted(costs)

    def test_fine_grained_schemes_are_intrusive(self):
        for mechanism in MECHANISMS:
            if mechanism.cost_cycles <= 100:
                assert mechanism.intrusive
        assert all(m.cost_cycles >= 1_000 for m in non_intrusive_mechanisms())

    def test_lookup(self):
        razor = mechanism_by_name("Razor")
        assert razor.granularity is RecoveryGranularity.PIPELINE_STAGE
        with pytest.raises(ConfigurationError):
            mechanism_by_name("TimeTurner")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RecoveryMechanism(
                "x", -1, RecoveryGranularity.COMMIT_DELAY, False
            )


class TestEvaluation:
    def test_finer_mechanisms_gain_more(self):
        results = evaluate_mechanisms(model())
        razor = results["Razor"]
        slow = results["Production checkpoint (slow)"]
        assert razor.improvement > slow.improvement
        assert razor.margin <= slow.margin

    def test_all_mechanisms_evaluated(self):
        results = evaluate_mechanisms(model())
        assert len(results) == len(MECHANISMS)
