"""Known bug: deduplicates droop identifiers by scanning a list.

Each ``in`` test walks the whole list already collected, so the loop is
O(n²) in the number of droop events; a set makes the membership test
O(1) without changing the result.
"""

from __future__ import annotations

from typing import List, Sequence


def simulate(droop_ids: Sequence[int]) -> int:
    seen: List[int] = []
    unique = 0
    for ident in droop_ids:
        if ident in seen:  # expect: PERF005
            continue
        seen.append(ident)
        unique = unique + 1
    return unique
