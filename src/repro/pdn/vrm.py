"""Voltage-regulator-module (VRM) behaviour.

Fig. 11 of the paper shows that the measured core voltage always rides on a
sawtooth-like waveform — the switching ripple of the off-chip buck
regulator — with microarchitectural voltage spikes embedded in it.  The
paper's "idle machine" baseline is exactly this ripple, and the 2.3 %
droop-counting margin of Sec. IV-A is chosen so the ripple alone never
crosses it.

:class:`VoltageRegulatorModule` produces that background waveform so traces
from the simulator look and quantify like the scope captures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.random_utils import SeedLike, as_generator

#: Memoized ``arange(n) / period`` ramps: campaigns call ``ripple`` with
#: one (n_samples, period) pair thousands of times, and the ramp is the
#: only allocation that does not depend on the seed.  Never mutated.
_PHASE_RAMP_CACHE: dict = {}


def _phase_ramp(n_samples: int, period_samples: float) -> np.ndarray:
    key = (n_samples, period_samples)
    ramp = _PHASE_RAMP_CACHE.get(key)
    if ramp is None:
        if len(_PHASE_RAMP_CACHE) >= 8:
            _PHASE_RAMP_CACHE.clear()
        ramp = np.arange(n_samples, dtype=float) / period_samples
        _PHASE_RAMP_CACHE[key] = ramp
    return ramp


@dataclass(frozen=True)
class VoltageRegulatorModule:
    """An off-chip buck regulator with sawtooth switching ripple.

    Parameters
    ----------
    switching_frequency_hz:
        Buck switching frequency; desktop VRMs of the era switch in the
        hundreds of kHz.
    ripple_fraction:
        Peak-to-peak ripple amplitude as a fraction of nominal voltage.
        Calibrated so that idle-machine activity stays within the paper's
        2.3 % characterization margin.
    jitter_fraction:
        Small cycle-to-cycle randomization of the ripple period (real
        regulators are not perfectly periodic).
    """

    switching_frequency_hz: float = 280 * units.KILO_HERTZ
    ripple_fraction: float = 0.016
    jitter_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.switching_frequency_hz <= 0:
            raise ConfigurationError("switching_frequency_hz must be positive")
        if not 0 <= self.ripple_fraction < 0.1:
            raise ConfigurationError("ripple_fraction must be in [0, 0.1)")
        if not 0 <= self.jitter_fraction < 0.5:
            raise ConfigurationError("jitter_fraction must be in [0, 0.5)")

    def ripple(
        self,
        n_samples: int,
        dt_seconds: float,
        nominal_voltage: float,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """Zero-mean sawtooth ripple voltage, one value per sample.

        The waveform ramps up slowly and resets sharply (standard buck
        inductor current shape reflected into the output), with optional
        per-period jitter.
        """
        if n_samples <= 0:
            raise ConfigurationError("n_samples must be positive")
        if dt_seconds <= 0:
            raise ConfigurationError("dt_seconds must be positive")
        if self.ripple_fraction == 0:
            return np.zeros(n_samples)

        rng = as_generator(seed)
        period_samples = 1.0 / (self.switching_frequency_hz * dt_seconds)
        ramp = _phase_ramp(n_samples, period_samples)
        if self.jitter_fraction > 0:
            # Slow random phase wander: integrate small frequency errors.
            n_periods = int(n_samples / period_samples) + 2
            errors = rng.normal(0.0, self.jitter_fraction, size=n_periods)
            phase_noise = np.interp(
                ramp, np.arange(n_periods), np.cumsum(errors)
            )
        else:
            phase_noise = 0.0
        phase = (ramp + phase_noise) % 1.0
        amplitude = self.ripple_fraction * nominal_voltage
        return amplitude * (phase - 0.5)

    def ripple_peak_to_peak(self, nominal_voltage: float) -> float:
        """Nominal peak-to-peak ripple in volts."""
        return self.ripple_fraction * nominal_voltage
