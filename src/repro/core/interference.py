"""Cross-core interference experiments (Sec. III-C, Sec. IV-A/B).

Three experiments live here:

* :func:`single_core_event_swings` — Fig. 12: run each stall-event
  microbenchmark on one core (other core idle) and report the chip's
  peak-to-peak swing relative to an idling machine.  Branch mispredictions
  produce the largest single-core swing (paper: >1.7x).
* :func:`event_interference_matrix` — Fig. 13: run every ordered pair of
  microbenchmarks, one per core.  Swings grow when both cores are active
  (paper: max 2.42x at EXCP+EXCP, a 42 % increase over single-core), but
  the growth depends on the pairing — some pairs interfere destructively.
* :func:`sliding_window_experiment` — Fig. 16: pin program X to core 0 for
  its whole execution while restarting program Y on core 1 every interval,
  convolving Y's first interval against all of X's noise phases.  The
  resulting droop-rate series exposes both constructive and destructive
  co-schedule offsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.measurement.droops import CHARACTERIZATION_MARGIN, droop_samples_per_1k
from repro.random_utils import SeedLike, derive_generator
from repro.uarch.chip import Chip
from repro.uarch.events import StallEvent
from repro.workloads.base import Workload
from repro.workloads.microbenchmarks import IdleLoop, microbenchmark_for

#: Number of window repetitions averaged per measurement point; swings are
#: extreme statistics, so a few repetitions stabilize them.
DEFAULT_REPEATS = 3


def _mean_pkpk(
    chip: Chip,
    make_windows,
    repeats: int,
    seed: SeedLike,
) -> float:
    values = []
    for r in range(repeats):
        rng = derive_generator(seed, "rep", r)
        windows = make_windows(rng)
        run = chip.run(windows, seed=derive_generator(rng, "chip"))
        values.append(run.voltage.peak_to_peak_fraction())
    return float(np.mean(values))


def idle_baseline_pkpk(
    chip: Chip,
    n_cycles: int = 50_000,
    repeats: int = DEFAULT_REPEATS,
    seed: SeedLike = 0,
) -> float:
    """Peak-to-peak swing of the idling machine (the normalization base)."""
    idle = IdleLoop()

    def windows(rng):
        return [
            idle.sample_window(n_cycles, rng=derive_generator(rng, 0)),
            idle.sample_window(n_cycles, rng=derive_generator(rng, 1)),
        ]

    return _mean_pkpk(chip, windows, repeats, derive_generator(seed, "idle"))


def single_core_event_swings(
    chip: Chip,
    n_cycles: int = 50_000,
    repeats: int = DEFAULT_REPEATS,
    seed: SeedLike = 0,
) -> Dict[StallEvent, float]:
    """Fig. 12: per-event peak-to-peak swing relative to idle."""
    baseline = idle_baseline_pkpk(chip, n_cycles, repeats, seed)
    idle = IdleLoop()
    swings: Dict[StallEvent, float] = {}
    for event in StallEvent:
        ubench = microbenchmark_for(event)

        def windows(rng, _ubench=ubench):
            return [
                _ubench.sample_window(n_cycles, rng=derive_generator(rng, 0)),
                idle.sample_window(n_cycles, rng=derive_generator(rng, 1)),
            ]

        pkpk = _mean_pkpk(
            chip, windows, repeats, derive_generator(seed, "single", event.label)
        )
        swings[event] = pkpk / baseline
    return swings


def event_interference_matrix(
    chip: Chip,
    n_cycles: int = 50_000,
    repeats: int = DEFAULT_REPEATS,
    seed: SeedLike = 0,
) -> Tuple[np.ndarray, Tuple[StallEvent, ...]]:
    """Fig. 13: swing (relative to idle) for each event pair across cores.

    Returns the matrix (rows: core 0's event, columns: core 1's event) and
    the event ordering of its axes.
    """
    baseline = idle_baseline_pkpk(chip, n_cycles, repeats, seed)
    events = tuple(StallEvent)
    matrix = np.empty((len(events), len(events)))
    for i, ev0 in enumerate(events):
        for j, ev1 in enumerate(events):
            ub0 = microbenchmark_for(ev0)
            ub1 = microbenchmark_for(ev1)

            def windows(rng, _ub0=ub0, _ub1=ub1):
                return [
                    _ub0.sample_window(n_cycles, rng=derive_generator(rng, 0)),
                    _ub1.sample_window(n_cycles, rng=derive_generator(rng, 1)),
                ]

            matrix[i, j] = _mean_pkpk(
                chip,
                windows,
                repeats,
                derive_generator(seed, "pair", ev0.label, ev1.label),
            ) / baseline
    return matrix, events


@dataclass(frozen=True)
class SlidingWindowResult:
    """Droop-rate series from the Fig. 16 convolution experiment."""

    pinned_name: str
    restarted_name: str
    offsets_s: np.ndarray
    droops_per_1k: np.ndarray
    single_core_droops_per_1k: np.ndarray

    def constructive_offsets(self, threshold_ratio: float = 1.3) -> np.ndarray:
        """Offsets where co-scheduling amplifies noise beyond single-core."""
        return self.offsets_s[
            self.droops_per_1k
            > threshold_ratio * np.maximum(self.single_core_droops_per_1k, 1e-9)
        ]

    def destructive_offsets(self, threshold_ratio: float = 1.1) -> np.ndarray:
        """Offsets where co-scheduled noise stays near the single-core level."""
        return self.offsets_s[
            self.droops_per_1k
            <= threshold_ratio * np.maximum(self.single_core_droops_per_1k, 1e-9)
        ]


def sliding_window_experiment(
    pinned: Workload,
    restarted: Workload,
    chip: Chip,
    interval_seconds: float = 60.0,
    window_cycles: int = 30_000,
    seed: SeedLike = 0,
    margin: float = CHARACTERIZATION_MARGIN,
    max_intervals: Optional[int] = None,
) -> SlidingWindowResult:
    """Fig. 16: convolve ``restarted``'s first interval against ``pinned``.

    ``pinned`` runs on core 0 from start to completion; at each interval
    offset, ``restarted`` is freshly launched on core 1 (so core 1 always
    executes the program's *first* interval).  The measured droop rate per
    offset captures how the restarted program's opening phase interferes
    with each of the pinned program's phases.
    """
    if interval_seconds <= 0:
        raise ConfigurationError("interval_seconds must be positive")
    n_intervals = max(1, int(pinned.duration_seconds / interval_seconds))
    if max_intervals is not None:
        n_intervals = min(n_intervals, max_intervals)
    offsets = np.arange(n_intervals) * interval_seconds
    paired = np.empty(n_intervals)
    alone = np.empty(n_intervals)
    idle = IdleLoop()
    for i, offset in enumerate(offsets):
        rng = derive_generator(seed, "slide", pinned.name, restarted.name, i)
        w_pinned = pinned.sample_window(
            window_cycles, rng=derive_generator(rng, "x"), at_time_s=float(offset)
        )
        w_restarted = restarted.sample_window(
            window_cycles, rng=derive_generator(rng, "y"), at_time_s=0.0
        )
        run = chip.run([w_pinned, w_restarted], seed=derive_generator(rng, "c"))
        paired[i] = droop_samples_per_1k(run.voltage, margin)
        w_idle = idle.sample_window(window_cycles, rng=derive_generator(rng, "i"))
        solo = chip.run([w_pinned, w_idle], seed=derive_generator(rng, "s"))
        alone[i] = droop_samples_per_1k(solo.voltage, margin)
    return SlidingWindowResult(
        pinned_name=pinned.name,
        restarted_name=restarted.name,
        offsets_s=offsets,
        droops_per_1k=paired,
        single_core_droops_per_1k=alone,
    )
