"""The reference platform: a Core 2 Duo E6300-like system model.

This module pins down the concrete numbers that stand in for the paper's
physical test system (Intel Core 2 Duo E6300 on a Gigabyte GA-945GM-S2
board) and builds calibrated :class:`~repro.pdn.network.PowerDeliveryNetwork`
instances for each decap configuration.

Calibration targets, all taken from the paper's measurements:

* impedance peaks in the 100–200 MHz first-droop band (Fig. 4a);
* between 1 and 10 MHz, a decap-depleted package shows several times the
  stock impedance (Fig. 4b quotes ~5x);
* the stock machine's worst observed benchmark droop is ~9.6 % and the
  undervolting-derived worst-case margin is ~14 % (Sec. II-C / III-A);
* typical benchmark activity swings stay within ~4 % of nominal (Fig. 7);
* the reset droop grows from ~150 mV (Proc100) to ~350 mV (Proc0),
  Fig. 5(m–r).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.errors import ConfigurationError
from repro.pdn.decap import DecapConfiguration, proc_config
from repro.pdn.elements import Capacitor, Inductor
from repro.pdn.network import PDNStage, PowerDeliveryNetwork
from repro.pdn.simulate import TransientSimulator
from repro.pdn.vrm import VoltageRegulatorModule

#: Nominal core voltage of the E6300-class part (volts).
NOMINAL_VOLTAGE = 1.30

#: Core clock frequency (Hz); the E6300 runs at 1.86 GHz.
CLOCK_FREQUENCY_HZ = 1.86 * units.GIGA_HERTZ

#: One clock period (seconds) — the sample step of per-cycle current traces.
CLOCK_PERIOD_S = 1.0 / CLOCK_FREQUENCY_HZ

#: Worst-case operating voltage margin found by undervolting (Sec. II-C).
WORST_CASE_MARGIN = 0.14

#: Package-plane parasitic capacitance that survives total decap removal.
PARASITIC_PLANE_CAPACITANCE = 8.0 * units.MICRO_FARAD
PARASITIC_PLANE_ESR = 3.0 * units.MILLI_OHM

#: Idle and maximum sustained current draw of the two-core chip (amps).
#: ~65 W TDP at 1.3 V gives ~50 A absolute ceiling; the power virus
#: approaches it, ordinary benchmarks stay well below.
IDLE_CURRENT_A = 6.0
MAX_CURRENT_A = 46.0


@dataclass(frozen=True)
class PlatformParameters:
    """All tunable electrical parameters of the reference platform.

    The defaults reproduce the paper's observables; tests in
    ``tests/pdn/test_platform.py`` pin the resulting behaviour.
    """

    nominal_voltage: float = NOMINAL_VOLTAGE
    # Stage 0: VRM output inductor + load line + motherboard bulk caps.
    # The 0.8 mOhm series resistance plays the role of the regulator's
    # intentional load line; the active control loop itself is not
    # modelled, so the bulk capacitance is sized generously to hold the
    # low-frequency impedance down the way the real loop would.
    bulk_inductance: float = 1.0 * units.NANO_HENRY
    bulk_resistance: float = 0.10 * units.MILLI_OHM
    bulk_capacitance: float = 10_000 * units.MICRO_FARAD
    bulk_cap_esr: float = 5.0 * units.MILLI_OHM
    # Stage 1: socket/package planes + land-side decap (varies with ProcXX).
    package_inductance: float = 350 * units.PICO_HENRY
    package_resistance: float = 0.15 * units.MILLI_OHM
    # Stage 2: package-to-die loop + on-die decap; sets the 100-200 MHz
    # first-droop resonance that dominates the stock impedance profile.
    die_inductance: float = 2.5 * units.PICO_HENRY
    die_resistance: float = 0.10 * units.MILLI_OHM
    die_capacitance: float = 500 * units.NANO_FARAD
    die_cap_esr: float = 0.50 * units.MILLI_OHM
    # Off-chip regulator ripple.
    vrm: VoltageRegulatorModule = field(default_factory=VoltageRegulatorModule)

    def __post_init__(self) -> None:
        for name in (
            "nominal_voltage",
            "bulk_inductance",
            "bulk_resistance",
            "bulk_capacitance",
            "bulk_cap_esr",
            "package_inductance",
            "package_resistance",
            "die_inductance",
            "die_resistance",
            "die_capacitance",
            "die_cap_esr",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")


DEFAULT_PARAMETERS = PlatformParameters()


def package_capacitor(config: DecapConfiguration) -> Capacitor:
    """Effective package decap for one ProcXX configuration.

    The populated banks combine in parallel with the package-plane
    parasitic, so even Proc0 retains a sliver of capacitance (with the
    plane's own small ESR) — the physical chips never lose the planes.
    """
    total_c = PARASITIC_PLANE_CAPACITANCE
    admittance = 1.0 / PARASITIC_PLANE_ESR
    for bank in config.banks:
        if bank.count == 0:
            continue
        total_c += bank.total_capacitance
        admittance += 1.0 / bank.effective_esr
    return Capacitor(capacitance=total_c, esr=1.0 / admittance)


def build_network(
    config: DecapConfiguration | str = "Proc100",
    parameters: PlatformParameters = DEFAULT_PARAMETERS,
) -> PowerDeliveryNetwork:
    """Build the three-stage ladder for one decap configuration."""
    if isinstance(config, str):
        config = proc_config(config)
    stages = (
        PDNStage(
            name="bulk",
            interconnect=Inductor(
                parameters.bulk_inductance, parameters.bulk_resistance
            ),
            decap=Capacitor(parameters.bulk_capacitance, parameters.bulk_cap_esr),
        ),
        PDNStage(
            name="package",
            interconnect=Inductor(
                parameters.package_inductance, parameters.package_resistance
            ),
            decap=package_capacitor(config),
        ),
        PDNStage(
            name="die",
            interconnect=Inductor(
                parameters.die_inductance, parameters.die_resistance
            ),
            decap=Capacitor(parameters.die_capacitance, parameters.die_cap_esr),
        ),
    )
    return PowerDeliveryNetwork(stages, parameters.nominal_voltage)


def build_simulator(
    config: DecapConfiguration | str = "Proc100",
    parameters: PlatformParameters = DEFAULT_PARAMETERS,
    dt_seconds: float = CLOCK_PERIOD_S,
    with_ripple: bool = True,
) -> TransientSimulator:
    """Build a ready-to-run transient simulator for one configuration."""
    network = build_network(config, parameters)
    vrm = parameters.vrm if with_ripple else None
    return TransientSimulator(network, dt_seconds, vrm=vrm)


#: Canonical reset-stimulus parameters used for the Fig. 5/6 comparison.
RESET_INRUSH_A = 46.0
RESET_RAMP_CYCLES = 2
RESET_SETTLE_TAU_CYCLES = 5000.0


def reset_response(
    config: DecapConfiguration | str,
    parameters: PlatformParameters = DEFAULT_PARAMETERS,
    n_samples: int = 400_000,
):
    """Simulate the paper's reset experiment for one decap configuration.

    The machine idles, the reset collapses current to zero, and boot
    inrush surges back — the sharpest current event a production system
    sees, used by Fig. 5(m-r)/Fig. 6 to expose the decap-removal effect.
    Returns a :class:`~repro.pdn.simulate.VoltageTrace` (no VRM ripple, to
    match the paper's normalization against an idle machine).
    """
    from repro.pdn.stimulus import reset_stimulus

    simulator = build_simulator(config, parameters, with_ripple=False)
    stimulus = reset_stimulus(
        n_samples,
        idle_amps=IDLE_CURRENT_A,
        inrush_amps=RESET_INRUSH_A,
        reset_at=n_samples // 20,
        off_samples=n_samples // 4,
        ramp_samples=RESET_RAMP_CYCLES,
        settle_tau_samples=RESET_SETTLE_TAU_CYCLES,
    )
    return simulator.simulate(stimulus, include_ripple=False)
