"""Dual-core equivalence: the N-core scheduler reproduces pair goldens.

The tentpole refactor generalized :class:`repro.core.scheduler` from
pairs to N-core groups.  The regression net is byte-for-byte: at
``group_size=2`` the generalized greedy builder must reproduce the
pre-refactor pair scheduler exactly — same RNG draw sequence, same
candidate filter, same schedules, same evaluation numbers.  The
constants below were captured from the pair-only implementation
(Proc3, 12 000-cycle windows, campaign seed 2, the five-program subset
of tests/core/test_scheduler.py) immediately before the refactor; any
drift here means dual-core results across the repo silently changed.
"""

import pytest

from repro.core.policies import (
    DroopPolicy,
    HybridPolicy,
    IPCPolicy,
    RandomPolicy,
    StallRatioPolicy,
)
from repro.core.scheduler import BatchScheduler, PairOracle
from repro.measurement.campaign import MeasurementCampaign

SUBSET = ("gamess", "lbm", "mcf", "namd", "sphinx")
N_PAIRS = 8

#: label -> (policy factory, build seed, expected pairs, mean droops/1k,
#: mean IPC) — captured from the pre-refactor pair scheduler.
CAPTURED = {
    "droop": (
        lambda: DroopPolicy(),
        1,
        (
            ("mcf", "namd"), ("lbm", "sphinx"), ("gamess", "gamess"),
            ("sphinx", "namd"), ("mcf", "namd"), ("lbm", "sphinx"),
            ("gamess", "gamess"), ("lbm", "sphinx"),
        ),
        0.40625,
        1.4398177960772873,
    ),
    "ipc": (
        lambda: IPCPolicy(),
        1,
        (
            ("mcf", "namd"), ("lbm", "namd"), ("sphinx", "namd"),
            ("gamess", "namd"), ("sphinx", "gamess"), ("lbm", "gamess"),
            ("mcf", "gamess"), ("lbm", "sphinx"),
        ),
        0.4791666666666667,
        1.8028577957913177,
    ),
    "hybrid": (
        lambda: HybridPolicy(1.0),
        7,
        (
            ("sphinx", "namd"), ("lbm", "namd"), ("mcf", "namd"),
            ("gamess", "namd"), ("sphinx", "gamess"), ("mcf", "gamess"),
            ("lbm", "gamess"), ("sphinx", "lbm"),
        ),
        0.48958333333333337,
        1.8018386879854562,
    ),
    "stall": (
        lambda: StallRatioPolicy(),
        3,
        (
            ("sphinx", "gamess"), ("lbm", "gamess"), ("mcf", "gamess"),
            ("namd", "namd"), ("lbm", "gamess"), ("mcf", "lbm"),
            ("sphinx", "namd"), ("sphinx", "namd"),
        ),
        0.44791666666666663,
        1.8057441078117242,
    ),
    "random": (
        lambda: RandomPolicy(seed=5),
        5,
        (
            ("namd", "lbm"), ("sphinx", "sphinx"), ("gamess", "namd"),
            ("mcf", "gamess"), ("mcf", "mcf"), ("lbm", "mcf"),
            ("lbm", "gamess"), ("sphinx", "namd"),
        ),
        0.5416666666666666,
        1.4498789133018166,
    ),
}


@pytest.fixture(scope="module")
def scheduler():
    campaign = MeasurementCampaign("Proc3", n_cycles=12_000, seed=2)
    return BatchScheduler(PairOracle(campaign), programs=SUBSET)


class TestPairEquivalence:
    @pytest.mark.parametrize("label", sorted(CAPTURED))
    def test_reproduces_pre_refactor_schedule(self, scheduler, label):
        factory, seed, pairs, mean_droops, mean_ipc = CAPTURED[label]
        evaluation = scheduler.run_policy(
            factory(), n_pairs=N_PAIRS, seed=seed
        )
        assert evaluation.groups == pairs
        assert evaluation.mean_droops == mean_droops  # simlint: disable=HYG001 (byte-for-byte contract)
        assert evaluation.mean_ipc == mean_ipc  # simlint: disable=HYG001 (byte-for-byte contract)

    def test_pairs_alias_preserved(self, scheduler):
        """Pre-refactor callers read ``evaluation.pairs``; the alias
        must keep pointing at the generalized ``groups``."""
        evaluation = scheduler.run_policy(
            DroopPolicy(), n_pairs=2, seed=1
        )
        assert evaluation.pairs == evaluation.groups
        assert all(len(group) == 2 for group in evaluation.groups)
