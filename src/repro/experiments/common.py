"""Shared result container and formatting for experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass
class ExperimentResult:
    """The reproduced content of one paper figure or table.

    Parameters
    ----------
    experiment_id:
        Paper reference, e.g. ``"Fig. 8"`` or ``"Tab. I"``.
    title:
        What the figure/table shows.
    columns:
        Column headers for :attr:`rows`.
    rows:
        Tabular data (the printable reproduction of the figure's series).
    series:
        Raw numeric series keyed by name, for programmatic consumers.
    notes:
        Paper-vs-measured commentary surfaced in reports.
    """

    experiment_id: str
    title: str
    columns: Sequence[str] = ()
    rows: List[Tuple[Any, ...]] = field(default_factory=list)
    series: Dict[str, Any] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if self.columns and len(values) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def format_table(self) -> str:
        """Render rows as a fixed-width text table."""
        if not self.rows:
            return f"{self.experiment_id}: {self.title}\n(no rows)"
        headers = [str(c) for c in self.columns] or [
            f"col{i}" for i in range(len(self.rows[0]))
        ]
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(headers[i]), max(len(row[i]) for row in cells))
            for i in range(len(headers))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
