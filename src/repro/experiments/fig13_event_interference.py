"""Fig. 13 — cross-core stall-event interference matrix.

Paper: with both cores running event kernels the chip-wide swing worsens —
the worst pair (EXCP+EXCP) reaches 2.42x idle, a ~42 % increase over the
worst single-core swing (1.7x) — but the magnitude depends strongly on the
pairing, and some pairs interfere destructively (smaller swing than a more
mismatched pairing).
"""

from __future__ import annotations

import numpy as np

from repro.core.interference import (
    event_interference_matrix,
    single_core_event_swings,
)
from repro.experiments.common import ExperimentResult
from repro.uarch.chip import Chip


def run(quick: bool = False, config: str = "Proc100") -> ExperimentResult:
    chip = Chip(config, with_ripple=True)
    n_cycles = 25_000 if quick else 50_000
    repeats = 2 if quick else 3
    matrix, events = event_interference_matrix(
        chip, n_cycles=n_cycles, repeats=repeats
    )
    singles = single_core_event_swings(chip, n_cycles=n_cycles, repeats=repeats)

    result = ExperimentResult(
        experiment_id="Fig. 13",
        title="Cross-core event-pair pk-pk swing relative to idle",
        columns=("core0 \\ core1",) + tuple(e.label for e in events),
    )
    for i, event in enumerate(events):
        result.add_row(event.label, *(float(v) for v in matrix[i]))

    max_idx = np.unravel_index(np.argmax(matrix), matrix.shape)
    max_pair = (events[max_idx[0]].label, events[max_idx[1]].label)
    single_max = max(singles.values())
    increase = float(matrix.max() / single_max - 1.0)
    result.series["matrix"] = matrix
    result.series["events"] = events
    result.series["single_core"] = singles
    result.series["max_pair"] = max_pair
    result.series["increase_over_single"] = increase
    result.notes.append(
        f"worst pair {max_pair[0]}+{max_pair[1]} at {matrix.max():.2f}x idle, "
        f"{100 * increase:.0f}% over the worst single-core swing "
        "(paper: EXCP+EXCP, 2.42x, +42%)"
    )
    return result


def main() -> None:  # pragma: no cover - CLI convenience
    print(run(quick=True).format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
