"""Droop-depth tail modelling for emergency-rate extrapolation.

A finite simulated window cannot empirically resolve emergency rates of
10^-8 per cycle, but the resilient-design sweeps (Figs. 8 and 10) need
rates at deep margins where events are that rare.  Droop depths beyond the
bulk of the distribution are governed by coincidences of independent noise
sources (ripple trough x burst edge x refill surge), which yields an
approximately exponential depth tail — so we fit

    rate(depth > m) = A * exp(-m / beta)

to the empirically counted excursions and extrapolate beyond them.  Inside
the well-sampled region the empirical rate is used directly; the fit takes
over only where sampling noise would dominate.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CalibrationError, MeasurementError
from repro.measurement.droops import DroopStatistics

#: Minimum events required above a margin before the empirical count is
#: trusted over the fitted tail.
MIN_EMPIRICAL_EVENTS = 20

#: Minimum excursions required to fit a tail at all.
MIN_FIT_EVENTS = 10


class DroopTailModel:
    """Empirical + fitted-exponential model of droop-event rates.

    Parameters
    ----------
    statistics:
        Excursion statistics from :func:`repro.measurement.droops.detect_droops`.
    """

    def __init__(self, statistics: DroopStatistics) -> None:
        if statistics.n_cycles <= 0:
            raise MeasurementError("statistics cover zero cycles")
        self._stats = statistics
        self._amplitude, self._beta = self._fit()

    @property
    def statistics(self) -> DroopStatistics:
        return self._stats

    @property
    def beta(self) -> float:
        """Exponential tail scale (fraction of nominal per e-fold)."""
        return self._beta

    def _fit(self) -> tuple[float, float]:
        depths = self._stats.depths
        if depths.size < MIN_FIT_EVENTS:
            # Too few excursions to characterize a tail: treat the deepest
            # observation as an upper bound with a steep synthetic tail.
            fallback_beta = 0.002
            amplitude = depths.size / self._stats.n_cycles if depths.size else 1e-12
            return amplitude, fallback_beta
        # Fit on the upper half of observed depths (the tail region) by the
        # maximum-likelihood estimator for a shifted exponential.
        pivot = float(np.quantile(depths, 0.5))
        tail = depths[depths > pivot]
        if tail.size < MIN_FIT_EVENTS:
            pivot = float(np.quantile(depths, 0.25))
            tail = depths[depths > pivot]
        beta = float(np.mean(tail - pivot))
        beta = max(beta, 1e-5)
        rate_at_pivot = tail.size / self._stats.n_cycles
        amplitude = rate_at_pivot * np.exp(pivot / beta)
        return amplitude, beta

    def rate(self, margin: float) -> float:
        """Emergency rate (events per cycle) at an operating margin.

        Uses the empirical count where at least ``MIN_EMPIRICAL_EVENTS``
        excursions exceed the margin; otherwise the fitted tail.
        """
        if margin <= 0:
            raise CalibrationError("margin must be positive")
        if margin >= self._stats.threshold:
            empirical_events = self._stats.events_deeper_than(margin)
            if empirical_events >= MIN_EMPIRICAL_EVENTS:
                return empirical_events / self._stats.n_cycles
        extrapolated = self._amplitude * np.exp(-margin / self._beta)
        # Never report more events than actually observed at margins we
        # could count (monotonicity guard for the crossover point).
        if margin >= self._stats.threshold:
            empirical = self._stats.event_rate(margin)
            ceiling = max(empirical, MIN_EMPIRICAL_EVENTS / self._stats.n_cycles)
            return float(min(extrapolated, ceiling))
        return float(extrapolated)

    def rates(self, margins: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rate`."""
        return np.array([self.rate(float(m)) for m in np.asarray(margins)])
