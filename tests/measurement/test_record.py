"""Unit tests for the per-run record codec."""

import json

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measurement.campaign import MeasurementCampaign
from repro.measurement.record import (
    SCHEMA_VERSION,
    decode_measurement,
    diff_measurements,
    encode_measurement,
    measurements_identical,
)


@pytest.fixture(scope="module")
def measurement():
    campaign = MeasurementCampaign("Proc100", n_cycles=2000, seed=5, jobs=1)
    return campaign.measure("mcf", "namd")


class TestRoundTrip:
    def test_identity(self, measurement):
        decoded = decode_measurement(encode_measurement(measurement))
        assert measurements_identical(measurement, decoded)

    def test_survives_json_serialization(self, measurement):
        text = json.dumps(encode_measurement(measurement))
        decoded = decode_measurement(json.loads(text))
        assert measurements_identical(measurement, decoded)

    def test_histogram_counts_exact(self, measurement):
        decoded = decode_measurement(encode_measurement(measurement))
        assert np.array_equal(
            measurement.histogram.counts, decoded.histogram.counts
        )
        assert decoded.histogram.total == measurement.n_cycles

    def test_derived_metrics_preserved(self, measurement):
        decoded = decode_measurement(encode_measurement(measurement))
        assert decoded.throughput_ipc == measurement.throughput_ipc
        assert decoded.mean_stall_ratio == measurement.mean_stall_ratio
        assert decoded.max_droop == measurement.max_droop
        assert decoded.max_overshoot == measurement.max_overshoot

    def test_record_is_compact_sparse_histogram(self, measurement):
        record = encode_measurement(measurement)
        assert record["histogram"]["n_bins"] == 1600
        # A 2000-cycle window populates far fewer bins than exist.
        assert len(record["histogram"]["nonzero"]) < 400


class TestSchema:
    def test_schema_stamped(self, measurement):
        assert encode_measurement(measurement)["schema"] == SCHEMA_VERSION

    def test_wrong_schema_rejected(self, measurement):
        record = encode_measurement(measurement)
        record["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(MeasurementError):
            decode_measurement(record)

    def test_missing_field_raises_structural_error(self, measurement):
        record = encode_measurement(measurement)
        del record["droops"]
        with pytest.raises(KeyError):
            decode_measurement(record)


class TestDiff:
    def test_no_diff_for_identical(self, measurement):
        assert diff_measurements(measurement, measurement) == []

    def test_diff_names_the_field(self, measurement):
        other = decode_measurement(encode_measurement(measurement))
        object.__setattr__(other, "droop_samples_per_1k", -1.0)
        diffs = diff_measurements(measurement, other)
        assert len(diffs) == 1
        assert diffs[0].startswith("droop_samples_per_1k:")

    def test_diff_pinpoints_histogram_bin(self, measurement):
        record = encode_measurement(measurement)
        index, count = record["histogram"]["nonzero"][0]
        record["histogram"]["nonzero"][0] = [index, count + 1]
        other = decode_measurement(record)
        diffs = diff_measurements(measurement, other)
        assert diffs == [
            f"histogram.counts[{index}]: {count} != {count + 1}"
        ]
