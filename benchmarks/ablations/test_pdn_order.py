"""Ablation: three-stage PDN ladder vs a collapsed single-stage model.

Design choice under test: the reproduction uses a bulk/package/die ladder.
A single LC section cannot host both the mid-frequency package resonance
(which decap removal amplifies) and the 100-200 MHz first-droop resonance
(which dominates the stock profile) — so the decap-removal experiment and
the microbenchmark characterization need the full ladder.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.pdn.elements import Capacitor, Inductor
from repro.pdn.impedance import ImpedanceProfile
from repro.pdn.network import PDNStage, PowerDeliveryNetwork
from repro.pdn.platform import DEFAULT_PARAMETERS, build_network, package_capacitor
from repro.pdn.decap import proc_config


def single_stage_network(config_name: str) -> PowerDeliveryNetwork:
    """All capacitance lumped into one section behind one inductor."""
    p = DEFAULT_PARAMETERS
    pkg = package_capacitor(proc_config(config_name))
    total_c = p.bulk_capacitance + pkg.capacitance + p.die_capacitance
    stage = PDNStage(
        name="lumped",
        interconnect=Inductor(
            p.bulk_inductance + p.package_inductance + p.die_inductance,
            p.bulk_resistance + p.package_resistance + p.die_resistance,
        ),
        decap=Capacitor(total_c, pkg.esr),
    )
    return PowerDeliveryNetwork([stage], p.nominal_voltage)


def count_local_maxima(profile: ImpedanceProfile) -> int:
    mags = profile.magnitudes_ohm
    interior = (mags[1:-1] > mags[:-2]) & (mags[1:-1] > mags[2:])
    return int(interior.sum())


def test_ablation_pdn_order(benchmark, quick):
    def experiment():
        ladder = ImpedanceProfile.from_network(build_network("Proc100"))
        lumped = ImpedanceProfile.from_network(single_stage_network("Proc100"))
        return ladder, lumped

    ladder, lumped = run_once(benchmark, experiment)

    # The ladder exhibits multiple resonances; the lumped model at most one.
    assert count_local_maxima(ladder) >= 2
    assert count_local_maxima(lumped) <= 1

    # Only the ladder puts its dominant peak in the paper's first-droop
    # band while still reacting to decap removal in the mid band.
    assert 1e8 <= ladder.peak().frequency_hz <= 2e8
    lumped_depleted = ImpedanceProfile.from_network(single_stage_network("Proc3"))
    ladder_depleted = ImpedanceProfile.from_network(build_network("Proc3"))
    ladder_contrast = ladder_depleted.ratio_to(ladder, 1e6)
    lumped_contrast = lumped_depleted.ratio_to(lumped, 1e6)
    # The lumped model's capacitance is dominated by the bulk term, so
    # removing the package decap registers only through the residual ESR
    # shift — a fraction of the ladder's contrast.
    assert ladder_contrast > 3.0
    assert lumped_contrast < 0.6 * ladder_contrast
