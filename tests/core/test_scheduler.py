"""Unit tests for the batch scheduler and pairing oracle."""

import collections

import pytest

from repro.core.policies import DroopPolicy, IPCPolicy, RandomPolicy, SPECratePolicy
from repro.core.scheduler import BatchScheduler, PairOracle
from repro.errors import SchedulingError
from repro.measurement.campaign import MeasurementCampaign

SUBSET = ("gamess", "lbm", "mcf", "namd", "sphinx")


@pytest.fixture(scope="module")
def scheduler():
    campaign = MeasurementCampaign("Proc3", n_cycles=12_000, seed=2)
    return BatchScheduler(PairOracle(campaign), programs=SUBSET)


class TestPairOracle:
    def test_metrics_positive(self, scheduler):
        oracle = scheduler._oracle
        assert oracle.droop_metric("mcf", "lbm") >= 0
        assert oracle.ipc_metric("mcf", "lbm") > 0

    def test_oracle_caches_through_campaign(self, scheduler):
        oracle = scheduler._oracle
        a = oracle.run("mcf", "lbm")
        b = oracle.run("mcf", "lbm")
        assert a is b


class TestBuildSchedule:
    def test_pair_count(self, scheduler):
        pairs = scheduler.build_schedule(DroopPolicy(), n_pairs=10, seed=1)
        assert len(pairs) == 10

    def test_repeat_constraint(self, scheduler):
        pairs = scheduler.build_schedule(
            DroopPolicy(), n_pairs=5, max_repeats=2, seed=1
        )
        usage = collections.Counter()
        for a, b in pairs:
            usage[a] += 1
            usage[b] += 1
        assert max(usage.values()) <= 2

    def test_all_programs_get_scheduled(self, scheduler):
        pairs = scheduler.build_schedule(RandomPolicy(seed=3), n_pairs=10, seed=3)
        used = {p for pair in pairs for p in pair}
        assert used == set(SUBSET)

    def test_specrate_schedule(self, scheduler):
        pairs = scheduler.specrate_schedule()
        assert pairs == tuple((name, name) for name in SUBSET)
        repeated = scheduler.specrate_schedule(7)
        assert len(repeated) == 7

    def test_specrate_policy_routes_to_baseline(self, scheduler):
        pairs = scheduler.build_schedule(SPECratePolicy(), n_pairs=5)
        assert all(a == b for a, b in pairs)

    def test_exhaustion_raises(self, scheduler):
        with pytest.raises(SchedulingError):
            scheduler.build_schedule(
                DroopPolicy(), n_pairs=100, max_repeats=1, seed=1
            )

    def test_needs_two_programs(self, scheduler):
        with pytest.raises(SchedulingError):
            BatchScheduler(scheduler._oracle, programs=("mcf",))


class TestEvaluate:
    def test_droop_policy_beats_ipc_on_droops(self, scheduler):
        droop_eval = scheduler.run_policy(DroopPolicy(), n_pairs=10, seed=4)
        ipc_eval = scheduler.run_policy(IPCPolicy(), n_pairs=10, seed=4)
        assert droop_eval.mean_droops <= ipc_eval.mean_droops
        assert ipc_eval.mean_ipc >= droop_eval.mean_ipc

    def test_normalization(self, scheduler):
        base = scheduler.evaluate(scheduler.specrate_schedule(), "SPECrate")
        droops, perf = base.normalized_to(base)
        assert droops == pytest.approx(1.0)
        assert perf == pytest.approx(1.0)

    def test_empty_schedule_rejected(self, scheduler):
        with pytest.raises(SchedulingError):
            scheduler.evaluate([])


class TestPartnerMap:
    def test_every_program_assigned(self, scheduler):
        partners = scheduler.partner_map(DroopPolicy(), seed=5)
        assert set(partners) == set(SUBSET)
        assert all(p in SUBSET for p in partners.values())

    def test_partner_load_respected(self, scheduler):
        partners = scheduler.partner_map(
            DroopPolicy(), max_partner_load=1, seed=5
        )
        loads = collections.Counter(partners.values())
        assert max(loads.values()) <= 1
