"""Bench: Fig. 13 — cross-core event interference matrix."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig13_event_interference
from repro.uarch.events import StallEvent


def test_fig13_event_interference(benchmark, quick):
    result = run_once(
        benchmark, lambda: fig13_event_interference.run(quick=quick)
    )
    matrix = result.series["matrix"]
    events = result.series["events"]
    singles = result.series["single_core"]

    # Dual-core activity worsens the worst swing (paper: +42 %).
    increase = result.series["increase_over_single"]
    assert 0.15 <= increase <= 1.2
    # The worst pairing involves exceptions; EXCP+EXCP is at or near the
    # top of the matrix (paper: it IS the top at 2.42x).
    excp = list(events).index(StallEvent.EXCEPTION)
    assert matrix[excp, excp] >= 0.9 * matrix.max()
    # Pairing EXCP with anything other than itself is milder than
    # EXCP+EXCP (the paper's constructive-interference observation).
    excp_row = matrix[excp].copy()
    assert excp_row.argmax() == excp
    # Interference is roughly symmetric across the two cores.
    assert np.abs(matrix - matrix.T).max() < 0.7
    print("\n" + result.format_table())
